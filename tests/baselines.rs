//! Baseline-prefetcher integration: Shotgun and Confluence plugged into the
//! simulator reproduce the paper's qualitative §2.3 findings.

use twig_prefetchers::{Confluence, Shotgun};
use twig_sim::{BtbSystem, PlainBtb, SimConfig, SimStats, Simulator};
use twig_workload::{InputConfig, ProgramGenerator, Span, Walker, WorkloadSpec};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "midi-b".into(),
        seed: 0x5EED_0002,
        app_funcs: 900,
        lib_funcs: 120,
        handlers: 24,
        handler_zipf: 0.4,
        blocks_per_func: Span::new(10, 30),
        call_levels: 3,
        loop_fraction: 0.01,
        ..WorkloadSpec::tiny_test()
    }
}

const BUDGET: u64 = 300_000;

fn run(system: Box<dyn BtbSystem>, config: SimConfig) -> SimStats {
    let program = ProgramGenerator::new(spec()).generate();
    let mut sim = Simulator::new(&program, config, system);
    sim.run(
        Walker::new(&program, InputConfig::numbered(1)),
        BUDGET,
    )
}

#[test]
fn prefetchers_do_not_break_execution() {
    let config = SimConfig::default();
    for (name, stats) in [
        ("shotgun", run(Box::new(Shotgun::new(&config)), config)),
        ("confluence", run(Box::new(Confluence::new(&config)), config)),
    ] {
        assert!(stats.retired_instructions >= BUDGET, "{name} stalled");
        assert!(stats.ipc() > 0.05, "{name} IPC {:.3}", stats.ipc());
        assert!(stats.total_btb_accesses() > 0);
    }
}

#[test]
fn prefetchers_stay_within_a_fraction_of_ideal() {
    // §2.3: "Confluence and Shotgun offer only a fraction of an ideal BTB's
    // speedup."
    let config = SimConfig::default();
    let base = run(Box::new(PlainBtb::new(&config)), config);
    let ideal_cfg = SimConfig {
        ideal_btb: true,
        ..config
    };
    let ideal = run(Box::new(PlainBtb::new(&ideal_cfg)), ideal_cfg);
    let shotgun = run(Box::new(Shotgun::new(&config)), config);
    let confluence = run(Box::new(Confluence::new(&config)), config);

    let ideal_gain = ideal.ipc() - base.ipc();
    assert!(ideal_gain > 0.0);
    for (name, stats) in [("shotgun", shotgun), ("confluence", confluence)] {
        let gain = stats.ipc() - base.ipc();
        assert!(
            gain < ideal_gain * 0.8,
            "{name} suspiciously near ideal: {gain} vs {ideal_gain}"
        );
    }
}

#[test]
fn shotgun_covers_some_conditional_misses() {
    let config = SimConfig::default();
    let stats = run(Box::new(Shotgun::new(&config)), config);
    assert!(
        stats.total_covered_misses() > 0,
        "footprint replay must cover something"
    );
    assert!(stats.prefetch_buffer.inserted > 0);
}

#[test]
fn confluence_inserts_predecoded_entries() {
    let config = SimConfig::default();
    let stats = run(Box::new(Confluence::new(&config)), config);
    assert!(stats.prefetch_buffer.inserted > 0, "SHIFT must prefetch");
}
