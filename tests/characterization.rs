//! Characterization integration: the §2 analyses hold together on one
//! workload — misses classify consistently, streams sum correctly, and the
//! profiling stack agrees with the simulator's counters.

use twig_profile::{classify_streams, LbrRecorder, SpatialRangeAnalyzer, ThreeCClassifier};
use twig_sim::{BtbGeometry, PlainBtb, SimConfig, Simulator};
use twig_workload::{InputConfig, ProgramGenerator, Span, Walker, WorkingSet, WorkloadSpec};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "midi-c".into(),
        seed: 0x5EED_0003,
        app_funcs: 900,
        lib_funcs: 120,
        handlers: 24,
        handler_zipf: 0.4,
        blocks_per_func: Span::new(10, 30),
        call_levels: 3,
        loop_fraction: 0.01,
        ..WorkloadSpec::tiny_test()
    }
}

const BUDGET: u64 = 300_000;

#[test]
fn three_c_total_matches_replayed_misses() {
    let program = ProgramGenerator::new(spec()).generate();
    let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(BUDGET);
    // The mid-size test program's working set fits an 8K BTB; classify at
    // 1K entries so capacity/conflict pressure exists (the paper-scale
    // presets pressure the full 8K — see the fig04 experiment).
    let geometry = BtbGeometry::new(1024, 4);
    let mut classifier = ThreeCClassifier::new(geometry);
    let mut taken_direct = 0u64;
    for ev in &events {
        if !ev.taken {
            continue;
        }
        if let Some(rec) = ev.branch_record(&program) {
            if let Some(target) = rec.outcome.target() {
                if rec.kind.is_direct() {
                    taken_direct += 1;
                }
                classifier.access(rec.pc, target, rec.kind);
            }
        }
    }
    let b = classifier.into_breakdown();
    assert!(b.total() > 0);
    assert!(b.total() <= taken_direct, "cannot miss more than accesses");
    // Capacity + conflict dominate on a churning workload (Fig. 4 shape).
    assert!(
        b.capacity + b.conflict > b.compulsory / 4,
        "non-compulsory misses should appear: {b:?}"
    );
}

#[test]
fn lbr_profile_agrees_with_sim_counters() {
    let program = ProgramGenerator::new(spec()).generate();
    let config = SimConfig::default();
    let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(BUDGET);
    let mut recorder = LbrRecorder::new(&program, 1);
    recorder.observe_events(&program, events.iter().copied());
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    let stats = sim.run_observed(events, BUDGET, &mut recorder);
    let profile = recorder.into_profile();
    assert_eq!(profile.num_samples() as u64, stats.total_btb_misses());
    // Per-kind sample counts match the simulator's per-kind miss counters.
    for kind in twig_types::BranchKind::ALL {
        let samples = profile
            .samples
            .iter()
            .filter(|s| s.kind == kind)
            .count() as u64;
        assert_eq!(samples, stats.btb_misses[kind.index()], "{kind}");
    }
}

#[test]
fn stream_classes_partition_the_miss_sequence() {
    let program = ProgramGenerator::new(spec()).generate();
    // Shrink the BTB so branches miss repeatedly (recurring streams).
    let config = SimConfig::default().with_btb_entries(1024);
    let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(BUDGET);
    let mut recorder = LbrRecorder::new(&program, 1);
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    sim.run_observed(events, BUDGET, &mut recorder);
    let profile = recorder.into_profile();
    let seq: Vec<_> = profile.samples.iter().map(|s| s.branch_block).collect();
    let b = classify_streams(&seq);
    assert_eq!(b.total() as usize, seq.len());
    // On a churning service there must be meaningful recurring mass
    // (Fig. 10: temporal prefetchers cover *some* misses).
    let (rec, _, _) = b.fractions();
    assert!(rec > 0.05, "recurring fraction {rec}");
}

#[test]
fn spatial_range_and_working_set_are_consistent() {
    let program = ProgramGenerator::new(spec()).generate();
    let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(BUDGET);
    let mut analyzer = SpatialRangeAnalyzer::new();
    let mut ws = WorkingSet::new();
    for ev in &events {
        analyzer.observe(&program, *ev);
        ws.observe(&program, *ev);
    }
    let range = analyzer.finish();
    let frac = range.out_of_range_fraction();
    assert!((0.0..1.0).contains(&frac));
    // Conditional executions classified must not exceed dynamic conditionals.
    let cond_execs = ws.dynamic_branches(twig_types::BranchKind::Conditional);
    assert!(range.in_range + range.out_of_range <= cond_execs);
    assert!(ws.unconditional_branch_sites() > 0);
}
