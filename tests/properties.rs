//! Property-based integration tests (proptest) over the core data
//! structures and cross-crate invariants.

use twig_proptest::prelude::*;
use twig_sim::{Btb, BtbGeometry, PrefetchBuffer, Ras};
use twig_types::{Addr, BlockId, BranchKind};
use twig_workload::{
    decode_trace, encode_trace, BlockEvent, InputConfig, ProgramGenerator, Span, Walker,
    WorkloadSpec,
};

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop::sample::select(BranchKind::ALL.to_vec())
}

fn arb_event() -> impl Strategy<Value = BlockEvent> {
    (0u32..100_000, any::<bool>(), prop::option::of(0u32..100_000)).prop_map(
        |(block, taken, target)| BlockEvent {
            block: BlockId::new(block),
            taken,
            target: target.map(BlockId::new),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trace encode/decode is a lossless round trip for arbitrary events.
    #[test]
    fn trace_roundtrip(events in prop::collection::vec(arb_event(), 0..500)) {
        let bytes = encode_trace(&events);
        let decoded = decode_trace(&bytes).expect("decode");
        prop_assert_eq!(decoded, events);
    }

    /// Truncating an encoded trace never panics, and any successful decode
    /// of a truncation yields fewer events (never silently corrupts).
    #[test]
    fn trace_truncation_is_detected(
        events in prop::collection::vec(arb_event(), 1..100),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = encode_trace(&events);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            if let Ok(decoded) = decode_trace(&bytes[..cut]) {
                prop_assert!(decoded.len() < events.len() || decoded == events);
            }
        }
    }

    /// The BTB never exceeds capacity and always returns the most recent
    /// insertion for a resident PC.
    #[test]
    fn btb_capacity_and_freshness(
        ops in prop::collection::vec((0u64..4096, 0u64..1_000_000, arb_kind()), 1..300),
    ) {
        let mut btb = Btb::new(BtbGeometry::new(64, 4));
        let mut last = std::collections::HashMap::new();
        for (pc_seed, target, kind) in ops {
            let pc = Addr::new(0x1000 + pc_seed * 2);
            btb.insert(pc, Addr::new(target), kind);
            last.insert(pc, Addr::new(target));
            prop_assert!(btb.occupancy() <= btb.capacity());
        }
        for (pc, target) in last {
            if let Some(entry) = btb.probe(pc) {
                prop_assert_eq!(entry.target, target);
            }
        }
    }

    /// RAS behaves as a bounded LIFO: any push/pop sequence matches a
    /// reference stack whose bottom entries are corrupted by overflow.
    #[test]
    fn ras_matches_reference_stack(
        ops in prop::collection::vec(prop::option::of(0u64..1_000_000), 1..200),
        capacity in 1usize..32,
    ) {
        let mut ras = Ras::new(capacity);
        let mut reference: Vec<Addr> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    let addr = Addr::new(v);
                    ras.push(addr);
                    reference.push(addr);
                    if reference.len() > capacity {
                        reference.remove(0);
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), reference.pop());
                }
            }
            prop_assert_eq!(ras.depth(), reference.len());
        }
    }

    /// The prefetch buffer's stats identity holds under arbitrary traffic:
    /// inserted == used + evicted_unused + still-resident.
    #[test]
    fn prefetch_buffer_conservation(
        ops in prop::collection::vec((0u64..200, any::<bool>(), 0u64..50), 1..400),
        capacity in 1usize..64,
    ) {
        let mut buf = PrefetchBuffer::new(capacity);
        for (pc_seed, is_take, ready) in ops {
            let pc = Addr::new(0x100 + pc_seed * 4);
            if is_take {
                let _ = buf.take(pc, 1_000);
            } else {
                buf.insert(pc, Addr::new(1), BranchKind::Conditional, ready);
            }
            let s = buf.stats();
            prop_assert_eq!(
                s.inserted,
                s.used + s.evicted_unused + buf.len() as u64
            );
            prop_assert!(buf.len() <= capacity);
        }
    }

    /// Generated programs satisfy the structural invariants the simulator
    /// and the coalesce table rely on, for arbitrary seeds and sizes.
    #[test]
    fn generated_programs_are_well_formed(
        seed in 0u64..1_000_000,
        app_funcs in 30u32..120,
        handlers in 2u32..10,
        blocks_hi in 6u32..16,
    ) {
        let spec = WorkloadSpec {
            seed,
            app_funcs,
            handlers,
            blocks_per_func: Span::new(3, blocks_hi),
            ..WorkloadSpec::tiny_test()
        };
        prop_assume!(spec.validate().is_ok());
        let program = ProgramGenerator::new(spec).generate();
        // Addresses strictly increase with block id.
        let mut prev_end = 0u64;
        for (_, block) in program.blocks() {
            prop_assert!(block.addr.raw() >= prev_end);
            prop_assert!(block.size_bytes() > 0);
            prev_end = block.end_addr().raw();
        }
        // A short walk executes without panics and respects bounds.
        for ev in Walker::new(&program, InputConfig::numbered(0)).take(2_000) {
            prop_assert!(ev.block.index() < program.num_blocks());
            if ev.taken {
                prop_assert!(ev.target.is_some());
            }
        }
    }

    /// Offset bit-width computation is monotone: wider fields always fit
    /// whatever narrower fields fit.
    #[test]
    fn offset_bits_monotone(v in -(1i64 << 40)..(1i64 << 40)) {
        let a = Addr::new(1 << 45);
        let b = Addr::new(((1i64 << 45) + v) as u64);
        let bits = a.offset_bits_to(b);
        prop_assert!(bits <= 48);
        for w in bits..=48 {
            let min = -(1i64 << (w - 1));
            let max = (1i64 << (w - 1)) - 1;
            prop_assert!((min..=max).contains(&v));
        }
    }
}
