//! Property-based integration tests (proptest) over the core data
//! structures and cross-crate invariants.

use twig_proptest::prelude::*;
use twig_sim::{Btb, BtbGeometry, PrefetchBuffer, Ras};
use twig_types::{Addr, BlockId, BranchKind};
use twig_workload::{
    decode_trace, encode_trace, BlockEvent, InputConfig, ProgramGenerator, Span, Walker,
    WorkloadSpec,
};

fn arb_kind() -> impl Strategy<Value = BranchKind> {
    prop::sample::select(BranchKind::ALL.to_vec())
}

fn arb_event() -> impl Strategy<Value = BlockEvent> {
    (0u32..100_000, any::<bool>(), prop::option::of(0u32..100_000)).prop_map(
        |(block, taken, target)| BlockEvent {
            block: BlockId::new(block),
            taken,
            target: target.map(BlockId::new),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Trace encode/decode is a lossless round trip for arbitrary events.
    #[test]
    fn trace_roundtrip(events in prop::collection::vec(arb_event(), 0..500)) {
        let bytes = encode_trace(&events);
        let decoded = decode_trace(&bytes).expect("decode");
        prop_assert_eq!(decoded, events);
    }

    /// Truncating an encoded trace never panics, and any successful decode
    /// of a truncation yields fewer events (never silently corrupts).
    #[test]
    fn trace_truncation_is_detected(
        events in prop::collection::vec(arb_event(), 1..100),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = encode_trace(&events);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            if let Ok(decoded) = decode_trace(&bytes[..cut]) {
                prop_assert!(decoded.len() < events.len() || decoded == events);
            }
        }
    }

    /// The BTB never exceeds capacity and always returns the most recent
    /// insertion for a resident PC.
    #[test]
    fn btb_capacity_and_freshness(
        ops in prop::collection::vec((0u64..4096, 0u64..1_000_000, arb_kind()), 1..300),
    ) {
        let mut btb = Btb::new(BtbGeometry::new(64, 4));
        let mut last = std::collections::HashMap::new();
        for (pc_seed, target, kind) in ops {
            let pc = Addr::new(0x1000 + pc_seed * 2);
            btb.insert(pc, Addr::new(target), kind);
            last.insert(pc, Addr::new(target));
            prop_assert!(btb.occupancy() <= btb.capacity());
        }
        for (pc, target) in last {
            if let Some(entry) = btb.probe(pc) {
                prop_assert_eq!(entry.target, target);
            }
        }
    }

    /// RAS behaves as a bounded LIFO: any push/pop sequence matches a
    /// reference stack whose bottom entries are corrupted by overflow.
    #[test]
    fn ras_matches_reference_stack(
        ops in prop::collection::vec(prop::option::of(0u64..1_000_000), 1..200),
        capacity in 1usize..32,
    ) {
        let mut ras = Ras::new(capacity);
        let mut reference: Vec<Addr> = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    let addr = Addr::new(v);
                    ras.push(addr);
                    reference.push(addr);
                    if reference.len() > capacity {
                        reference.remove(0);
                    }
                }
                None => {
                    prop_assert_eq!(ras.pop(), reference.pop());
                }
            }
            prop_assert_eq!(ras.depth(), reference.len());
        }
    }

    /// The prefetch buffer's stats identity holds under arbitrary traffic:
    /// inserted == used + evicted_unused + still-resident.
    #[test]
    fn prefetch_buffer_conservation(
        ops in prop::collection::vec((0u64..200, any::<bool>(), 0u64..50), 1..400),
        capacity in 1usize..64,
    ) {
        let mut buf = PrefetchBuffer::new(capacity);
        for (pc_seed, is_take, ready) in ops {
            let pc = Addr::new(0x100 + pc_seed * 4);
            if is_take {
                let _ = buf.take(pc, 1_000);
            } else {
                buf.insert(pc, Addr::new(1), BranchKind::Conditional, ready);
            }
            let s = buf.stats();
            prop_assert_eq!(
                s.inserted,
                s.used + s.evicted_unused + buf.len() as u64
            );
            prop_assert!(buf.len() <= capacity);
        }
    }

    /// Generated programs satisfy the structural invariants the simulator
    /// and the coalesce table rely on, for arbitrary seeds and sizes.
    #[test]
    fn generated_programs_are_well_formed(
        seed in 0u64..1_000_000,
        app_funcs in 30u32..120,
        handlers in 2u32..10,
        blocks_hi in 6u32..16,
    ) {
        let spec = WorkloadSpec {
            seed,
            app_funcs,
            handlers,
            blocks_per_func: Span::new(3, blocks_hi),
            ..WorkloadSpec::tiny_test()
        };
        prop_assume!(spec.validate().is_ok());
        let program = ProgramGenerator::new(spec).generate();
        // Addresses strictly increase with block id.
        let mut prev_end = 0u64;
        for (_, block) in program.blocks() {
            prop_assert!(block.addr.raw() >= prev_end);
            prop_assert!(block.size_bytes() > 0);
            prev_end = block.end_addr().raw();
        }
        // A short walk executes without panics and respects bounds.
        for ev in Walker::new(&program, InputConfig::numbered(0)).take(2_000) {
            prop_assert!(ev.block.index() < program.num_blocks());
            if ev.taken {
                prop_assert!(ev.target.is_some());
            }
        }
    }

    /// Offset bit-width computation is monotone: wider fields always fit
    /// whatever narrower fields fit.
    #[test]
    fn offset_bits_monotone(v in -(1i64 << 40)..(1i64 << 40)) {
        let a = Addr::new(1 << 45);
        let b = Addr::new(((1i64 << 45) + v) as u64);
        let bits = a.offset_bits_to(b);
        prop_assert!(bits <= 48);
        for w in bits..=48 {
            let min = -(1i64 << (w - 1));
            let max = (1i64 << (w - 1)) - 1;
            prop_assert!((min..=max).contains(&v));
        }
    }
}

// ---------------------------------------------------------------------------
// Binary profile (.twpf) decoder robustness: no input may panic the decoder
// or make it over-allocate; every well-formed encoding round-trips.

use twig_profile::{decode_profile, encode_profile, MissSample, Profile, ProfileCodecError};

fn arb_profile() -> impl Strategy<Value = Profile> {
    let sample = (
        0u32..1_000_000,
        arb_kind(),
        0u64..u64::MAX / 2,
        prop::collection::vec((0u32..1_000_000, 0u64..1_000_000), 0..8),
    )
        .prop_map(|(block, kind, cycle, mut history)| {
            // The format delta-encodes history cycles, which assumes the
            // recorder's nondecreasing order; sort to match.
            history.sort_by_key(|&(_, c)| c);
            MissSample {
                branch_block: BlockId::new(block),
                kind,
                cycle,
                history: history
                    .into_iter()
                    .map(|(b, c)| (BlockId::new(b), c))
                    .collect(),
            }
        });
    (
        prop::collection::vec(0u64..1_000_000, 0..64),
        prop::collection::vec(sample, 0..32),
        1u32..10_000,
        0u64..u64::MAX / 2,
    )
        .prop_map(|(block_executions, samples, sample_period, instructions)| Profile {
            samples,
            block_executions,
            instructions,
            sample_period,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every encodable profile decodes back bit-identically.
    #[test]
    fn profile_roundtrip(profile in arb_profile()) {
        let bytes = encode_profile(&profile);
        let decoded = decode_profile(&bytes).expect("well-formed encoding decodes");
        prop_assert_eq!(decoded, profile);
    }

    /// Arbitrary bytes never panic the decoder: they decode or fail with a
    /// typed error, and declared-length checks mean no input can make the
    /// decoder reserve more memory than the input's own size justifies.
    #[test]
    fn profile_decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_profile(&bytes);
        // Magic-prefixed garbage exercises the post-header paths.
        let mut with_magic = b"TWPF\x01".to_vec();
        with_magic.extend_from_slice(&bytes);
        let _ = decode_profile(&with_magic);
    }

    /// Corrupting one byte of a valid encoding never panics and never
    /// yields an unclassified failure.
    #[test]
    fn profile_decoder_survives_single_byte_corruption(
        profile in arb_profile(),
        pos_fraction in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_profile(&profile).to_vec();
        prop_assume!(!bytes.is_empty());
        let pos = ((bytes.len() - 1) as f64 * pos_fraction) as usize;
        bytes[pos] ^= xor;
        match decode_profile(&bytes) {
            Ok(_) => {}
            Err(
                ProfileCodecError::BadMagic
                | ProfileCodecError::BadVersion(_)
                | ProfileCodecError::Truncated
                | ProfileCodecError::BadKind(_)
                | ProfileCodecError::Oversized { .. }
                | ProfileCodecError::Overflow { .. },
            ) => {}
        }
    }

    /// Truncating a valid encoding at any point is either an error or (at
    /// byte boundaries that happen to be self-delimiting) a valid decode —
    /// never a panic.
    #[test]
    fn profile_decoder_survives_truncation(
        profile in arb_profile(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = encode_profile(&profile);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            let _ = decode_profile(&bytes[..cut]);
        }
    }
}
