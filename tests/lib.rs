//! Placeholder library target for the integration-test package.
