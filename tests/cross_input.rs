//! Cross-input integration (Fig. 20 / Table 2's methodology): profiles
//! collected on one input must transfer to others, and input perturbation
//! must actually change behaviour.

use twig::{MeanStd, TwigConfig, TwigOptimizer};
use twig_sim::{PlainBtb, SimConfig, Simulator};
use twig_workload::{InputConfig, ProgramGenerator, Span, Walker, WorkloadSpec};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "midi-x".into(),
        seed: 0x5EED_0004,
        app_funcs: 900,
        lib_funcs: 120,
        handlers: 24,
        handler_zipf: 0.4,
        blocks_per_func: Span::new(10, 30),
        call_levels: 3,
        loop_fraction: 0.01,
        ..WorkloadSpec::tiny_test()
    }
}

const BUDGET: u64 = 300_000;

#[test]
fn inputs_change_dynamic_behaviour_but_not_structure() {
    let program = ProgramGenerator::new(spec()).generate();
    let a: Vec<_> = Walker::new(&program, InputConfig::numbered(0))
        .take(30_000)
        .collect();
    let b: Vec<_> = Walker::new(&program, InputConfig::numbered(3))
        .take(30_000)
        .collect();
    assert_ne!(a, b, "inputs must perturb the walk");
    // Same program: block ids in both walks index the same blocks.
    let max_a = a.iter().map(|e| e.block.index()).max().unwrap();
    assert!(max_a < program.num_blocks());
}

#[test]
fn training_profile_transfers_across_inputs() {
    let spec = spec();
    let sim = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let reports = optimizer.run_app(&spec, sim, 0, &[1, 2, 3], BUDGET);
    let coverages: Vec<f64> = reports.iter().map(|r| r.coverage).collect();
    for (i, c) in coverages.iter().enumerate() {
        assert!(*c > 0.05, "input #{}: coverage collapsed to {c:.3}", i + 1);
    }
    let spread = MeanStd::of(&coverages);
    assert!(
        spread.std < spread.mean,
        "coverage wildly unstable across inputs: {spread}"
    );
}

#[test]
fn same_input_profile_is_at_least_as_good_on_average() {
    // Table 2's comparison, on one workload: an input-specific profile
    // should roughly match (usually beat) the training profile.
    let spec = spec();
    let sim = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();

    let trained = {
        let p = optimizer.collect_profile(&program, sim, InputConfig::numbered(0), BUDGET);
        optimizer.rewrite(&generator, &optimizer.analyze(&p))
    };
    let own = {
        let p = optimizer.collect_profile(&program, sim, InputConfig::numbered(2), BUDGET);
        optimizer.rewrite(&generator, &optimizer.analyze(&p))
    };
    let trained_report =
        optimizer.evaluate(&program, &trained, sim, InputConfig::numbered(2), BUDGET);
    let own_report = optimizer.evaluate(&program, &own, sim, InputConfig::numbered(2), BUDGET);
    assert!(
        own_report.coverage >= trained_report.coverage * 0.8,
        "same-input profile much worse than training profile: {:.3} vs {:.3}",
        own_report.coverage,
        trained_report.coverage
    );
}

#[test]
fn trace_roundtrip_preserves_simulation_results() {
    // A serialized trace replays to identical statistics.
    let program = ProgramGenerator::new(spec()).generate();
    let config = SimConfig::default();
    let events = Walker::new(&program, InputConfig::numbered(1)).run_instructions(100_000);
    let bytes = twig_workload::encode_trace(&events);
    let decoded = twig_workload::decode_trace(&bytes).expect("valid trace");

    let mut sim_a = Simulator::new(&program, config, PlainBtb::new(&config));
    let a = sim_a.run(events, 100_000);
    let mut sim_b = Simulator::new(&program, config, PlainBtb::new(&config));
    let b = sim_b.run(decoded, 100_000);
    assert_eq!(a, b);
}
