//! Streaming-trace equivalence: on every calibrated application preset,
//! replaying a trace through the out-of-core columnar source must
//! reproduce the in-memory `Vec` source bit for bit — same simulator
//! statistics, same rendered bytes. This is the integration guarantee
//! behind the CI big-trace lane: trace *backing* never changes results.

use std::sync::Arc;

use twig_sim::{PlainBtb, SimConfig, Simulator};
use twig_workload::{
    encode_columnar_chunked, AppId, BlockEvent, ColumnarReader, ColumnarSource, InputConfig,
    MemSource, ProgramGenerator, Walker, WorkloadSpec,
};

const BUDGET: u64 = 60_000;

#[test]
fn columnar_source_matches_in_memory_on_every_app_spec() {
    for app in AppId::ALL {
        let spec = WorkloadSpec::preset(app);
        let program = ProgramGenerator::new(spec.clone()).generate();
        let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
        let events: Vec<BlockEvent> =
            Walker::new(&program, InputConfig::numbered(0)).run_instructions(BUDGET);

        let mut mem_sim = Simulator::new(&program, config, PlainBtb::new(&config));
        let in_memory = mem_sim.run(MemSource::from(events.clone()), BUDGET);

        // Small chunks force many chunk boundaries inside the trace.
        let columnar = encode_columnar_chunked(&events, 512);
        let reader = Arc::new(ColumnarReader::from_bytes(columnar).expect("open columnar"));
        let mut col_sim = Simulator::new(&program, config, PlainBtb::new(&config));
        let streamed = col_sim.run(ColumnarSource::from_reader(reader), BUDGET);

        assert_eq!(streamed, in_memory, "stats diverge on {app:?}");
        assert_eq!(
            format!("{streamed:?}"),
            format!("{in_memory:?}"),
            "rendered stats must be byte-identical on {app:?}"
        );
    }
}
