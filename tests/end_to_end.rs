//! End-to-end integration: the full Twig pipeline across all five crates,
//! validating the paper's headline relationships on a mid-size workload.

use twig::{TwigConfig, TwigOptimizer};
use twig_sim::{PlainBtb, SimConfig, Simulator};
use twig_workload::{
    InputConfig, ProgramGenerator, Span, Walker, WorkloadSpec,
};

/// A workload between tiny_test and the paper presets: enough BTB pressure
/// to exercise the whole stack while staying fast in debug builds.
fn midi_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "midi".into(),
        seed: 0x5EED_0001,
        app_funcs: 900,
        lib_funcs: 120,
        handlers: 24,
        handler_zipf: 0.4,
        blocks_per_func: Span::new(10, 30),
        call_levels: 3,
        loop_fraction: 0.01,
        ..WorkloadSpec::tiny_test()
    }
}

const BUDGET: u64 = 400_000;

#[test]
fn twig_beats_baseline_and_stays_below_ideal() {
    let spec = midi_spec();
    let sim = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let report = optimizer.run_app(&spec, sim, 0, &[1], BUDGET).remove(0);

    assert!(
        report.speedup_percent > 2.0,
        "Twig speedup too small: {:.2}%",
        report.speedup_percent
    );
    assert!(
        report.twig.ipc() <= report.ideal.ipc() * 1.02,
        "Twig ({:.3}) must not exceed the ideal BTB ({:.3})",
        report.twig.ipc(),
        report.ideal.ipc()
    );
    assert!(report.coverage > 0.10, "coverage {:.3}", report.coverage);
    assert!(
        report.twig.btb_mpki() < report.baseline.btb_mpki(),
        "MPKI must drop"
    );
}

#[test]
fn rewritten_binary_executes_identical_control_flow() {
    // Same walker decisions must replay on the rewritten binary: identical
    // block-event sequences, differing only in layout/ops.
    let spec = midi_spec();
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();
    let sim = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let profile = optimizer.collect_profile(&program, sim, InputConfig::numbered(0), 100_000);
    let optimized = optimizer.rewrite(&generator, &optimizer.analyze(&profile));

    let a: Vec<_> = Walker::new(&program, InputConfig::numbered(2))
        .take(20_000)
        .collect();
    let b: Vec<_> = Walker::new(&optimized.program, InputConfig::numbered(2))
        .take(20_000)
        .collect();
    assert_eq!(a, b, "rewriting must not perturb control flow");
    // But the rewritten binary is materially different.
    assert!(optimized.rewrite.added_bytes() > 0);
    assert!(optimized.rewrite.brprefetch_ops + optimized.rewrite.brcoalesce_ops > 0);
}

#[test]
fn overheads_are_within_paper_bands() {
    let spec = midi_spec();
    let sim = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();
    let profile = optimizer.collect_profile(&program, sim, InputConfig::numbered(0), BUDGET);
    let optimized = optimizer.rewrite(&generator, &optimizer.analyze(&profile));
    let report = optimizer.evaluate(&program, &optimized, sim, InputConfig::numbered(1), BUDGET);

    // Paper: static < 10%, dynamic < 12.6% in the worst case.
    assert!(
        optimized.rewrite.static_overhead() < 0.25,
        "static overhead {:.1}%",
        optimized.rewrite.static_overhead() * 100.0
    );
    assert!(
        report.dynamic_overhead < 0.15,
        "dynamic overhead {:.1}%",
        report.dynamic_overhead * 100.0
    );
}

#[test]
fn prefetch_ops_flow_through_the_frontend() {
    let spec = midi_spec();
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();
    let sim = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let profile = optimizer.collect_profile(&program, sim, InputConfig::numbered(0), BUDGET);
    let optimized = optimizer.rewrite(&generator, &optimizer.analyze(&profile));

    let events = Walker::new(&optimized.program, InputConfig::numbered(1))
        .run_instructions(BUDGET);
    let mut sim_run = Simulator::new(&optimized.program, sim, PlainBtb::new(&sim));
    let stats = sim_run.run(events, BUDGET);
    assert!(stats.retired_prefetch_ops > 0, "ops must retire");
    assert!(
        stats.prefetch_buffer.inserted > 0,
        "ops must insert prefetches"
    );
    assert!(stats.prefetch_buffer.used > 0, "prefetches must be consumed");
    assert!(stats.total_covered_misses() > 0, "misses must be covered");
}
