//! Original offline stand-in for this repository, modeled on `proptest`.
//! **Not the crates.io `proptest` crate** — all code here is original to
//! this repository (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range / tuple /
//! `any::<bool>()` strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, `.prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test RNG: each test's
//! stream is seeded from a base seed mixed with a hash of the test's name,
//! so different tests exercise different cases while any single test is
//! reproducible run-to-run. Set `PROPTEST_SEED` (decimal or `0x…` hex) to
//! change the base seed and explore new cases; a failing test prints the
//! base seed that reproduces it.
//!
//! **Known limitation vs. the real proptest:** failing cases are *not
//! shrunk* — the panic reports the assertion message and the reproduction
//! seed, but the inputs are whatever the RNG drew, not a minimized
//! counterexample, and there is no persisted regression file.

use twig_rand::rngs::StdRng;
use twig_rand::{RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not count as a run).
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Default base seed, used when `PROPTEST_SEED` is not set.
const DEFAULT_BASE_SEED: u64 = 0x70E5_7C45_E5EE_D001;

/// Deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
    base_seed: u64,
}

impl TestRng {
    /// The generator for one named test: the stream is derived from the
    /// base seed (the `PROPTEST_SEED` env var when set, else a fixed
    /// default) mixed with an FNV-1a hash of `test_name`, so every test
    /// sees its own cases and any run is reproducible from the base seed.
    pub fn for_test(test_name: &str) -> Self {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(raw) => parse_seed(&raw)
                .unwrap_or_else(|| panic!("PROPTEST_SEED {raw:?} is not a u64")),
            Err(_) => DEFAULT_BASE_SEED,
        };
        let mut name_hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            name_hash ^= u64::from(byte);
            name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(base_seed ^ name_hash),
            base_seed,
        }
    }

    /// A deterministic generator with the default base seed and no
    /// per-test mixing; every caller sees the same cases.
    pub fn deterministic() -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(DEFAULT_BASE_SEED),
            base_seed: DEFAULT_BASE_SEED,
        }
    }

    /// The base seed this generator was derived from; pass it back via
    /// `PROPTEST_SEED` to reproduce a failure.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Uniform draw from a range (strategy support).
    pub fn sample_range<R: twig_rand::SampleRange>(&mut self, range: R) -> R::Output {
        self.rng.random_range(range)
    }

    /// Uniform value (strategy support).
    pub fn sample<T: twig_rand::Random>(&mut self) -> T {
        self.rng.random()
    }
}

/// Parses a `PROPTEST_SEED` value: decimal or `0x`-prefixed hex, with
/// optional `_` separators.
fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim().replace('_', "");
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.sample()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.sample()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Combinator namespaces mirroring `twig_proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start + 1 >= self.len.end {
                    self.len.start
                } else {
                    rng.sample_range(self.len.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` half the time, `Some` of the inner strategy otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.sample::<bool>() {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly among fixed items.
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Uniform choice among `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = rng.sample_range(0..self.items.len());
                self.items[idx].clone()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a proptest case (fails the case, not the
/// whole process, so the runner can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(__left == __right, $($fmt)+);
    }};
}

/// Rejects the current case (it is regenerated without counting).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each function runs `config.cases` successful
/// random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr);) => {};
    (@funcs ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).max(100),
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                let __outcome = (|__rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })(&mut __rng);
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case failed in {} (case {} of {}; \
                             rerun with PROPTEST_SEED={:#x}): {}",
                            stringify!($name),
                            __attempts,
                            __config.cases,
                            __rng.base_seed(),
                            __msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn per_test_streams_differ_but_reproduce() {
        let draw = |name: &str| -> Vec<u64> {
            let mut rng = crate::TestRng::for_test(name);
            (0..8).map(|_| rng.sample_range(0u64..u64::MAX)).collect()
        };
        assert_ne!(draw("alpha"), draw("beta"), "tests share a case stream");
        assert_eq!(draw("alpha"), draw("alpha"), "same test must reproduce");
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(crate::parse_seed("42"), Some(42));
        assert_eq!(crate::parse_seed("0xDEAD_BEEF"), Some(0xDEAD_BEEF));
        assert_eq!(crate::parse_seed(" 0X10 "), Some(16));
        assert_eq!(crate::parse_seed("nope"), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(v in 10u32..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_bounds(items in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(items.len() >= 2 && items.len() < 6);
            for item in items {
                prop_assert!(item < 10);
            }
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn mapped_and_tuple_strategies(pair in (0u32..5, any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            let (a, _b) = pair;
            prop_assert!(a % 2 == 0 && a < 10);
        }

        #[test]
        fn select_picks_members(v in prop::sample::select(vec![1u32, 5, 9])) {
            prop_assert!([1u32, 5, 9].contains(&v));
        }
    }
}
