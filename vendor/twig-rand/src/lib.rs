//! Original offline stand-in for this repository, modeled on the `rand`
//! crate’s 0.10 API surface. **Not the crates.io `rand` crate** — all
//! code here is original to this repository (see `vendor/README.md`).
//!
//! Implements exactly what this workspace uses: [`SeedableRng::seed_from_u64`],
//! the [`RngExt`] sampling methods (`random`, `random_range`, `random_bool`),
//! and the [`rngs::SmallRng`] / [`rngs::StdRng`] generator types. Both
//! generators are xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for the synthetic-workload generation this
//! repository does (this is a simulation reproduction, not cryptography).

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ core state (Blackman & Vigna).
#[derive(Clone, Debug)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256pp { s: [next(), next(), next(), next()] }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Concrete generator types, mirroring `twig_rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256pp};

    macro_rules! define_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(Xoshiro256pp);

            impl RngCore for $name {
                #[inline]
                fn next_u32(&mut self) -> u32 {
                    (self.0.next() >> 32) as u32
                }

                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.0.next()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    $name(Xoshiro256pp::from_seed(seed))
                }
            }
        };
    }

    define_rng!(
        /// A small, fast generator (xoshiro256++ here).
        SmallRng
    );
    define_rng!(
        /// The "standard" generator (also xoshiro256++ in this stand-in).
        StdRng
    );
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Random {
    /// Draws one uniformly distributed value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f32 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Random for f64 {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    #[inline]
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` without modulo bias, via Lemire's
/// widening-multiply-with-rejection (the method the real `rand` uses):
/// `(x * span) >> 64` maps the 64-bit draw onto the span, and draws whose
/// low word falls below `2^64 mod span` are rejected so every output
/// value owns exactly the same number of 64-bit inputs.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    if (m as u64) < span {
        // 2^64 mod span, computed without 128-bit division.
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
        }
    }
    (m >> 64) as u64
}

/// Ranges a generator can sample from (`rng.random_range(lo..hi)`).
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Random>::random_from(rng) * (self.end - self.start)
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Random>::random_from(rng) * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`]
/// (rand 0.10's `Rng`/`RngExt` surface).
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` (`f32`/`f64` in `[0, 1)`).
    #[inline]
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniform draw from `range`. Panics on empty ranges.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
            let x = rng.random_range(-3i64..3);
            assert!((-3..3).contains(&x));
            let f = rng.random_range(0.25f32..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn large_span_sampling_is_unbiased() {
        // span = 3·2^62: naive `next_u64() % span` would land below 2^62
        // with probability 1/2 (those residues own two 64-bit inputs each)
        // instead of the uniform 1/3. Lemire rejection must not.
        let span = 3u64 << 62;
        let mut rng = StdRng::seed_from_u64(17);
        let n = 30_000;
        let low = (0..n)
            .filter(|_| uniform_below(&mut rng, span) < (1u64 << 62))
            .count();
        let frac = low as f64 / n as f64;
        assert!((0.31..0.36).contains(&frac), "P(x < span/3) = {frac}, want ~1/3");
    }

    #[test]
    fn small_span_counts_are_balanced() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.random_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((9_600..10_400).contains(&c), "uneven counts {counts:?}");
        }
    }

    #[test]
    fn uniform_below_rejects_under_threshold() {
        // Scripted draws exercising the rejection branch. For
        // span = 3·2^62 the threshold is 2^64 mod span = 2^62, and the
        // widening product's low word is (3x mod 4)·2^62 — so x = 4 gives
        // low word 0 < 2^62 and must be rejected, while the follow-up
        // x = 1 gives low word 3·2^62 (accepted) and maps to 0.
        struct Script(Vec<u64>);
        impl RngCore for Script {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                self.0.remove(0)
            }
        }
        let span = 3u64 << 62;
        let mut rng = Script(vec![4, 1]);
        assert_eq!(uniform_below(&mut rng, span), 0);
        assert!(rng.0.is_empty(), "rejected draw was not retried");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.85)).count();
        assert!((8_200..8_800).contains(&hits), "p=0.85 gave {hits}/10000");
    }

    #[test]
    fn all_integer_widths_sample() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u8 = rng.random();
        let _: i32 = rng.random();
        let _ = rng.random_range(0u8..=255);
        let _ = rng.random_range(0usize..7);
    }
}
