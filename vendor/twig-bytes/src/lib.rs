//! Original offline stand-in modeled on the `bytes` crate. **Not the
//! crates.io `bytes` crate** — original code for this repository (see
//! `vendor/README.md`).
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`], and [`BufMut`] with exactly
//! the semantics the trace/profile binary codecs rely on: append-only
//! building in `BytesMut`, cheap `freeze()` into an immutable shared
//! [`Bytes`], and cursor-style reading through `impl Buf for &[u8]`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(Vec::new()) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data.to_vec()) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

/// A growable byte buffer used to build a [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Removes all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::from(self.buf) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write access to a byte sink (append-only subset).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);
    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    #[inline]
    fn put_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    #[inline]
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

/// Cursor-style read access to a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skips `n` bytes. Panics if fewer than `n` remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte. Panics if none remain.
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    #[inline]
    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self
            .split_first()
            .expect("get_u8 on empty buffer");
        *self = rest;
        *first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_slice(&[2, 3, 4]);
        assert_eq!(b.len(), 4);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4]);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3, 4]);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 4);
        cursor.advance(1);
        assert_eq!(cursor.get_u8(), 2);
        assert!(cursor.has_remaining());
        assert_eq!(cursor.get_u8(), 3);
        assert_eq!(cursor.get_u8(), 4);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn clear_keeps_buffer_usable() {
        let mut b = BytesMut::new();
        b.put_slice(b"hello");
        b.clear();
        assert!(b.is_empty());
        b.put_u8(9);
        assert_eq!(b.freeze().to_vec(), vec![9]);
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
    }
}
