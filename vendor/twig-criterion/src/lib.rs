//! Original offline stand-in modeled on `criterion`. **Not the crates.io
//! `criterion` crate** — original code for this repository (see
//! `vendor/README.md`).
//!
//! Implements the harness API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!` — with a simple
//! median-of-samples wall-clock measurement instead of the real crate's
//! statistical machinery. Results are printed one line per benchmark:
//! name, median time per iteration, and throughput when configured.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as the real criterion renders it.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

/// Per-iteration timing driver passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`.
    measured_ns: f64,
}

impl Bencher {
    /// Measures `routine`, recording the median time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that runs ≳1 ms,
        // then take `samples` timed samples of that batch size.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                start.elapsed().as_secs_f64() * 1e9 / batch as f64
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        self.measured_ns = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: self.sample_size, measured_ns: 0.0 };
        f(&mut bencher);
        self.report(name, bencher.measured_ns);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { samples: self.sample_size, measured_ns: 0.0 };
        f(&mut bencher, input);
        let name = id.id.clone();
        self.report(&name, bencher.measured_ns);
        self
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&mut self, name: &str, ns_per_iter: f64) {
        let full = format!("{}/{}", self.name, name);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.1} Melem/s", n as f64 / ns_per_iter * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.1} MiB/s", n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("{full:<50} {:>14} ns/iter{rate}", format_ns(ns_per_iter));
        self.criterion.results.push((full, ns_per_iter));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else {
        format!("{:.1}", ns)
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        self
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("sum", |b| {
                b.iter(|| (0..100u64).sum::<u64>())
            });
            g.bench_with_input(BenchmarkId::new("param", 5), &5u64, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, ns)| *ns > 0.0));
        assert!(c.results[1].0.contains("param/5"));
    }
}
