//! Original offline stand-in modeled on the `serde` crate. **Not the
//! crates.io `serde` crate** — original code for this repository (see
//! `vendor/README.md`).
//!
//! The build environment for this repository has no network access, so the
//! real serde cannot be fetched from crates.io. This crate implements the
//! subset the workspace actually uses — `#[derive(Serialize, Deserialize)]`
//! on concrete (non-generic) structs and enums, plus `twig_serde::de::
//! DeserializeOwned` — on top of a simple self-describing [`Value`] tree.
//!
//! The design is intentionally value-based rather than visitor-based:
//! `Serialize::to_value` produces a [`Value`], `Deserialize::from_value`
//! consumes one, and `serde_json` (also vendored) converts between `Value`
//! and JSON text. This roundtrips everything the workspace serializes
//! (reports, specs, stats, plans) without the real serde's zero-copy
//! machinery, which nothing here needs.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

pub use twig_serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the common model shared with the
/// vendored `serde_json`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`; the encoding of `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used for negative numbers).
    Int(i64),
    /// An unsigned integer (used for all non-negative integers).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload (ordered key/value pairs), if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// The value as a float; integers are converted.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a serialized value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialized value tree.
    fn from_value(value: &Value) -> Result<Self, String>;
}

/// Compatibility module mirroring `twig_serde::de`.
pub mod de {
    /// Owned deserialization marker (every [`Deserialize`](crate::Deserialize)
    /// type qualifies, since this model has no borrowed variants).
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Looks up `key` in an object body and deserializes it (derive-macro
/// support; not intended for direct use).
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, String> {
    let value = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field `{key}` in {context}"))?;
    T::from_value(value).map_err(|e| format!("{context}.{key}: {e}"))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, String> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| format!("expected unsigned integer, got {value:?}"))?;
                <$t>::try_from(raw)
                    .map_err(|_| format!("integer {raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, String> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| format!("expected integer, got {value:?}"))?;
                <$t>::try_from(raw)
                    .map_err(|_| format!("integer {raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, String> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| format!("expected number, got {value:?}"))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {value:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, String> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("expected string, got {value:?}"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        value
            .as_array()
            .ok_or_else(|| format!("expected array, got {value:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, String> {
        let items = value
            .as_array()
            .ok_or_else(|| format!("expected array, got {value:?}"))?;
        if items.len() != N {
            return Err(format!("expected array of length {N}, got {}", items.len()));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        T::from_value(value).map(Arc::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, String> {
                let items = value
                    .as_array()
                    .ok_or_else(|| format!("expected array, got {value:?}"))?;
                if items.len() != $len {
                    return Err(format!(
                        "expected tuple of length {}, got {}",
                        $len,
                        items.len()
                    ));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

/// Maps serialize as an array of `[key, value]` pairs so non-string keys
/// (e.g. `BlockId`) roundtrip without a string encoding.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, String> {
        let items = value
            .as_array()
            .ok_or_else(|| format!("expected array of pairs, got {value:?}"))?;
        let mut out = HashMap::with_capacity_and_hasher(items.len(), S::default());
        for item in items {
            let pair = item
                .as_array()
                .ok_or_else(|| format!("expected [key, value] pair, got {item:?}"))?;
            if pair.len() != 2 {
                return Err(format!("expected [key, value] pair, got {} items", pair.len()));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, String> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()), Ok(None));
        let arr = [1u64, 2, 3, 4, 5, 6];
        assert_eq!(<[u64; 6]>::from_value(&arr.to_value()), Ok(arr));
        let t = (3u32, 0.5f32);
        assert_eq!(<(u32, f32)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn maps_roundtrip_as_pair_arrays() {
        let mut m = HashMap::new();
        m.insert(7u32, vec![1u8, 2]);
        let back = HashMap::<u32, Vec<u8>>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
