//! Original offline stand-in modeled on `serde_derive`. **Not the
//! crates.io `serde_derive` crate** — original code for this repository
//! (see `vendor/README.md`).
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually derives — non-generic structs with named
//! fields, tuple structs, and enums with unit/tuple/struct variants — with
//! no `syn`/`quote` dependency (the build environment is fully offline, so
//! the macro hand-parses the token stream and emits code as strings).
//!
//! Unsupported shapes (generics, `#[serde(...)]` attributes, unions) panic
//! at compile time with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `twig_serde::Serialize` (value-based; see the vendored `serde`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `twig_serde::Deserialize` (value-based; see the vendored `serde`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

enum Body {
    /// `struct Foo { a: A, b: B }`
    NamedStruct(Vec<String>),
    /// `struct Foo(A, B);` — field count only (codegen is type-free).
    TupleStruct(usize),
    /// `enum Foo { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    let body = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::TupleStruct(0),
            other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: `{other}` items are not supported"),
    };
    Item { name, body }
}

/// Advances past outer attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: A, b: Vec<(X, Y)>, ...` into field names. Types are skipped
/// with angle-bracket depth tracking (commas inside `<...>` are not field
/// separators; parenthesized/bracketed types are opaque groups already).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        fields.push(name);
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive (vendored): explicit discriminants are not supported");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::twig_serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::twig_serde::Value::Object(::std::vec![{entries}])")
        }
        Body::TupleStruct(1) => "::twig_serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::twig_serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::twig_serde::Value::Array(::std::vec![{entries}])")
        }
        Body::Enum(variants) => {
            let arms: String = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::twig_serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::twig_serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{name}::{vn} => ::twig_serde::Value::Str(::std::string::String::from(\"{vn}\")),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let pat = binds.join(", ");
            let entries: String = binds
                .iter()
                .map(|b| format!("::twig_serde::Serialize::to_value({b}),"))
                .collect();
            let payload = if *n == 1 {
                "::twig_serde::Serialize::to_value(__f0)".to_string()
            } else {
                format!("::twig_serde::Value::Array(::std::vec![{entries}])")
            };
            format!(
                "{name}::{vn}({pat}) => ::twig_serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vn}\"), {payload})]),"
            )
        }
        VariantKind::Struct(fields) => {
            let pat = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::twig_serde::Serialize::to_value({f})),"
                    )
                })
                .collect();
            format!(
                "{name}::{vn} {{ {pat} }} => ::twig_serde::Value::Object(::std::vec![\
                 (::std::string::String::from(\"{vn}\"), \
                 ::twig_serde::Value::Object(::std::vec![{entries}]))]),"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::twig_serde::__field(__obj, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::std::format!(\"expected object for {name}, got {{__value:?}}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::twig_serde::Deserialize::from_value(__value)?))"
        ),
        Body::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::twig_serde::Deserialize::from_value(&__items[{i}])?,"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::std::format!(\"expected array for {name}\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::std::format!(\"expected {n} fields for {name}, got {{}}\", __items.len())); }}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Body::Enum(variants) => deserialize_enum_body(name, variants),
    };
    format!(
        "impl ::twig_serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::twig_serde::Value) -> \
         ::std::result::Result<Self, ::std::string::String> {{\n{body}\n}}\n\
         }}"
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| match &v.kind {
            VariantKind::Unit => None,
            VariantKind::Tuple(n) => {
                let vn = &v.name;
                let body = if *n == 1 {
                    format!(
                        "return ::std::result::Result::Ok({name}::{vn}(\
                         ::twig_serde::Deserialize::from_value(__payload)?));"
                    )
                } else {
                    let inits: String = (0..*n)
                        .map(|i| format!("::twig_serde::Deserialize::from_value(&__items[{i}])?,"))
                        .collect();
                    format!(
                        "let __items = __payload.as_array().ok_or_else(|| \
                         ::std::format!(\"expected array for {name}::{vn}\"))?;\n\
                         if __items.len() != {n} {{ return ::std::result::Result::Err(\
                         ::std::format!(\"expected {n} fields for {name}::{vn}\")); }}\n\
                         return ::std::result::Result::Ok({name}::{vn}({inits}));"
                    )
                };
                Some(format!("\"{vn}\" => {{ {body} }}"))
            }
            VariantKind::Struct(fields) => {
                let vn = &v.name;
                let inits: String = fields
                    .iter()
                    .map(|f| {
                        format!("{f}: ::twig_serde::__field(__obj, \"{f}\", \"{name}::{vn}\")?,")
                    })
                    .collect();
                Some(format!(
                    "\"{vn}\" => {{\n\
                     let __obj = __payload.as_object().ok_or_else(|| \
                     ::std::format!(\"expected object for {name}::{vn}\"))?;\n\
                     return ::std::result::Result::Ok({name}::{vn} {{ {inits} }});\n\
                     }}"
                ))
            }
        })
        .collect();
    format!(
        "if let ::std::option::Option::Some(__s) = __value.as_str() {{\n\
         match __s {{ {unit_arms} _ => {{}} }}\n\
         }}\n\
         if let ::std::option::Option::Some(__entries) = __value.as_object() {{\n\
         if __entries.len() == 1 {{\n\
         let (__tag, __payload) = &__entries[0];\n\
         match __tag.as_str() {{ {tagged_arms} _ => {{}} }}\n\
         }}\n\
         }}\n\
         ::std::result::Result::Err(::std::format!(\
         \"invalid value for {name}: {{__value:?}}\"))"
    )
}
