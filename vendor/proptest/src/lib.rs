//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range / tuple /
//! `any::<bool>()` strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, `.prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros. Cases are generated from a deterministic RNG; no
//! shrinking is performed (a failing case panics with its assertion
//! message).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not count as a run).
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// A deterministic generator; every test run sees the same cases.
    pub fn deterministic() -> Self {
        TestRng { rng: StdRng::seed_from_u64(0x70E5_7C45_E5EE_D001) }
    }

    /// Uniform draw from a range (strategy support).
    pub fn sample_range<R: rand::SampleRange>(&mut self, range: R) -> R::Output {
        self.rng.random_range(range)
    }

    /// Uniform value (strategy support).
    pub fn sample<T: rand::Random>(&mut self) -> T {
        self.rng.random()
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategies {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.sample()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.sample()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Combinator namespaces mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start + 1 >= self.len.end {
                    self.len.start
                } else {
                    rng.sample_range(self.len.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `None` half the time, `Some` of the inner strategy otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.sample::<bool>() {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly among fixed items.
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Uniform choice among `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = rng.sample_range(0..self.items.len());
                self.items[idx].clone()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a proptest case (fails the case, not the
/// whole process, so the runner can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(
            __left == __right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        $crate::prop_assert!(__left == __right, $($fmt)+);
    }};
}

/// Rejects the current case (it is regenerated without counting).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each function runs `config.cases` successful
/// random cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr);) => {};
    (@funcs ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).max(100),
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                let __outcome = (|__rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })(&mut __rng);
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), __msg);
                    }
                }
            }
        }
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(v in 10u32..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_bounds(items in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!(items.len() >= 2 && items.len() < 6);
            for item in items {
                prop_assert!(item < 10);
            }
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..100) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn mapped_and_tuple_strategies(pair in (0u32..5, any::<bool>()).prop_map(|(a, b)| (a * 2, b))) {
            let (a, _b) = pair;
            prop_assert!(a % 2 == 0 && a < 10);
        }

        #[test]
        fn select_picks_members(v in prop::sample::select(vec![1u32, 5, 9])) {
            prop_assert!([1u32, 5, 9].contains(&v));
        }
    }
}
