//! Original offline stand-in modeled on `serde_json`. **Not the
//! crates.io `serde_json` crate** — original code for this repository
//! (see `vendor/README.md`).
//!
//! Converts between the vendored serde's [`Value`] model and JSON text.
//! Supports everything the workspace serializes: objects, arrays, strings
//! with escapes, integers (full `u64`/`i64` range), floats, booleans, and
//! `null`. Maps with non-string keys are represented as arrays of
//! `[key, value]` pairs by the vendored serde itself.

use twig_serde::de::DeserializeOwned;
use twig_serde::{Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                out.push_str(&v.to_string());
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, got `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = chunk
                        .chars()
                        .next()
                        .ok_or_else(|| Error("invalid UTF-8 in string".into()))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-7i64).unwrap()).unwrap(), -7);
        assert_eq!(from_str::<f64>(&to_string(&1.25f64).unwrap()).unwrap(), 1.25);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a \"quoted\" line\nwith\ttabs \\ and unicode: héλ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<(u32, Option<f64>)> = vec![(1, Some(0.5)), (2, None)];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, Option<f64>)>>(&json).unwrap(), v);
    }

    #[test]
    fn integer_extremes_roundtrip() {
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(
            from_str::<i64>(&to_string(&i64::MIN).unwrap()).unwrap(),
            i64::MIN
        );
    }

    #[test]
    fn whole_floats_parse_back_as_floats() {
        // `2.0` prints as `2`; f64 deserialization accepts integers.
        assert_eq!(from_str::<f64>(&to_string(&2.0f64).unwrap()).unwrap(), 2.0);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("12 34").is_err());
    }
}
