//! The columnar on-disk trace format `.twgc`: out-of-core event streams
//! with CRC-framed chunks, per-chunk branch-density summaries, and a
//! trailing directory for macro-block fast-forward.
//!
//! Where `TWGT` (see [`crate::trace`]) is a row-oriented format decoded
//! front to back, `.twgc` splits events into fixed-size chunks and stores
//! each chunk *by column*:
//!
//! ```text
//! file   := header chunk* directory footer
//! header := magic "TWGC" | version u8 (=1) | chunk_target u32
//! chunk  := count u32 | taken u32 | targets u32
//!           | blocks_len u32 | targets_len u32 | crc u32
//!           | taken_bits ⌈count/8⌉ | target_bits ⌈count/8⌉
//!           | blocks (count × LEB128) | target_col (targets × LEB128)
//! dirent := offset u64 | count u32 | taken u32 | targets u32
//! footer := total u64 | dir_offset u64 | chunk_count u32
//!           | dir_crc u32 | footer_crc u32 | end magic "CGWT"
//! ```
//!
//! Every multi-byte integer is little-endian. The chunk `crc` covers the
//! five leading length/summary words plus the payload, so a bit flip or a
//! torn write invalidates exactly the chunk it touches; the footer and
//! directory carry their own CRCs, so a torn tail is rejected at open.
//!
//! Design properties the streaming engine relies on:
//!
//! * **Bounded residency** — the reader ([`ColumnarReader`]) maps the file
//!   ([`crate::MappedBytes`]) and decodes one chunk at a time into a
//!   reusable buffer; consumed pages are returned to the OS, so a
//!   sequential scan of a multi-GB trace holds one chunk (~64Ki events)
//!   plus one mapped window resident.
//! * **Macro-block fast-forward** — each directory entry repeats the
//!   chunk's event count and branch-density summary (taken / has-target
//!   counts), so [`ColumnarReader`] consumers can leap whole chunks
//!   without touching their pages — the trace-level analogue of the
//!   simulator's batched idle stepping.
//! * **Streamed writes** — [`ColumnarWriter`] emits chunks as events
//!   arrive and appends the directory at the end, so a trace larger than
//!   RAM is written through `twig_sched::durable::publish_atomic_with`
//!   without ever being resident ([`write_columnar_file`]).

use std::io::{self, Write};
use std::path::Path;

use twig_bytes::BytesMut;
use twig_sched::durable::{crc32, publish_atomic_with};
use twig_types::BlockId;

use crate::mapped::MappedBytes;
use crate::trace::{put_varint, EventDecoder, TraceError};
use crate::walker::BlockEvent;

const MAGIC: &[u8; 4] = b"TWGC";
const END_MAGIC: &[u8; 4] = b"CGWT";
const VERSION: u8 = 1;

const HEADER_LEN: usize = 4 + 1 + 4;
const CHUNK_HEADER_LEN: usize = 6 * 4;
const DIRENT_LEN: usize = 8 + 3 * 4;
const FOOTER_LEN: usize = 8 + 8 + 4 + 4 + 4 + 4;

/// Default nominal events per chunk. 64Ki events ≈ 200–300 KB encoded:
/// large enough that chunk overhead vanishes, small enough that the
/// reader's decode buffer stays far below the documented RSS bound.
pub const DEFAULT_CHUNK_EVENTS: u32 = 64 * 1024;

/// Branch-density summary of one chunk, replicated in its directory entry
/// so consumers can reason about a region without decoding it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChunkSummary {
    /// Absolute file offset of the chunk.
    pub offset: u64,
    /// Events in the chunk.
    pub events: u32,
    /// Events whose terminator was taken.
    pub taken: u32,
    /// Events carrying a target (taken branches).
    pub targets: u32,
}

impl ChunkSummary {
    /// Fraction of events whose branch was taken — the chunk's branch
    /// density. Quiescent (fall-through-heavy) regions score near zero.
    pub fn taken_density(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            f64::from(self.taken) / f64::from(self.events)
        }
    }
}

/// Streaming `.twgc` encoder over any [`Write`] sink.
///
/// Push events one at a time; chunks are emitted as they fill, and
/// [`ColumnarWriter::finish`] appends the directory and footer. Nothing
/// larger than one chunk is ever buffered.
pub struct ColumnarWriter<W: Write> {
    out: W,
    written: u64,
    chunk_target: u32,
    dir: Vec<ChunkSummary>,
    total: u64,
    // Pending chunk state.
    count: u32,
    taken: u32,
    targets: u32,
    taken_bits: Vec<u8>,
    target_bits: Vec<u8>,
    blocks: BytesMut,
    target_col: BytesMut,
}

impl<W: Write> ColumnarWriter<W> {
    /// Starts a columnar stream with the default chunk size, writing the
    /// file header immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(out: W) -> io::Result<Self> {
        Self::with_chunk_events(out, DEFAULT_CHUNK_EVENTS)
    }

    /// Starts a columnar stream with an explicit nominal chunk size
    /// (clamped to at least 1; tests use tiny chunks to exercise many
    /// boundaries).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn with_chunk_events(mut out: W, chunk_target: u32) -> io::Result<Self> {
        let chunk_target = chunk_target.max(1);
        out.write_all(MAGIC)?;
        out.write_all(&[VERSION])?;
        out.write_all(&chunk_target.to_le_bytes())?;
        Ok(ColumnarWriter {
            out,
            written: HEADER_LEN as u64,
            chunk_target,
            dir: Vec::new(),
            total: 0,
            count: 0,
            taken: 0,
            targets: 0,
            taken_bits: Vec::new(),
            target_bits: Vec::new(),
            blocks: BytesMut::new(),
            target_col: BytesMut::new(),
        })
    }

    /// Appends one event, flushing a chunk when full.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn push(&mut self, ev: BlockEvent) -> io::Result<()> {
        let bit = self.count as usize;
        if bit.is_multiple_of(8) {
            self.taken_bits.push(0);
            self.target_bits.push(0);
        }
        if ev.taken {
            self.taken_bits[bit / 8] |= 1 << (bit % 8);
            self.taken += 1;
        }
        put_varint(&mut self.blocks, u64::from(ev.block.raw()));
        if let Some(t) = ev.target {
            self.target_bits[bit / 8] |= 1 << (bit % 8);
            self.targets += 1;
            put_varint(&mut self.target_col, u64::from(t.raw()));
        }
        self.count += 1;
        self.total += 1;
        if self.count >= self.chunk_target {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.count == 0 {
            return Ok(());
        }
        let mut header = [0u8; CHUNK_HEADER_LEN];
        header[0..4].copy_from_slice(&self.count.to_le_bytes());
        header[4..8].copy_from_slice(&self.taken.to_le_bytes());
        header[8..12].copy_from_slice(&self.targets.to_le_bytes());
        header[12..16].copy_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        header[16..20].copy_from_slice(&(self.target_col.len() as u32).to_le_bytes());
        let crc = crc32_concat(&[
            &header[0..20],
            &self.taken_bits,
            &self.target_bits,
            &self.blocks,
            &self.target_col,
        ]);
        header[20..24].copy_from_slice(&crc.to_le_bytes());
        self.out.write_all(&header)?;
        self.out.write_all(&self.taken_bits)?;
        self.out.write_all(&self.target_bits)?;
        self.out.write_all(&self.blocks)?;
        self.out.write_all(&self.target_col)?;
        self.dir.push(ChunkSummary {
            offset: self.written,
            events: self.count,
            taken: self.taken,
            targets: self.targets,
        });
        self.written += (CHUNK_HEADER_LEN
            + self.taken_bits.len()
            + self.target_bits.len()
            + self.blocks.len()
            + self.target_col.len()) as u64;
        self.count = 0;
        self.taken = 0;
        self.targets = 0;
        self.taken_bits.clear();
        self.target_bits.clear();
        self.blocks.clear();
        self.target_col.clear();
        Ok(())
    }

    /// Flushes the final partial chunk, writes the directory and footer,
    /// and returns the total number of events written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> io::Result<u64> {
        self.flush_chunk()?;
        let dir_offset = self.written;
        let mut dir_bytes = Vec::with_capacity(self.dir.len() * DIRENT_LEN);
        for entry in &self.dir {
            dir_bytes.extend_from_slice(&entry.offset.to_le_bytes());
            dir_bytes.extend_from_slice(&entry.events.to_le_bytes());
            dir_bytes.extend_from_slice(&entry.taken.to_le_bytes());
            dir_bytes.extend_from_slice(&entry.targets.to_le_bytes());
        }
        self.out.write_all(&dir_bytes)?;
        let mut footer = [0u8; FOOTER_LEN];
        footer[0..8].copy_from_slice(&self.total.to_le_bytes());
        footer[8..16].copy_from_slice(&dir_offset.to_le_bytes());
        footer[16..20].copy_from_slice(&(self.dir.len() as u32).to_le_bytes());
        footer[20..24].copy_from_slice(&crc32(&dir_bytes).to_le_bytes());
        let footer_crc = crc32(&footer[0..24]);
        footer[24..28].copy_from_slice(&footer_crc.to_le_bytes());
        footer[28..32].copy_from_slice(END_MAGIC);
        self.out.write_all(&footer)?;
        Ok(self.total)
    }
}

/// CRC-32 over the concatenation of several slices without materializing
/// it (the chunk checksum spans header words and four columns).
fn crc32_concat(parts: &[&[u8]]) -> u32 {
    let mut crc: u32 = !0;
    for part in parts {
        for &byte in *part {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

/// Encodes events into an in-memory `.twgc` buffer (tests, benches).
pub fn encode_columnar(events: &[BlockEvent]) -> Vec<u8> {
    encode_columnar_chunked(events, DEFAULT_CHUNK_EVENTS)
}

/// [`encode_columnar`] with an explicit chunk size.
pub fn encode_columnar_chunked(events: &[BlockEvent], chunk_events: u32) -> Vec<u8> {
    let mut out = Vec::new();
    let mut writer =
        ColumnarWriter::with_chunk_events(&mut out, chunk_events).expect("vec write is infallible");
    for ev in events {
        writer.push(*ev).expect("vec write is infallible");
    }
    writer.finish().expect("vec write is infallible");
    out
}

/// Decodes a full in-memory `.twgc` buffer.
///
/// # Errors
///
/// Returns [`TraceError`] on malformed input.
pub fn decode_columnar(bytes: &[u8]) -> Result<Vec<BlockEvent>, TraceError> {
    ColumnarReader::from_bytes(bytes.to_vec())?.read_all()
}

/// Streams events into a `.twgc` file published atomically (temp +
/// `fsync` + rename via `twig_sched::durable`), without materializing the
/// event stream or the encoded bytes; returns the event count.
///
/// # Errors
///
/// Propagates I/O failures from staging or publishing the file.
pub fn write_columnar_file(
    path: &Path,
    events: impl IntoIterator<Item = BlockEvent>,
) -> io::Result<u64> {
    publish_atomic_with(path, None, None, |out| {
        let mut writer = ColumnarWriter::new(out)?;
        for ev in events {
            writer.push(ev)?;
        }
        writer.finish()
    })
}

/// Zero-copy `.twgc` reader over a mapped file (or owned buffer).
///
/// Opening validates the header, footer, and directory (rejecting torn
/// tails outright); chunk payloads are validated lazily, CRC-checked as
/// each chunk is first decoded, so corruption is detected exactly when it
/// would be consumed and untouched regions never cost a page fault.
#[derive(Debug)]
pub struct ColumnarReader {
    map: MappedBytes,
    dir: Vec<ChunkSummary>,
    total: u64,
    chunk_target: u32,
}

impl ColumnarReader {
    /// Opens and validates a `.twgc` file.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file cannot be mapped, otherwise the
    /// structural error the validation found.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        Self::from_map(MappedBytes::open(path)?)
    }

    /// Wraps an in-memory buffer (tests; identical validation).
    ///
    /// # Errors
    ///
    /// The structural error the validation found, if any.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, TraceError> {
        Self::from_map(MappedBytes::from_vec(bytes))
    }

    fn from_map(map: MappedBytes) -> Result<Self, TraceError> {
        let bytes = map.bytes();
        if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        if bytes[4] != VERSION {
            return Err(TraceError::BadVersion(bytes[4]));
        }
        let chunk_target = u32::from_le_bytes(bytes[5..9].try_into().unwrap());
        if bytes.len() < HEADER_LEN + FOOTER_LEN {
            return Err(TraceError::Corrupt {
                offset: bytes.len() as u64,
                what: "file too short for footer",
            });
        }
        let footer_at = bytes.len() - FOOTER_LEN;
        let footer = &bytes[footer_at..];
        if &footer[28..32] != END_MAGIC {
            return Err(TraceError::Corrupt {
                offset: footer_at as u64 + 28,
                what: "missing end magic (torn tail)",
            });
        }
        let footer_crc = u32::from_le_bytes(footer[24..28].try_into().unwrap());
        if crc32(&footer[0..24]) != footer_crc {
            return Err(TraceError::Corrupt {
                offset: footer_at as u64,
                what: "footer checksum mismatch",
            });
        }
        let total = u64::from_le_bytes(footer[0..8].try_into().unwrap());
        let dir_offset = u64::from_le_bytes(footer[8..16].try_into().unwrap());
        let chunk_count = u32::from_le_bytes(footer[16..20].try_into().unwrap()) as usize;
        let dir_crc = u32::from_le_bytes(footer[20..24].try_into().unwrap());
        let dir_len = chunk_count
            .checked_mul(DIRENT_LEN)
            .ok_or(TraceError::Corrupt {
                offset: footer_at as u64,
                what: "directory size overflow",
            })?;
        let dir_end = (dir_offset as usize).checked_add(dir_len);
        if dir_end != Some(footer_at) || (dir_offset as usize) < HEADER_LEN {
            return Err(TraceError::Corrupt {
                offset: footer_at as u64,
                what: "directory does not abut footer",
            });
        }
        let dir_bytes = &bytes[dir_offset as usize..footer_at];
        if crc32(dir_bytes) != dir_crc {
            return Err(TraceError::Corrupt {
                offset: dir_offset,
                what: "directory checksum mismatch",
            });
        }
        let mut dir = Vec::with_capacity(chunk_count);
        let mut expected_offset = HEADER_LEN as u64;
        let mut summed = 0u64;
        for entry in dir_bytes.chunks_exact(DIRENT_LEN) {
            let offset = u64::from_le_bytes(entry[0..8].try_into().unwrap());
            let events = u32::from_le_bytes(entry[8..12].try_into().unwrap());
            let taken = u32::from_le_bytes(entry[12..16].try_into().unwrap());
            let targets = u32::from_le_bytes(entry[16..20].try_into().unwrap());
            if offset != expected_offset || events == 0 || taken > events || targets > events {
                return Err(TraceError::Corrupt {
                    offset,
                    what: "inconsistent directory entry",
                });
            }
            // Advance past this chunk using its header (bounds-checked
            // against the directory region).
            let header_end = offset as usize + CHUNK_HEADER_LEN;
            if header_end > dir_offset as usize {
                return Err(TraceError::Corrupt {
                    offset,
                    what: "chunk header out of bounds",
                });
            }
            let chunk = &bytes[offset as usize..header_end];
            let count = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
            let blocks_len = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
            let targets_len = u32::from_le_bytes(chunk[16..20].try_into().unwrap());
            if count != events {
                return Err(TraceError::Corrupt {
                    offset,
                    what: "chunk/directory event count mismatch",
                });
            }
            let bits = count.div_ceil(8) as u64;
            expected_offset = offset
                + CHUNK_HEADER_LEN as u64
                + 2 * bits
                + u64::from(blocks_len)
                + u64::from(targets_len);
            if expected_offset > dir_offset {
                return Err(TraceError::Corrupt {
                    offset,
                    what: "chunk payload out of bounds",
                });
            }
            summed += u64::from(events);
            dir.push(ChunkSummary {
                offset,
                events,
                taken,
                targets,
            });
        }
        if expected_offset != dir_offset {
            return Err(TraceError::Corrupt {
                offset: expected_offset,
                what: "gap between last chunk and directory",
            });
        }
        if summed != total {
            return Err(TraceError::Corrupt {
                offset: footer_at as u64,
                what: "footer event total disagrees with directory",
            });
        }
        Ok(ColumnarReader {
            map,
            dir,
            total,
            chunk_target,
        })
    }

    /// Total events in the trace (exact).
    pub fn total_events(&self) -> u64 {
        self.total
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.dir.len()
    }

    /// The writer's nominal events-per-chunk.
    pub fn chunk_target(&self) -> u32 {
        self.chunk_target
    }

    /// Per-chunk branch-density summaries, in file order — readable
    /// without faulting in any chunk payload.
    pub fn summaries(&self) -> &[ChunkSummary] {
        &self.dir
    }

    /// Decodes chunk `index` into `out` (cleared first), CRC-checking the
    /// payload.
    ///
    /// # Errors
    ///
    /// [`TraceError::ChecksumMismatch`] on a corrupt chunk, or a
    /// structural error if the columns disagree with the header.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn decode_chunk_into(
        &self,
        index: usize,
        out: &mut Vec<BlockEvent>,
    ) -> Result<(), TraceError> {
        out.clear();
        let summary = self.dir[index];
        let bytes = self.map.bytes();
        let at = summary.offset as usize;
        let header = &bytes[at..at + CHUNK_HEADER_LEN];
        let count = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let blocks_len = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let targets_len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        let crc_stored = u32::from_le_bytes(header[20..24].try_into().unwrap());
        let bits_len = count.div_ceil(8);
        let payload_at = at + CHUNK_HEADER_LEN;
        let payload = &bytes[payload_at..payload_at + 2 * bits_len + blocks_len + targets_len];
        if crc32_concat(&[&header[0..20], payload]) != crc_stored {
            return Err(TraceError::ChecksumMismatch {
                chunk: index as u32,
                offset: summary.offset,
            });
        }
        let taken_bits = &payload[..bits_len];
        let target_bits = &payload[bits_len..2 * bits_len];
        let blocks_col = &payload[2 * bits_len..2 * bits_len + blocks_len];
        let target_col = &payload[2 * bits_len + blocks_len..];
        let event_base: u64 = self.dir[..index].iter().map(|s| u64::from(s.events)).sum();
        let mut blocks = EventDecoder::new(blocks_col, (payload_at + 2 * bits_len) as u64, event_base);
        let mut targets = EventDecoder::new(
            target_col,
            (payload_at + 2 * bits_len + blocks_len) as u64,
            event_base,
        );
        out.reserve(count);
        for i in 0..count {
            let bit = 1u8 << (i % 8);
            let taken = taken_bits[i / 8] & bit != 0;
            let block = BlockId::new(blocks.varint()? as u32);
            let target = if target_bits[i / 8] & bit != 0 {
                Some(BlockId::new(targets.varint()? as u32))
            } else {
                None
            };
            out.push(BlockEvent {
                block,
                taken,
                target,
            });
        }
        if blocks.consumed() != blocks_len || targets.consumed() != targets_len {
            return Err(TraceError::Corrupt {
                offset: summary.offset,
                what: "column lengths disagree with event count",
            });
        }
        Ok(())
    }

    /// Returns consumed chunk pages to the OS (best-effort) — called by
    /// the sequential reader after it moves past a chunk.
    pub fn release_chunk(&self, index: usize) {
        let summary = self.dir[index];
        let end = self
            .dir
            .get(index + 1)
            .map(|next| next.offset as usize)
            .unwrap_or(summary.offset as usize);
        self.map
            .advise_dont_need(summary.offset as usize, end.max(summary.offset as usize));
    }

    /// Decodes the entire trace (validation helper; defeats the bounded-
    /// residency design on purpose).
    ///
    /// # Errors
    ///
    /// The first chunk-level error encountered.
    pub fn read_all(&self) -> Result<Vec<BlockEvent>, TraceError> {
        let mut events = Vec::with_capacity((self.total as usize).min(1 << 24));
        let mut chunk = Vec::new();
        for i in 0..self.dir.len() {
            self.decode_chunk_into(i, &mut chunk)?;
            events.extend_from_slice(&chunk);
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    fn sample_events(n: usize) -> Vec<BlockEvent> {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        Walker::new(&p, InputConfig::numbered(0)).take(n).collect()
    }

    #[test]
    fn roundtrip_across_chunk_sizes() {
        let events = sample_events(10_000);
        for chunk in [1u32, 7, 256, 4096, DEFAULT_CHUNK_EVENTS] {
            let bytes = encode_columnar_chunked(&events, chunk);
            assert_eq!(decode_columnar(&bytes).unwrap(), events, "chunk={chunk}");
        }
    }

    #[test]
    fn roundtrip_empty() {
        let bytes = encode_columnar(&[]);
        assert_eq!(decode_columnar(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn summaries_report_branch_density() {
        let events = sample_events(5_000);
        let bytes = encode_columnar_chunked(&events, 512);
        let reader = ColumnarReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.total_events(), events.len() as u64);
        let mut at = 0usize;
        for summary in reader.summaries() {
            let window = &events[at..at + summary.events as usize];
            let taken = window.iter().filter(|e| e.taken).count() as u32;
            let targets = window.iter().filter(|e| e.target.is_some()).count() as u32;
            assert_eq!((summary.taken, summary.targets), (taken, targets));
            at += summary.events as usize;
        }
        assert_eq!(at, events.len());
    }

    #[test]
    fn rejects_torn_tail() {
        let events = sample_events(3_000);
        let bytes = encode_columnar_chunked(&events, 256);
        for cut in [bytes.len() - 1, bytes.len() - 20, bytes.len() / 2, 10] {
            let torn = bytes[..cut].to_vec();
            assert!(
                ColumnarReader::from_bytes(torn).is_err(),
                "accepted torn tail at {cut}"
            );
        }
    }

    #[test]
    fn rejects_every_single_bit_flip_in_a_chunk() {
        let events = sample_events(300);
        let bytes = encode_columnar_chunked(&events, 128);
        let reader = ColumnarReader::from_bytes(bytes.clone()).unwrap();
        let first_chunk = reader.summaries()[0];
        let chunk_end = reader.summaries()[1].offset as usize;
        drop(reader);
        // Flip one bit at a few positions spread across the first chunk;
        // either open or the chunk decode must reject each.
        for at in (first_chunk.offset as usize..chunk_end).step_by(17) {
            let mut mutated = bytes.clone();
            mutated[at] ^= 0x10;
            let rejected = match ColumnarReader::from_bytes(mutated) {
                Err(_) => true,
                Ok(r) => r.read_all().is_err(),
            };
            assert!(rejected, "bit flip at byte {at} went undetected");
        }
    }

    #[test]
    fn release_chunk_does_not_corrupt_reads() {
        let events = sample_events(4_000);
        let bytes = encode_columnar_chunked(&events, 512);
        let reader = ColumnarReader::from_bytes(bytes).unwrap();
        let mut buf = Vec::new();
        let mut replay = Vec::new();
        for i in 0..reader.chunk_count() {
            reader.decode_chunk_into(i, &mut buf).unwrap();
            replay.extend_from_slice(&buf);
            reader.release_chunk(i);
        }
        assert_eq!(replay, events);
    }

    #[test]
    fn file_roundtrip_via_atomic_publish() {
        let dir = std::env::temp_dir().join(format!("twig-columnar-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.twgc");
        let events = sample_events(20_000);
        let written = write_columnar_file(&path, events.iter().copied()).unwrap();
        assert_eq!(written, events.len() as u64);
        let reader = ColumnarReader::open(&path).unwrap();
        assert_eq!(reader.read_all().unwrap(), events);
        // No temp residue.
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().to_string_lossy().ends_with(".twig-tmp"))
            .collect();
        assert!(residue.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
