//! The synthetic program model: functions, basic blocks, terminators.
//!
//! A [`Program`] is the stand-in for the multi-megabyte x86 binaries the
//! paper profiles. It is a complete control-flow graph with a concrete
//! binary layout (every block has an address and a byte size), so that the
//! frontend simulator can model I-cache lines, BTB indices, and signed
//! address offsets exactly as it would for a real binary.

use twig_serde::{Deserialize, Serialize};
use twig_types::{Addr, BlockId, BranchKind, BranchOutcome, BranchRecord, FuncId, PrefetchOp};

/// How a basic block transfers control when it finishes executing.
///
/// Block references are stable [`BlockId`]s; the concrete branch-instruction
/// addresses are a function of the current [layout](crate::layout).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Terminator {
    /// No control transfer: execution continues at `next` (which the layout
    /// guarantees to be the physically following block).
    FallThrough {
        /// The successor block.
        next: BlockId,
    },
    /// Conditional direct branch (`jcc`).
    Conditional {
        /// Target if taken.
        taken: BlockId,
        /// Successor if not taken (physically next block).
        not_taken: BlockId,
        /// Base probability of the branch being taken; the workload input
        /// configuration may skew this per input.
        taken_prob: f32,
    },
    /// Unconditional direct jump (`jmp rel`).
    Jump {
        /// Jump target.
        target: BlockId,
    },
    /// Direct call; control returns to `return_to` when the callee returns.
    Call {
        /// Called function.
        callee: FuncId,
        /// Block executed after the callee returns (physically next block).
        return_to: BlockId,
    },
    /// Indirect jump with a weighted set of observed targets.
    IndirectJump {
        /// `(target, weight)` pairs; weights need not be normalized.
        targets: Vec<(BlockId, f32)>,
    },
    /// Indirect call with a weighted set of observed callees.
    IndirectCall {
        /// `(callee, weight)` pairs; weights need not be normalized.
        callees: Vec<(FuncId, f32)>,
        /// Block executed after the callee returns (physically next block).
        return_to: BlockId,
    },
    /// Function return.
    Return,
}

impl Terminator {
    /// The branch kind of this terminator, or `None` for a fall-through.
    pub fn branch_kind(&self) -> Option<BranchKind> {
        match self {
            Terminator::FallThrough { .. } => None,
            Terminator::Conditional { .. } => Some(BranchKind::Conditional),
            Terminator::Jump { .. } => Some(BranchKind::DirectJump),
            Terminator::Call { .. } => Some(BranchKind::DirectCall),
            Terminator::IndirectJump { .. } => Some(BranchKind::IndirectJump),
            Terminator::IndirectCall { .. } => Some(BranchKind::IndirectCall),
            Terminator::Return => Some(BranchKind::Return),
        }
    }

    /// The statically known taken-target block for direct branches.
    ///
    /// `None` for fall-throughs, indirect branches, and returns.
    pub fn direct_target(&self) -> Option<BlockId> {
        match self {
            Terminator::Conditional { taken, .. } => Some(*taken),
            Terminator::Jump { target } => Some(*target),
            _ => None,
        }
    }
}

/// One basic block of the synthetic program.
///
/// `addr` and byte sizes are assigned by the [layout](crate::layout) pass and
/// updated when the Twig rewriter injects prefetch operations and re-lays-out
/// the binary.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Owning function.
    pub func: FuncId,
    /// First-byte address of the block in the current layout.
    pub addr: Addr,
    /// Number of *original* program instructions, including the terminator
    /// branch (if any) but excluding injected prefetch operations.
    pub num_instrs: u32,
    /// Byte size of the original instructions (terminator included).
    pub body_bytes: u32,
    /// Byte size of the terminator branch instruction (0 for fall-through).
    pub term_bytes: u32,
    /// Control transfer at the end of the block.
    pub term: Terminator,
    /// Software BTB prefetch operations injected by the Twig rewriter.
    ///
    /// Prefetch ops execute at the *start* of the block (they are placed
    /// before the original instructions so they retire before the block's
    /// own branch, maximizing timeliness).
    pub prefetch_ops: Vec<PrefetchOp>,
}

impl BasicBlock {
    /// Total byte size in the current layout, including injected ops.
    #[inline]
    pub fn size_bytes(&self) -> u32 {
        self.body_bytes + self.prefetch_bytes()
    }

    /// Bytes of injected prefetch operations.
    #[inline]
    pub fn prefetch_bytes(&self) -> u32 {
        self.prefetch_ops.iter().map(|op| op.encoded_bytes()).sum()
    }

    /// Total dynamic instruction count per execution, including injected ops.
    #[inline]
    pub fn total_instrs(&self) -> u32 {
        self.num_instrs + self.prefetch_ops.len() as u32
    }

    /// Address of the terminator branch instruction.
    ///
    /// For fall-through blocks this is the address of the last instruction
    /// (which is not a branch); callers should check [`Self::branch_kind`].
    #[inline]
    pub fn branch_pc(&self) -> Addr {
        self.addr + u64::from(self.size_bytes() - self.term_bytes.max(1))
    }

    /// Address of the first byte after the block (fall-through address).
    #[inline]
    pub fn end_addr(&self) -> Addr {
        self.addr + u64::from(self.size_bytes())
    }

    /// Branch kind of the terminator, if it is a branch.
    #[inline]
    pub fn branch_kind(&self) -> Option<BranchKind> {
        self.term.branch_kind()
    }
}

/// One function: a contiguous, dense range of block ids.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Function {
    /// This function's id.
    pub id: FuncId,
    /// Entry block (always the first block of the range).
    pub entry: BlockId,
    /// First block id of the function (inclusive).
    pub first_block: u32,
    /// One past the last block id of the function.
    pub last_block: u32,
}

impl Function {
    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> u32 {
        self.last_block - self.first_block
    }

    /// Iterator over the function's block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (self.first_block..self.last_block).map(BlockId::new)
    }
}

/// A complete synthetic program: CFG plus binary layout.
///
/// # Examples
///
/// Programs are normally produced by the [generator](crate::generator) from a
/// [`WorkloadSpec`](crate::WorkloadSpec):
///
/// ```
/// use twig_workload::{ProgramGenerator, WorkloadSpec};
///
/// let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// assert!(program.num_blocks() > 0);
/// let entry = program.function(program.entry_function());
/// assert_eq!(entry.entry.index() as u32, entry.first_block);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Program {
    functions: Vec<Function>,
    blocks: Vec<BasicBlock>,
    entry_function: FuncId,
    /// Sorted key-value table for `brcoalesce` (block ids whose terminator
    /// branches are prefetchable via the table). Laid out in the text
    /// segment after the last function.
    coalesce_table: Vec<BlockId>,
    /// Address of the first coalesce-table entry in the current layout.
    coalesce_table_addr: Addr,
}

impl Program {
    /// Assembles a program from parts. Intended for the generator and the
    /// rewriter; invariants (dense function ranges, valid ids) are checked
    /// in debug builds.
    pub fn from_parts(functions: Vec<Function>, blocks: Vec<BasicBlock>, entry: FuncId) -> Self {
        debug_assert!(entry.index() < functions.len());
        debug_assert!(functions
            .iter()
            .enumerate()
            .all(|(i, f)| f.id.index() == i && f.first_block <= f.last_block));
        Program {
            functions,
            blocks,
            entry_function: entry,
            coalesce_table: Vec::new(),
            coalesce_table_addr: Addr::ZERO,
        }
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of functions.
    #[inline]
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// The program entry function (the event-loop dispatcher).
    #[inline]
    pub fn entry_function(&self) -> FuncId {
        self.entry_function
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable block access (used by the rewriter).
    #[inline]
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Iterator over all blocks with their ids.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i as u32), b))
    }

    /// Iterator over all functions.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.iter()
    }

    /// The sorted coalesce table (block ids ordered by branch address).
    #[inline]
    pub fn coalesce_table(&self) -> &[BlockId] {
        &self.coalesce_table
    }

    /// Installs the coalesce table (rewriter only). Entries must be sorted
    /// by terminator branch address in the final layout.
    pub fn set_coalesce_table(&mut self, table: Vec<BlockId>) {
        self.coalesce_table = table;
    }

    /// Address of coalesce-table entry `index` in the text segment.
    #[inline]
    pub fn coalesce_entry_addr(&self, index: u32) -> Addr {
        self.coalesce_table_addr
            + u64::from(index) * u64::from(twig_types::COALESCE_ENTRY_BYTES)
    }

    /// Sets the coalesce-table base address (layout pass only).
    pub(crate) fn set_coalesce_table_addr(&mut self, addr: Addr) {
        self.coalesce_table_addr = addr;
    }

    /// Resolves the dynamic [`BranchRecord`] for a block execution.
    ///
    /// `taken` is the resolved direction (always `true` for unconditional
    /// branches); `target_block` must be provided for taken branches and is
    /// validated against the CFG for direct branches in debug builds.
    ///
    /// Returns `None` for fall-through blocks (no branch executed).
    pub fn resolve_branch(
        &self,
        id: BlockId,
        taken: bool,
        target_block: Option<BlockId>,
    ) -> Option<BranchRecord> {
        let block = self.block(id);
        let kind = block.branch_kind()?;
        let outcome = if taken {
            let tb = target_block.expect("taken branch must carry a target block");
            let target_addr = match &block.term {
                // Calls and indirect calls land on the callee's entry block.
                Terminator::Call { callee, .. } => {
                    debug_assert_eq!(*callee, self.block(tb).func);
                    self.block(self.function(*callee).entry).addr
                }
                Terminator::IndirectCall { .. } => self.block(tb).addr,
                _ => self.block(tb).addr,
            };
            BranchOutcome::Taken(target_addr)
        } else {
            debug_assert_eq!(kind, BranchKind::Conditional);
            BranchOutcome::NotTaken
        };
        Some(BranchRecord {
            pc: block.branch_pc(),
            kind,
            outcome,
            fallthrough: block.end_addr(),
        })
    }

    /// The statically known taken-target *address* of a direct branch
    /// terminator, if any. Used by BTB prefetching, which can only encode
    /// statically known targets.
    pub fn direct_branch_target_addr(&self, id: BlockId) -> Option<Addr> {
        let block = self.block(id);
        match &block.term {
            Terminator::Conditional { taken, .. } => Some(self.block(*taken).addr),
            Terminator::Jump { target } => Some(self.block(*target).addr),
            Terminator::Call { callee, .. } => {
                Some(self.block(self.function(*callee).entry).addr)
            }
            _ => None,
        }
    }

    /// Block ids whose bytes overlap the given cache line.
    ///
    /// Relies on the layout invariant that block addresses are globally
    /// non-decreasing in block-id order (functions are placed in id order
    /// and blocks are contiguous within functions).
    ///
    /// Used by predecode-style prefetchers (Confluence, Shotgun) that
    /// extract the branches of a fetched/prefetched I-cache line.
    pub fn blocks_overlapping_line(
        &self,
        line: twig_types::CacheLineAddr,
    ) -> impl Iterator<Item = BlockId> + '_ {
        let base = line.base();
        let end = line.next().base();
        // First block whose end extends past the line base.
        let start = self
            .blocks
            .partition_point(|b| b.end_addr() <= base);
        self.blocks[start..]
            .iter()
            .take_while(move |b| b.addr < end)
            .enumerate()
            .map(move |(i, _)| BlockId::new((start + i) as u32))
    }

    /// Blocks whose *terminator branch instruction* lies in the given line,
    /// together with their statically known target (direct branches only).
    pub fn branches_in_line(
        &self,
        line: twig_types::CacheLineAddr,
    ) -> impl Iterator<Item = (BlockId, twig_types::BranchKind, Option<Addr>)> + '_ {
        self.blocks_overlapping_line(line).filter_map(move |id| {
            let block = self.block(id);
            let kind = block.branch_kind()?;
            if block.branch_pc().line() != line {
                return None;
            }
            Some((id, kind, self.direct_branch_target_addr(id)))
        })
    }

    /// Total text-segment size in bytes (blocks plus coalesce table),
    /// assuming the current layout is packed.
    pub fn text_bytes(&self) -> u64 {
        let code: u64 = self.blocks.iter().map(|b| u64::from(b.size_bytes())).sum();
        code + self.coalesce_table.len() as u64 * u64::from(twig_types::COALESCE_ENTRY_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_program() -> Program {
        let blocks = vec![
            BasicBlock {
                func: FuncId::new(0),
                addr: Addr::new(0x1000),
                num_instrs: 4,
                body_bytes: 16,
                term_bytes: 4,
                term: Terminator::Conditional {
                    taken: BlockId::new(0),
                    not_taken: BlockId::new(1),
                    taken_prob: 0.5,
                },
                prefetch_ops: Vec::new(),
            },
            BasicBlock {
                func: FuncId::new(0),
                addr: Addr::new(0x1010),
                num_instrs: 2,
                body_bytes: 8,
                term_bytes: 2,
                term: Terminator::Return,
                prefetch_ops: Vec::new(),
            },
        ];
        let functions = vec![Function {
            id: FuncId::new(0),
            entry: BlockId::new(0),
            first_block: 0,
            last_block: 2,
        }];
        Program::from_parts(functions, blocks, FuncId::new(0))
    }

    #[test]
    fn branch_pc_is_last_instruction() {
        let p = two_block_program();
        let b = p.block(BlockId::new(0));
        assert_eq!(b.branch_pc(), Addr::new(0x100c));
        assert_eq!(b.end_addr(), Addr::new(0x1010));
    }

    #[test]
    fn resolve_taken_conditional() {
        let p = two_block_program();
        let rec = p
            .resolve_branch(BlockId::new(0), true, Some(BlockId::new(0)))
            .unwrap();
        assert_eq!(rec.kind, BranchKind::Conditional);
        assert_eq!(rec.outcome, BranchOutcome::Taken(Addr::new(0x1000)));
        assert_eq!(rec.fallthrough, Addr::new(0x1010));
    }

    #[test]
    fn resolve_not_taken_conditional() {
        let p = two_block_program();
        let rec = p.resolve_branch(BlockId::new(0), false, None).unwrap();
        assert_eq!(rec.outcome, BranchOutcome::NotTaken);
        assert_eq!(rec.next_fetch(), Addr::new(0x1010));
    }

    #[test]
    fn prefetch_ops_grow_block() {
        let mut p = two_block_program();
        let before = p.block(BlockId::new(0)).size_bytes();
        p.block_mut(BlockId::new(0))
            .prefetch_ops
            .push(PrefetchOp::BrPrefetch {
                branch_block: BlockId::new(1),
            });
        let b = p.block(BlockId::new(0));
        assert_eq!(b.size_bytes(), before + twig_types::BRPREFETCH_BYTES);
        assert_eq!(b.total_instrs(), 5);
    }

    #[test]
    fn text_bytes_counts_table() {
        let mut p = two_block_program();
        assert_eq!(p.text_bytes(), 24);
        p.set_coalesce_table(vec![BlockId::new(0)]);
        assert_eq!(
            p.text_bytes(),
            24 + u64::from(twig_types::COALESCE_ENTRY_BYTES)
        );
    }

    #[test]
    fn direct_target_addrs() {
        let p = two_block_program();
        assert_eq!(
            p.direct_branch_target_addr(BlockId::new(0)),
            Some(Addr::new(0x1000))
        );
        assert_eq!(p.direct_branch_target_addr(BlockId::new(1)), None);
    }
}
