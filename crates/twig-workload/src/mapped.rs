//! Read-only memory-mapped file buffers for the out-of-core trace reader.
//!
//! This is the single module in the crate (and the workspace's model code)
//! that touches `unsafe`: a minimal, hand-written binding to `mmap(2)` /
//! `munmap(2)` / `madvise(2)` — std already links libc on unix, so no
//! external crate is needed. Everything above this module sees only safe
//! `&[u8]` access.
//!
//! Why mmap at all: the columnar `.twgc` reader promises *bounded resident
//! memory* on arbitrarily large traces. Mapping the file gives zero-copy
//! access to each CRC-framed chunk, and [`MappedBytes::advise_dont_need`]
//! returns consumed pages to the OS so a sequential scan's RSS stays flat
//! instead of growing to the file size.
//!
//! On non-unix platforms (and for in-memory tests) the same type wraps an
//! owned buffer; the API is identical, only the residency guarantee is
//! platform-specific.

use std::fs::File;
use std::io;
use std::path::Path;

/// Hand-written libc bindings; the only unsafe code in the crate.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;
    use std::ptr::NonNull;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MADV_DONTNEED: i32 = 4;
    /// `mmap` failure sentinel (`MAP_FAILED`).
    const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

    unsafe extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    /// An owned read-only private mapping of a whole file.
    #[derive(Debug)]
    pub(super) struct Mapping {
        ptr: NonNull<u8>,
        len: usize,
    }

    // SAFETY: the mapping is read-only (PROT_READ) and private; concurrent
    // reads from multiple threads are safe, and the pages stay valid until
    // Drop unmaps them.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero and
        /// no larger than the file.
        pub(super) fn new(file: &File, len: usize) -> io::Result<Mapping> {
            debug_assert!(len > 0);
            // SAFETY: arguments follow the mmap contract — NULL hint, a
            // length validated non-zero by the caller, a file descriptor
            // that outlives the call (the mapping itself survives fd
            // close), and offset 0.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == MAP_FAILED || ptr.is_null() {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping {
                ptr: NonNull::new(ptr.cast()).expect("mmap returned non-null"),
                len,
            })
        }

        pub(super) fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the borrow cannot outlive the mapping.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }

        /// Tells the kernel the byte range will not be needed again
        /// (best-effort; advice failures are ignored).
        pub(super) fn dont_need(&self, start: usize, end: usize) {
            const PAGE: usize = 4096;
            // Only whole pages strictly inside the range may be dropped.
            let lo = start.next_multiple_of(PAGE);
            let hi = (end.min(self.len) / PAGE) * PAGE;
            if hi > lo {
                // SAFETY: [lo, hi) is page-aligned and inside the live
                // mapping; MADV_DONTNEED on a private read-only file
                // mapping merely drops clean pages (re-faulted from the
                // file on next access).
                let rc = unsafe { madvise(self.ptr.as_ptr().add(lo).cast(), hi - lo, MADV_DONTNEED) };
                let _ = rc;
            }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region returned by mmap, once.
            let rc = unsafe { munmap(self.ptr.as_ptr().cast(), self.len) };
            debug_assert_eq!(rc, 0, "munmap failed");
        }
    }
}

/// A read-only byte buffer that is either a zero-copy file mapping (unix)
/// or an owned in-memory buffer (tests, other platforms, empty files).
#[derive(Debug)]
pub struct MappedBytes {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    #[cfg(unix)]
    Mapped(sys::Mapping),
    Owned(Vec<u8>),
}

impl MappedBytes {
    /// Maps `path` read-only. Falls back to reading the file into memory
    /// where mapping is unavailable (non-unix, zero-length files).
    pub fn open(path: &Path) -> io::Result<MappedBytes> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        {
            if len > 0 {
                let mapping = sys::Mapping::new(&file, len as usize)?;
                return Ok(MappedBytes {
                    repr: Repr::Mapped(mapping),
                });
            }
        }
        let _ = len;
        let mut buf = Vec::new();
        {
            use std::io::Read;
            let mut file = file;
            file.read_to_end(&mut buf)?;
        }
        Ok(MappedBytes {
            repr: Repr::Owned(buf),
        })
    }

    /// Wraps an owned buffer — the in-memory seam the property tests use
    /// to drive the columnar reader without touching the filesystem.
    pub fn from_vec(bytes: Vec<u8>) -> MappedBytes {
        MappedBytes {
            repr: Repr::Owned(bytes),
        }
    }

    /// The full buffer.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mapped(m) => m.bytes(),
            Repr::Owned(v) => v,
        }
    }

    /// Advises the OS that `[start, end)` has been consumed and its pages
    /// may be reclaimed. Best-effort and a no-op for owned buffers.
    pub fn advise_dont_need(&self, start: usize, end: usize) {
        match &self.repr {
            #[cfg(unix)]
            Repr::Mapped(m) => m.dont_need(start, end),
            Repr::Owned(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_real_file_contents() {
        let dir = std::env::temp_dir().join(format!("twig-mapped-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = MappedBytes::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        // Dropping consumed pages must not change later reads (pages are
        // re-faulted from the file).
        map.advise_dont_need(0, 100_000);
        assert_eq!(map.bytes(), &payload[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_and_owned_buffers() {
        let dir = std::env::temp_dir().join(format!("twig-mapped-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = MappedBytes::open(&path).unwrap();
        assert!(map.bytes().is_empty());
        let owned = MappedBytes::from_vec(vec![1, 2, 3]);
        assert_eq!(owned.bytes(), &[1, 2, 3]);
        owned.advise_dont_need(0, 3);
        assert_eq!(owned.bytes(), &[1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
