//! Hand-construction of exact programs for tests and micro-experiments.
//!
//! The [`ProgramGenerator`](crate::ProgramGenerator) builds statistically
//! realistic programs; this builder constructs *exact* control-flow graphs
//! — a loop of N blocks, a call chain of depth D — so tests can assert
//! precise simulator behaviour (resteer latencies, region formation, BTB
//! set conflicts) against known structures.

use twig_types::{Addr, BlockId, FuncId};

use crate::layout::{assign_layout, LayoutOptions};
use crate::program::{BasicBlock, Function, Program, Terminator};

/// Builder for one function's blocks.
#[derive(Debug)]
struct FunctionDraft {
    blocks: Vec<BlockDraft>,
}

#[derive(Debug)]
struct BlockDraft {
    num_instrs: u32,
    instr_bytes: u32,
    term: Terminator,
}

/// Incremental program construction with explicit control flow.
///
/// Block references use `(function index, block index)` pairs resolved to
/// global [`BlockId`]s at [`build`](Self::build) time, so forward
/// references are legal.
///
/// # Examples
///
/// A two-function program — an entry loop calling a leaf:
///
/// ```
/// use twig_workload::{ProgramBuilder, Terminator};
///
/// let mut b = ProgramBuilder::new();
/// let f0 = b.function();
/// let f1 = b.function();
/// // f0: bb0 calls f1, bb1 loops back to bb0.
/// b.block(f0, 4, Terminator::Call { callee: b.func_id(f1), return_to: b.block_ref(f0, 1) });
/// b.block(f0, 4, Terminator::Jump { target: b.block_ref(f0, 0) });
/// // f1: straight-line then return.
/// b.block(f1, 6, Terminator::FallThrough { next: b.block_ref(f1, 1) });
/// b.block(f1, 2, Terminator::Return);
/// let program = b.build(f0);
/// assert_eq!(program.num_functions(), 2);
/// assert_eq!(program.num_blocks(), 4);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<FunctionDraft>,
    instr_bytes: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder (4-byte instructions by default).
    pub fn new() -> Self {
        ProgramBuilder {
            functions: Vec::new(),
            instr_bytes: 4,
        }
    }

    /// Sets the instruction size used for subsequently added blocks.
    pub fn instr_bytes(&mut self, bytes: u32) -> &mut Self {
        assert!(bytes > 0);
        self.instr_bytes = bytes;
        self
    }

    /// Declares a new (initially empty) function, returning its index.
    pub fn function(&mut self) -> usize {
        self.functions.push(FunctionDraft { blocks: Vec::new() });
        self.functions.len() - 1
    }

    /// The [`FuncId`] a function index will receive.
    pub fn func_id(&self, func: usize) -> FuncId {
        FuncId::new(func as u32)
    }

    /// The global [`BlockId`] that block `idx` of function `func` will
    /// receive. Valid for forward references (the block need not exist
    /// yet); validated at build time.
    pub fn block_ref(&self, func: usize, idx: usize) -> BlockId {
        let before: usize = self.functions[..func].iter().map(|f| f.blocks.len()).sum();
        // Blocks of earlier functions are already final; within `func`,
        // indices are stable because blocks are only appended.
        let _ = &self.functions[func];
        BlockId::new((before + idx) as u32)
    }

    /// Appends a block with `num_instrs` instructions (terminator included)
    /// to `func`, returning its global id.
    ///
    /// # Panics
    ///
    /// Panics if `num_instrs` is zero or blocks were already added to a
    /// *later* function (which would shift this block's id).
    pub fn block(&mut self, func: usize, num_instrs: u32, term: Terminator) -> BlockId {
        assert!(num_instrs > 0, "blocks need at least one instruction");
        assert!(
            self.functions[func + 1..].iter().all(|f| f.blocks.is_empty()),
            "add blocks in function order (later functions already have blocks)"
        );
        let id = self.block_ref(func, self.functions[func].blocks.len());
        self.functions[func].blocks.push(BlockDraft {
            num_instrs,
            instr_bytes: self.instr_bytes,
            term,
        });
        id
    }

    /// Finalizes the program with `entry` as its dispatcher function and
    /// assigns the default layout.
    ///
    /// # Panics
    ///
    /// Panics if any function is empty or a block reference is out of
    /// range.
    pub fn build(self, entry: usize) -> Program {
        self.build_with_layout(entry, &LayoutOptions::default())
    }

    /// [`build`](Self::build) with explicit layout options.
    ///
    /// # Panics
    ///
    /// See [`build`](Self::build).
    pub fn build_with_layout(self, entry: usize, layout: &LayoutOptions) -> Program {
        assert!(
            self.functions.iter().all(|f| !f.blocks.is_empty()),
            "every declared function needs at least one block"
        );
        let mut functions = Vec::with_capacity(self.functions.len());
        let mut blocks = Vec::new();
        for (fi, draft) in self.functions.into_iter().enumerate() {
            let first_block = blocks.len() as u32;
            for b in draft.blocks {
                let term_bytes = match &b.term {
                    Terminator::FallThrough { .. } => 0,
                    Terminator::Conditional { .. } => 4,
                    Terminator::Jump { .. } => 5,
                    Terminator::Call { .. } => 5,
                    Terminator::IndirectJump { .. } => 3,
                    Terminator::IndirectCall { .. } => 3,
                    Terminator::Return => 1,
                };
                blocks.push(BasicBlock {
                    func: FuncId::new(fi as u32),
                    addr: Addr::ZERO,
                    num_instrs: b.num_instrs,
                    body_bytes: (b.num_instrs - 1) * b.instr_bytes + term_bytes.max(1),
                    term_bytes,
                    term: b.term,
                    prefetch_ops: Vec::new(),
                });
            }
            let last_block = blocks.len() as u32;
            functions.push(Function {
                id: FuncId::new(fi as u32),
                entry: BlockId::new(first_block),
                first_block,
                last_block,
            });
        }
        // Validate references.
        let num_blocks = blocks.len() as u32;
        let num_funcs = functions.len() as u32;
        for b in &blocks {
            let check_block = |id: BlockId| {
                assert!(id.raw() < num_blocks, "dangling block reference {id}");
            };
            let check_func = |id: FuncId| {
                assert!(id.raw() < num_funcs, "dangling function reference {id}");
            };
            match &b.term {
                Terminator::FallThrough { next } => check_block(*next),
                Terminator::Conditional {
                    taken, not_taken, ..
                } => {
                    check_block(*taken);
                    check_block(*not_taken);
                }
                Terminator::Jump { target } => check_block(*target),
                Terminator::Call { callee, return_to } => {
                    check_func(*callee);
                    check_block(*return_to);
                }
                Terminator::IndirectJump { targets } => {
                    for (t, _) in targets {
                        check_block(*t);
                    }
                }
                Terminator::IndirectCall { callees, return_to } => {
                    for (c, _) in callees {
                        check_func(*c);
                    }
                    check_block(*return_to);
                }
                Terminator::Return => {}
            }
        }
        let mut program = Program::from_parts(functions, blocks, FuncId::new(entry as u32));
        assign_layout(&mut program, layout);
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputConfig, Walker};

    /// A dispatcher that calls a leaf and loops forever.
    fn loop_calling_leaf() -> Program {
        let mut b = ProgramBuilder::new();
        let f0 = b.function();
        let f1 = b.function();
        b.block(
            f0,
            4,
            Terminator::Call {
                callee: b.func_id(f1),
                return_to: b.block_ref(f0, 1),
            },
        );
        b.block(
            f0,
            4,
            Terminator::Jump {
                target: b.block_ref(f0, 0),
            },
        );
        b.block(
            f1,
            6,
            Terminator::FallThrough {
                next: b.block_ref(f1, 1),
            },
        );
        b.block(f1, 2, Terminator::Return);
        b.build(f0)
    }

    #[test]
    fn ids_are_stable_and_layout_contiguous() {
        let p = loop_calling_leaf();
        assert_eq!(p.num_blocks(), 4);
        let b0 = p.block(BlockId::new(0));
        let b1 = p.block(BlockId::new(1));
        assert_eq!(b0.end_addr(), b1.addr);
        assert_eq!(p.function(FuncId::new(1)).entry, BlockId::new(2));
    }

    #[test]
    fn walk_is_the_expected_cycle() {
        let p = loop_calling_leaf();
        let seq: Vec<u32> = Walker::new(&p, InputConfig::numbered(0))
            .take(8)
            .map(|e| e.block.raw())
            .collect();
        // call -> leaf bb2 -> leaf bb3 (ret) -> bb1 (jump) -> repeat
        assert_eq!(seq, vec![0, 2, 3, 1, 0, 2, 3, 1]);
    }

    #[test]
    fn conditional_probabilities_respected() {
        let mut b = ProgramBuilder::new();
        let f0 = b.function();
        // bb0: never-taken conditional to bb0 (self), falls to bb1;
        // bb1 jumps back.
        b.block(
            f0,
            3,
            Terminator::Conditional {
                taken: b.block_ref(f0, 0),
                not_taken: b.block_ref(f0, 1),
                taken_prob: 0.0,
            },
        );
        b.block(
            f0,
            3,
            Terminator::Jump {
                target: b.block_ref(f0, 0),
            },
        );
        let p = b.build(f0);
        // With zero skew the branch is never taken.
        let input = InputConfig {
            cond_skew: 0.0,
            weight_skew: 0.0,
            ..InputConfig::numbered(0)
        };
        for ev in Walker::new(&p, input).take(100) {
            if ev.block == BlockId::new(0) {
                assert!(!ev.taken);
            }
        }
    }

    #[test]
    #[should_panic(expected = "function order")]
    fn out_of_order_blocks_panic() {
        let mut b = ProgramBuilder::new();
        let f0 = b.function();
        let f1 = b.function();
        b.block(f1, 1, Terminator::Return);
        b.block(f0, 1, Terminator::Return); // f1 already populated
    }

    #[test]
    #[should_panic(expected = "dangling block reference")]
    fn dangling_reference_panics() {
        let mut b = ProgramBuilder::new();
        let f0 = b.function();
        b.block(
            f0,
            2,
            Terminator::Jump {
                target: BlockId::new(99),
            },
        );
        let _ = b.build(f0);
    }

    #[test]
    fn custom_instruction_sizes_shape_the_layout() {
        let mut b = ProgramBuilder::new();
        let f0 = b.function();
        b.instr_bytes(16);
        let big = b.block(
            f0,
            4,
            Terminator::FallThrough {
                next: b.block_ref(f0, 1),
            },
        );
        b.instr_bytes(2);
        b.block(f0, 2, Terminator::Return);
        let p = b.build(f0);
        // 3 * 16 body + 1-byte placeholder terminator = 49 bytes.
        assert_eq!(p.block(big).size_bytes(), 49);
    }
}
