//! Application *inputs*: controlled perturbations of a program's dynamic
//! behaviour.
//!
//! The paper evaluates Twig's profile-guided optimization under input drift
//! (§4.2, Fig. 20, Table 2): a profile is collected with input `#0` and the
//! optimized binary is tested with inputs `#1..#3`. An [`InputConfig`]
//! reproduces that setup: it reseeds the workload walker and skews branch
//! probabilities and indirect-target weights per basic block, changing
//! *path frequencies* while keeping the program structure fixed.

use twig_serde::{Deserialize, Serialize};
use twig_types::BlockId;

/// One application input configuration for the workload walker.
///
/// # Examples
///
/// ```
/// use twig_workload::InputConfig;
///
/// let train = InputConfig::numbered(0);
/// let test = InputConfig::numbered(1);
/// assert_ne!(train.rng_seed(), test.rng_seed());
/// ```
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct InputConfig {
    /// Input index (`#0` is the training input in the paper's methodology).
    pub index: u32,
    /// Seed material mixed into every stochastic decision.
    pub seed: u64,
    /// Strength of per-branch taken-probability skew, in `[0, 1]`.
    /// 0 leaves base probabilities untouched.
    pub cond_skew: f32,
    /// Strength of indirect-target weight skew, in `[0, 1]`.
    pub weight_skew: f32,
}

impl InputConfig {
    /// The paper-style numbered input `#index` with default skew strengths.
    pub fn numbered(index: u32) -> Self {
        InputConfig {
            index,
            seed: 0x1A7E_5EED ^ u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            cond_skew: 0.18,
            weight_skew: 0.35,
        }
    }

    /// Seed for the walker's RNG (distinct per input).
    pub fn rng_seed(&self) -> u64 {
        splitmix(self.seed ^ 0xC0FF_EE00)
    }

    /// The effective taken probability of the conditional branch terminating
    /// `block`, given its base probability.
    ///
    /// The skew is deterministic per `(block, input)` and moves the
    /// probability within its logit neighbourhood, so a 90%-taken branch may
    /// become 80%- or 96%-taken under a different input, but never flips to
    /// mostly-not-taken. This mirrors how real request mixes shift hot-path
    /// frequencies without rewriting program logic.
    pub fn effective_taken_prob(&self, block: BlockId, base: f32) -> f32 {
        if self.cond_skew == 0.0 {
            return base;
        }
        let h = splitmix(self.seed ^ (u64::from(block.raw()) << 17) ^ 0x0DDB_1A5E);
        let unit = (h >> 11) as f32 / (1u64 << 53) as f32; // [0,1)
        let delta = (unit - 0.5) * 2.0 * self.cond_skew;
        let margin = base.min(1.0 - base);
        (base + delta * margin).clamp(0.001, 0.999)
    }

    /// The effective weight of indirect-target choice `slot` at `block`.
    pub fn effective_weight(&self, block: BlockId, slot: u32, base: f32) -> f32 {
        if self.weight_skew == 0.0 {
            return base;
        }
        let h = splitmix(
            self.seed ^ (u64::from(block.raw()) << 20) ^ (u64::from(slot) << 3) ^ 0xBADC_AB1E,
        );
        let unit = (h >> 11) as f32 / (1u64 << 53) as f32;
        let factor = (1.0 + (unit - 0.5) * 2.0 * self.weight_skew).max(0.05);
        base * factor
    }
}

impl Default for InputConfig {
    fn default() -> Self {
        InputConfig::numbered(0)
    }
}

/// SplitMix64 finalizer: cheap, high-quality mixing for deterministic
/// per-decision hashes.
#[inline]
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbered_inputs_are_distinct() {
        let seeds: Vec<u64> = (0..4).map(|i| InputConfig::numbered(i).rng_seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn skew_preserves_bias_direction() {
        let input = InputConfig::numbered(2);
        for raw in [0.05f32, 0.1, 0.85, 0.95] {
            for b in 0..500u32 {
                let p = input.effective_taken_prob(BlockId::new(b), raw);
                assert!((0.0..=1.0).contains(&p));
                if raw < 0.5 {
                    assert!(p < 0.5, "bias flipped: {raw} -> {p}");
                } else {
                    assert!(p > 0.5, "bias flipped: {raw} -> {p}");
                }
            }
        }
    }

    #[test]
    fn skew_actually_changes_probabilities() {
        let a = InputConfig::numbered(0);
        let b = InputConfig::numbered(1);
        let changed = (0..100u32)
            .filter(|&i| {
                let pa = a.effective_taken_prob(BlockId::new(i), 0.2);
                let pb = b.effective_taken_prob(BlockId::new(i), 0.2);
                (pa - pb).abs() > 1e-4
            })
            .count();
        assert!(changed > 80, "only {changed} of 100 probabilities moved");
    }

    #[test]
    fn zero_skew_is_identity() {
        let input = InputConfig {
            cond_skew: 0.0,
            weight_skew: 0.0,
            ..InputConfig::numbered(1)
        };
        assert_eq!(input.effective_taken_prob(BlockId::new(9), 0.3), 0.3);
        assert_eq!(input.effective_weight(BlockId::new(9), 1, 0.7), 0.7);
    }

    #[test]
    fn weights_stay_positive() {
        let input = InputConfig::numbered(3);
        for b in 0..200u32 {
            for s in 0..8u32 {
                assert!(input.effective_weight(BlockId::new(b), s, 0.5) > 0.0);
            }
        }
    }

    #[test]
    fn deterministic_per_input() {
        let input = InputConfig::numbered(1);
        let p1 = input.effective_taken_prob(BlockId::new(42), 0.9);
        let p2 = input.effective_taken_prob(BlockId::new(42), 0.9);
        assert_eq!(p1, p2);
    }
}
