//! Binary layout: assigning concrete addresses to every basic block.
//!
//! The layout models a linked x86 binary's text segment: functions are
//! placed back-to-back (16-byte aligned) starting at [`TEXT_BASE`], blocks
//! within a function are contiguous, and the `brcoalesce` key-value table is
//! appended after the last function (the paper stores it "as part of the
//! text segment", §3.2).
//!
//! The same pass runs both for freshly generated programs and after the Twig
//! rewriter grows blocks with prefetch instructions — re-layout after
//! injection is exactly what a link-time rewriter like BOLT does.

use twig_types::{Addr, FuncId};

use crate::program::Program;

/// Base address of the simulated text segment (canonical x86-64 user text).
pub const TEXT_BASE: u64 = 0x40_0000;

/// Function alignment in bytes.
pub const FUNCTION_ALIGN: u64 = 16;

/// Options controlling placement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LayoutOptions {
    /// Base address of the text segment.
    pub text_base: u64,
    /// Extra padding inserted between functions, in bytes. Models linker
    /// padding/PLT thunks and spreads the footprint (raising conflict-miss
    /// pressure for the same number of branches).
    pub inter_function_pad: u64,
    /// Optional distinct base for "library" functions (see
    /// [`Program`] generation): functions with ids at or above this index
    /// are placed in a second, distant region, producing the large
    /// branch-to-target offsets of Fig. 15.
    pub library_split: Option<LibrarySplit>,
}

/// Placement of shared-library functions in a distant region.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LibrarySplit {
    /// First function id belonging to the library region.
    pub first_library_func: u32,
    /// Base address of the library region.
    pub library_base: u64,
}

impl Default for LayoutOptions {
    fn default() -> Self {
        LayoutOptions {
            text_base: TEXT_BASE,
            inter_function_pad: 0,
            library_split: None,
        }
    }
}

/// Assigns addresses to every block of `program` according to `options`,
/// then places the coalesce table after the last placed byte.
///
/// Blocks within a function stay contiguous in id order, which preserves the
/// CFG invariant that fall-through/not-taken successors are physically next.
///
/// # Examples
///
/// ```
/// use twig_workload::{layout, LayoutOptions, ProgramGenerator, WorkloadSpec};
///
/// let mut program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// layout::assign_layout(&mut program, &LayoutOptions::default());
/// let entry = program.function(program.entry_function()).entry;
/// assert_eq!(program.block(entry).addr.raw() % 16, 0);
/// ```
pub fn assign_layout(program: &mut Program, options: &LayoutOptions) {
    let mut cursor = options.text_base;
    let mut max_end = cursor;
    let func_ids: Vec<FuncId> = program.functions().map(|f| f.id).collect();
    for fid in func_ids {
        if let Some(split) = options.library_split {
            if fid.raw() == split.first_library_func {
                cursor = split.library_base;
            }
        }
        cursor = align_up(cursor, FUNCTION_ALIGN);
        let func = program.function(fid).clone();
        for bid in func.block_ids() {
            let block = program.block_mut(bid);
            block.addr = Addr::new(cursor);
            cursor += u64::from(block.size_bytes());
        }
        cursor += options.inter_function_pad;
        max_end = max_end.max(cursor);
    }
    let table_base = align_up(max_end, FUNCTION_ALIGN);
    program.set_coalesce_table_addr(Addr::new(table_base));
}

/// Rounds `v` up to a multiple of `align` (which must be a power of two).
#[inline]
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramGenerator, WorkloadSpec};
    use twig_types::BlockId;

    #[test]
    fn align_up_rounds() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 16), 32);
    }

    #[test]
    fn blocks_are_contiguous_within_functions() {
        let mut p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        assign_layout(&mut p, &LayoutOptions::default());
        for func in p.functions() {
            let ids: Vec<BlockId> = func.block_ids().collect();
            for pair in ids.windows(2) {
                let a = p.block(pair[0]);
                let b = p.block(pair[1]);
                assert_eq!(a.end_addr(), b.addr, "gap inside {}", func.id);
            }
        }
    }

    #[test]
    fn functions_do_not_overlap() {
        let mut p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        assign_layout(&mut p, &LayoutOptions::default());
        let mut spans: Vec<(u64, u64)> = p
            .functions()
            .map(|f| {
                let first = p.block(BlockId::new(f.first_block)).addr.raw();
                let last = p.block(BlockId::new(f.last_block - 1)).end_addr().raw();
                (first, last)
            })
            .collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping functions");
        }
    }

    #[test]
    fn relayout_after_growth_restores_contiguity() {
        let mut p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        assign_layout(&mut p, &LayoutOptions::default());
        // Grow an early block, then re-layout: later blocks must shift.
        let victim = BlockId::new(0);
        p.block_mut(victim)
            .prefetch_ops
            .push(twig_types::PrefetchOp::BrPrefetch {
                branch_block: BlockId::new(1),
            });
        let before_last = p.block(BlockId::new(p.num_blocks() as u32 - 1)).addr;
        assign_layout(&mut p, &LayoutOptions::default());
        let after_last = p.block(BlockId::new(p.num_blocks() as u32 - 1)).addr;
        assert!(after_last >= before_last);
        // Contiguity still holds.
        for func in p.functions() {
            let ids: Vec<BlockId> = func.block_ids().collect();
            for pair in ids.windows(2) {
                assert_eq!(p.block(pair[0]).end_addr(), p.block(pair[1]).addr);
            }
        }
    }

    #[test]
    fn library_split_separates_regions() {
        let mut p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let split_at = (p.num_functions() / 2) as u32;
        let opts = LayoutOptions {
            library_split: Some(LibrarySplit {
                first_library_func: split_at,
                library_base: 0x7000_0000,
            }),
            ..LayoutOptions::default()
        };
        assign_layout(&mut p, &opts);
        for func in p.functions() {
            let addr = p.block(func.entry).addr.raw();
            if func.id.raw() < split_at {
                assert!(addr < 0x7000_0000);
            } else {
                assert!(addr >= 0x7000_0000);
            }
        }
    }

    #[test]
    fn coalesce_table_sits_after_code() {
        let mut p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        assign_layout(&mut p, &LayoutOptions::default());
        let code_end = p
            .blocks()
            .map(|(_, b)| b.end_addr().raw())
            .max()
            .unwrap();
        assert!(p.coalesce_entry_addr(0).raw() >= code_end);
    }
}
