//! The streaming trace-ingestion API: owned, resettable [`EventSource`]s.
//!
//! Every consumer of dynamic control flow — the simulator, the LBR
//! profiler, the benchmark harness, the fleet service — used to receive a
//! materialized `Vec<BlockEvent>`/`Arc<[BlockEvent]>`, capping cells at
//! what fits in RAM. An [`EventSource`] is the replacement contract: an
//! **owned** (no borrowed program, no `Rc<RefCell>` graph), **resettable**
//! (replayable from the start, so the profile pass and the simulation
//! pass read the same stream), **sized** (exact event count when the
//! backing store knows it) iterator of owned [`BlockEvent`]s.
//!
//! Three monomorphized implementations cover the design space:
//!
//! * [`MemSource`] — a shared in-memory slice; the right choice for small
//!   traces and tests, and the representation every cached artifact used
//!   before this API existed.
//! * [`WalkerSource`] — generates events on the fly from an owned
//!   [`Walker`], never materializing; replays deterministically because a
//!   reset reseeds the walker RNG from the input.
//! * [`ColumnarSource`] — streams a `.twgc` file chunk by chunk through
//!   the mmap-backed [`ColumnarReader`] in bounded resident memory.
//!
//! [`AnySource`] packages the three for call sites that pick a backing
//! store at runtime (the artifact cache, the CLI); hot loops match on it
//! once and run each arm monomorphized, mirroring the `Simulator<B>`
//! pattern from the BTB model.
//!
//! The trait is **sealed**: simulation results must be reproducible from
//! a cache key, which only holds if every source kind is known to (and
//! replay-tested by) this crate.

use std::sync::Arc;

use crate::columnar::ColumnarReader;
use crate::inputs::InputConfig;
use crate::program::Program;
use crate::trace::TraceError;
use crate::walker::{BlockEvent, Walker};

mod sealed {
    /// Seals [`super::EventSource`]; see the module docs for why.
    pub trait Sealed {}
}

/// An owned, resettable, exactly-sized producer of [`BlockEvent`]s.
///
/// `EventSource` extends [`Iterator`]: any `&mut source` can be handed
/// straight to `Simulator::run` / `try_run` (which take
/// `impl IntoIterator<Item = BlockEvent>`), and the caller keeps the
/// source to [`reset`](EventSource::reset) it for a second pass.
pub trait EventSource: Iterator<Item = BlockEvent> + Send + sealed::Sealed {
    /// Rewinds to the first event. The next pass yields the identical
    /// stream (replay determinism is property-tested per implementation).
    fn reset(&mut self);

    /// Exact number of events a full pass yields from reset, when the
    /// backing store knows it (`MemSource`, `ColumnarSource`). `None` for
    /// generative sources bounded by an instruction budget.
    fn event_count(&self) -> Option<u64>;

    /// Skips `n` events without handing them to the consumer. Backends
    /// with a directory ([`ColumnarSource`]) leap whole chunks without
    /// decoding (macro-block fast-forward); others step.
    fn skip_events(&mut self, n: u64) {
        for _ in 0..n {
            if self.next().is_none() {
                break;
            }
        }
    }
}

/// In-memory event source over a shared slice.
///
/// # Examples
///
/// ```
/// use twig_workload::{BlockEvent, EventSource, MemSource};
/// use twig_types::BlockId;
///
/// let ev = BlockEvent { block: BlockId::new(1), taken: false, target: None };
/// let mut source = MemSource::from(vec![ev; 3]);
/// assert_eq!(source.event_count(), Some(3));
/// assert_eq!(source.by_ref().count(), 3);
/// source.reset();
/// assert_eq!(source.next(), Some(ev));
/// ```
#[derive(Clone, Debug)]
pub struct MemSource {
    events: Arc<[BlockEvent]>,
    pos: usize,
}

impl MemSource {
    /// Wraps a shared slice without copying.
    pub fn new(events: Arc<[BlockEvent]>) -> Self {
        MemSource { events, pos: 0 }
    }

    /// The backing slice (all events, independent of the cursor).
    pub fn as_slice(&self) -> &[BlockEvent] {
        &self.events
    }

    /// The backing shared slice.
    pub fn shared(&self) -> Arc<[BlockEvent]> {
        Arc::clone(&self.events)
    }
}

impl From<Vec<BlockEvent>> for MemSource {
    fn from(events: Vec<BlockEvent>) -> Self {
        MemSource::new(events.into())
    }
}

impl From<Arc<[BlockEvent]>> for MemSource {
    fn from(events: Arc<[BlockEvent]>) -> Self {
        MemSource::new(events)
    }
}

impl Iterator for MemSource {
    type Item = BlockEvent;

    fn next(&mut self) -> Option<BlockEvent> {
        let ev = self.events.get(self.pos).copied()?;
        self.pos += 1;
        Some(ev)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.events.len() - self.pos;
        (left, Some(left))
    }
}

impl sealed::Sealed for MemSource {}

impl EventSource for MemSource {
    fn reset(&mut self) {
        self.pos = 0;
    }

    fn event_count(&self) -> Option<u64> {
        Some(self.events.len() as u64)
    }

    fn skip_events(&mut self, n: u64) {
        self.pos = self
            .pos
            .saturating_add(usize::try_from(n).unwrap_or(usize::MAX))
            .min(self.events.len());
    }
}

/// Generate-on-the-fly event source: an owned [`Walker`] bounded by an
/// instruction budget, never materializing the stream.
///
/// Budget semantics match [`Walker::run_instructions`]: events are
/// emitted until at least `instructions` *original program* instructions
/// have executed (injected prefetch ops do not count), overshooting by at
/// most one block — so a `WalkerSource` pass equals the `Vec` that
/// `run_instructions` would have collected, event for event.
#[derive(Debug)]
pub struct WalkerSource {
    program: Arc<Program>,
    input: InputConfig,
    instructions: u64,
    walker: Walker<Arc<Program>>,
    executed: u64,
}

impl WalkerSource {
    /// Starts a budgeted walk over an owned program.
    pub fn new(program: Arc<Program>, input: InputConfig, instructions: u64) -> Self {
        let walker = Walker::new(Arc::clone(&program), input);
        WalkerSource {
            program,
            input,
            instructions,
            walker,
            executed: 0,
        }
    }

    /// The walked program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The instruction budget bounding each pass.
    pub fn instruction_budget(&self) -> u64 {
        self.instructions
    }
}

impl Iterator for WalkerSource {
    type Item = BlockEvent;

    fn next(&mut self) -> Option<BlockEvent> {
        if self.executed >= self.instructions {
            return None;
        }
        let ev = self.walker.next().expect("walker is infinite");
        self.executed += u64::from(self.program.block(ev.block).num_instrs);
        Some(ev)
    }
}

impl sealed::Sealed for WalkerSource {}

impl EventSource for WalkerSource {
    fn reset(&mut self) {
        self.walker = Walker::new(Arc::clone(&self.program), self.input);
        self.executed = 0;
    }

    fn event_count(&self) -> Option<u64> {
        // Bounded by instructions, not a pre-known event count.
        None
    }
}

/// Out-of-core event source streaming a `.twgc` file chunk by chunk.
///
/// Holds one decoded chunk (`chunk_target` events) resident at a time;
/// pages of consumed chunks are returned to the OS, so RSS stays flat
/// over arbitrarily long traces. Decode failures after a successful open
/// (a chunk whose CRC no longer matches) panic: the file validated
/// structurally at open, so mid-stream corruption means the storage
/// mutated under a running experiment — a fail-fast integrity violation,
/// handled like every torn artifact in this harness (crash, supervise,
/// recover).
#[derive(Debug)]
pub struct ColumnarSource {
    reader: Arc<ColumnarReader>,
    chunk: usize,
    buf: Vec<BlockEvent>,
    pos: usize,
}

impl ColumnarSource {
    /// Opens a `.twgc` file (validating header, directory, and footer).
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] from [`ColumnarReader::open`].
    pub fn open(path: &std::path::Path) -> Result<Self, TraceError> {
        Ok(Self::from_reader(Arc::new(ColumnarReader::open(path)?)))
    }

    /// Wraps an already-open reader (shared by every source the harness
    /// derives from one cached trace).
    pub fn from_reader(reader: Arc<ColumnarReader>) -> Self {
        ColumnarSource {
            reader,
            chunk: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The underlying reader (chunk summaries, totals).
    pub fn reader(&self) -> &ColumnarReader {
        &self.reader
    }

    /// Loads the next chunk into the reuse buffer; false at end of trace.
    fn load_next_chunk(&mut self) -> bool {
        if self.chunk >= self.reader.chunk_count() {
            return false;
        }
        self.reader
            .decode_chunk_into(self.chunk, &mut self.buf)
            .unwrap_or_else(|e| panic!("trace chunk {} corrupted mid-stream: {e}", self.chunk));
        if self.chunk > 0 {
            self.reader.release_chunk(self.chunk - 1);
        }
        self.chunk += 1;
        self.pos = 0;
        true
    }
}

impl Iterator for ColumnarSource {
    type Item = BlockEvent;

    fn next(&mut self) -> Option<BlockEvent> {
        loop {
            if let Some(ev) = self.buf.get(self.pos).copied() {
                self.pos += 1;
                return Some(ev);
            }
            if !self.load_next_chunk() {
                return None;
            }
        }
    }
}

impl sealed::Sealed for ColumnarSource {}

impl EventSource for ColumnarSource {
    fn reset(&mut self) {
        self.chunk = 0;
        self.buf.clear();
        self.pos = 0;
    }

    fn event_count(&self) -> Option<u64> {
        Some(self.reader.total_events())
    }

    fn skip_events(&mut self, mut n: u64) {
        // Drain the resident chunk first.
        let buffered = (self.buf.len() - self.pos) as u64;
        if n <= buffered {
            self.pos += n as usize;
            return;
        }
        n -= buffered;
        self.buf.clear();
        self.pos = 0;
        // Macro-block fast-forward: leap whole chunks via the directory
        // without decoding (or faulting in) their payloads.
        while let Some(summary) = self.reader.summaries().get(self.chunk) {
            if u64::from(summary.events) > n {
                break;
            }
            n -= u64::from(summary.events);
            self.chunk += 1;
        }
        if n > 0 && self.load_next_chunk() {
            self.pos = (n as usize).min(self.buf.len());
        }
    }
}

/// A runtime-selected event source: one of the three concrete backings.
///
/// Call sites that know the backing statically should use the concrete
/// type; hot loops handed an `AnySource` should `match` once and run each
/// arm monomorphized. The enum also implements [`EventSource`] directly
/// (delegating per call) for paths where per-event dispatch is noise.
#[derive(Debug)]
pub enum AnySource {
    /// In-memory slice.
    Mem(MemSource),
    /// Live walker, generate-on-the-fly.
    Walker(WalkerSource),
    /// Out-of-core columnar file.
    Columnar(ColumnarSource),
}

impl From<MemSource> for AnySource {
    fn from(s: MemSource) -> Self {
        AnySource::Mem(s)
    }
}

impl From<WalkerSource> for AnySource {
    fn from(s: WalkerSource) -> Self {
        AnySource::Walker(s)
    }
}

impl From<ColumnarSource> for AnySource {
    fn from(s: ColumnarSource) -> Self {
        AnySource::Columnar(s)
    }
}

impl From<Vec<BlockEvent>> for AnySource {
    fn from(events: Vec<BlockEvent>) -> Self {
        AnySource::Mem(events.into())
    }
}

impl Iterator for AnySource {
    type Item = BlockEvent;

    fn next(&mut self) -> Option<BlockEvent> {
        match self {
            AnySource::Mem(s) => s.next(),
            AnySource::Walker(s) => s.next(),
            AnySource::Columnar(s) => s.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            AnySource::Mem(s) => s.size_hint(),
            AnySource::Walker(_) => (0, None),
            AnySource::Columnar(_) => (0, None),
        }
    }
}

impl sealed::Sealed for AnySource {}

impl EventSource for AnySource {
    fn reset(&mut self) {
        match self {
            AnySource::Mem(s) => s.reset(),
            AnySource::Walker(s) => s.reset(),
            AnySource::Columnar(s) => s.reset(),
        }
    }

    fn event_count(&self) -> Option<u64> {
        match self {
            AnySource::Mem(s) => s.event_count(),
            AnySource::Walker(s) => s.event_count(),
            AnySource::Columnar(s) => s.event_count(),
        }
    }

    fn skip_events(&mut self, n: u64) {
        match self {
            AnySource::Mem(s) => s.skip_events(n),
            AnySource::Walker(s) => s.skip_events(n),
            AnySource::Columnar(s) => s.skip_events(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::encode_columnar_chunked;
    use crate::{ProgramGenerator, WorkloadSpec};

    fn tiny() -> Arc<Program> {
        Arc::new(ProgramGenerator::new(WorkloadSpec::tiny_test()).generate())
    }

    #[test]
    fn walker_source_matches_run_instructions() {
        let p = tiny();
        let budget = 20_000u64;
        let reference = Walker::new(p.as_ref(), InputConfig::numbered(3)).run_instructions(budget);
        let streamed: Vec<_> =
            WalkerSource::new(Arc::clone(&p), InputConfig::numbered(3), budget).collect();
        assert_eq!(streamed, reference);
    }

    #[test]
    fn walker_source_reset_replays_identically() {
        let p = tiny();
        let mut source = WalkerSource::new(p, InputConfig::numbered(1), 5_000);
        let first: Vec<_> = source.by_ref().collect();
        source.reset();
        let second: Vec<_> = source.by_ref().collect();
        assert_eq!(first, second);
        assert!(!first.is_empty());
    }

    #[test]
    fn columnar_source_streams_and_resets() {
        let p = tiny();
        let events: Vec<_> = Walker::new(p.as_ref(), InputConfig::numbered(0))
            .take(5_000)
            .collect();
        let bytes = encode_columnar_chunked(&events, 300);
        let reader = Arc::new(ColumnarReader::from_bytes(bytes).unwrap());
        let mut source = ColumnarSource::from_reader(reader);
        assert_eq!(source.event_count(), Some(events.len() as u64));
        let first: Vec<_> = source.by_ref().collect();
        assert_eq!(first, events);
        source.reset();
        let second: Vec<_> = source.by_ref().collect();
        assert_eq!(second, events);
    }

    #[test]
    fn skip_events_agrees_across_sources() {
        let p = tiny();
        let events: Vec<_> = Walker::new(p.as_ref(), InputConfig::numbered(2))
            .take(4_000)
            .collect();
        let bytes = encode_columnar_chunked(&events, 128);
        for skip in [0u64, 1, 127, 128, 129, 1000, 3_999, 4_000, 9_999] {
            let expect: Vec<_> = events.iter().copied().skip(skip as usize).collect();
            let mut mem = MemSource::from(events.clone());
            mem.skip_events(skip);
            assert_eq!(mem.collect::<Vec<_>>(), expect, "mem skip={skip}");
            let mut col = ColumnarSource::from_reader(Arc::new(
                ColumnarReader::from_bytes(bytes.clone()).unwrap(),
            ));
            col.skip_events(skip);
            assert_eq!(col.collect::<Vec<_>>(), expect, "columnar skip={skip}");
        }
    }

    #[test]
    fn columnar_skip_then_resume_mid_chunk() {
        let p = tiny();
        let events: Vec<_> = Walker::new(p.as_ref(), InputConfig::numbered(0))
            .take(1_000)
            .collect();
        let bytes = encode_columnar_chunked(&events, 64);
        let mut source = ColumnarSource::from_reader(Arc::new(
            ColumnarReader::from_bytes(bytes).unwrap(),
        ));
        // Consume a few, then skip across several chunk boundaries.
        let head: Vec<_> = source.by_ref().take(10).collect();
        assert_eq!(head, events[..10]);
        source.skip_events(500);
        let tail: Vec<_> = source.collect();
        assert_eq!(tail, events[510..]);
    }

    #[test]
    fn any_source_dispatches_all_backings() {
        let p = tiny();
        let events: Vec<_> = Walker::new(p.as_ref(), InputConfig::numbered(0))
            .take(200)
            .collect();
        let bytes = encode_columnar_chunked(&events, 64);
        let sources: Vec<AnySource> = vec![
            MemSource::from(events.clone()).into(),
            ColumnarSource::from_reader(Arc::new(ColumnarReader::from_bytes(bytes).unwrap()))
                .into(),
        ];
        for mut source in sources {
            let collected: Vec<_> = source.by_ref().collect();
            assert_eq!(collected, events);
            source.reset();
            assert_eq!(source.count(), events.len());
        }
    }
}
