//! Synthetic data-center workloads for the Twig reproduction.
//!
//! The paper (Khan et al., *Twig: Profile-Guided BTB Prefetching for Data
//! Center Applications*, MICRO 2021) evaluates nine production applications
//! via Intel PT traces. This crate supplies the substitute: a deterministic
//! generator of multi-megabyte synthetic programs with the control-flow
//! statistics of data-center services, a stochastic [`Walker`] producing
//! dynamic instruction streams, and a compact PT-like [`trace`] format.
//!
//! # Quick start
//!
//! ```
//! use twig_workload::{AppId, InputConfig, ProgramGenerator, Walker, WorkloadSpec};
//!
//! // A tiny spec for doc purposes; use `WorkloadSpec::preset(AppId::Kafka)`
//! // for a paper-scale application.
//! let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
//! let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(10_000);
//! assert!(!events.is_empty());
//! let _ = AppId::ALL; // nine paper applications
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod generator;
pub mod inputs;
pub mod layout;
pub mod phases;
pub mod program;
pub mod spec;
pub mod stats;
pub mod trace;
pub mod walker;

pub use builder::ProgramBuilder;
pub use generator::ProgramGenerator;
pub use inputs::InputConfig;
pub use layout::{LayoutOptions, LibrarySplit};
pub use phases::{LoadPhase, PhaseSchedule};
pub use program::{BasicBlock, Function, Program, Terminator};
pub use spec::{AppId, Span, Span1, SpecError, TerminatorMix, WorkloadSpec};
pub use stats::{StaticStats, WorkingSet};
pub use trace::{decode_trace, encode_trace, read_trace, write_trace, TraceError};
pub use walker::{BlockEvent, Walker};
