//! Synthetic data-center workloads for the Twig reproduction.
//!
//! The paper (Khan et al., *Twig: Profile-Guided BTB Prefetching for Data
//! Center Applications*, MICRO 2021) evaluates nine production applications
//! via Intel PT traces. This crate supplies the substitute: a deterministic
//! generator of multi-megabyte synthetic programs with the control-flow
//! statistics of data-center services, a stochastic [`Walker`] producing
//! dynamic instruction streams, and a compact PT-like [`trace`] format.
//!
//! # Quick start
//!
//! ```
//! use twig_workload::{AppId, InputConfig, ProgramGenerator, Walker, WorkloadSpec};
//!
//! // A tiny spec for doc purposes; use `WorkloadSpec::preset(AppId::Kafka)`
//! // for a paper-scale application.
//! let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
//! let events = Walker::new(&program, InputConfig::numbered(0)).run_instructions(10_000);
//! assert!(!events.is_empty());
//! let _ = AppId::ALL; // nine paper applications
//! ```
//!
//! # Trace format family
//!
//! Two on-disk encodings share one event model and one decode layer:
//!
//! | | `TWGT` v1 ([`trace`]) | `.twgc` v1 ([`columnar`]) |
//! |---|---|---|
//! | layout | row-oriented, one varint record per event | columnar chunks: packed taken/target bits + LEB128 id columns |
//! | integrity | whole-stream (decode front to back) | CRC per chunk + CRC'd directory/footer; torn tails rejected at open |
//! | random access | none | chunk directory with branch-density summaries (macro-block fast-forward) |
//! | reader | materializes a `Vec<BlockEvent>` | mmap'd, one chunk resident at a time |
//! | choose when | small traces, interchange, tests | big traces, spilled caches, bounded-RSS streaming |
//!
//! Consumers are format-agnostic: anything that takes an [`EventSource`]
//! accepts an in-memory slice ([`MemSource`]), a live generative walk
//! ([`WalkerSource`]), or an out-of-core columnar stream
//! ([`ColumnarSource`]) — see [`source`] for the contract.

// `deny` rather than `forbid`: the one `#[allow(unsafe_code)]` island is
// the hand-written mmap binding in `mapped::sys`, which the out-of-core
// trace reader needs for zero-copy access with bounded residency.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod columnar;
pub mod generator;
pub mod inputs;
pub mod layout;
pub mod mapped;
pub mod phases;
pub mod program;
pub mod source;
pub mod spec;
pub mod stats;
pub mod trace;
pub mod walker;

pub use builder::ProgramBuilder;
pub use columnar::{
    decode_columnar, encode_columnar, encode_columnar_chunked, write_columnar_file, ChunkSummary,
    ColumnarReader, ColumnarWriter, DEFAULT_CHUNK_EVENTS,
};
pub use generator::ProgramGenerator;
pub use inputs::InputConfig;
pub use layout::{LayoutOptions, LibrarySplit};
pub use mapped::MappedBytes;
pub use phases::{LoadPhase, PhaseSchedule};
pub use program::{BasicBlock, Function, Program, Terminator};
pub use source::{AnySource, ColumnarSource, EventSource, MemSource, WalkerSource};
pub use spec::{AppId, Span, Span1, SpecError, TerminatorMix, WorkloadSpec};
pub use stats::{StaticStats, WorkingSet};
pub use trace::{decode_trace, encode_trace, read_trace, write_trace, TraceError};
pub use walker::{BlockEvent, Walker};
