//! Workload specifications: the parameter space of synthetic data-center
//! applications, with one calibrated preset per paper application.
//!
//! The paper evaluates nine proprietary application traces. We cannot ship
//! those, so each preset encodes the *statistical structure* the paper
//! reports for that application — instruction footprint (Table 3), BTB MPKI
//! band (Fig. 3), unconditional-branch working set (Fig. 11), spatial spread
//! of conditional branches (Fig. 12), and frontend/backend stall balance
//! (Fig. 1) — and the generator fabricates a program with that structure.

use twig_serde::{Deserialize, Serialize};

/// Why a [`WorkloadSpec`] failed validation.
///
/// Specs arrive from two construction paths the `Span`/`Span1` asserts
/// cannot cover: field-by-field literal construction and deserialization,
/// both of which bypass the checked constructors. [`WorkloadSpec::validate`]
/// therefore re-checks every band.
#[derive(Clone, PartialEq, Debug)]
pub enum SpecError {
    /// The structural parameters imply an empty text segment.
    ZeroFootprint,
    /// The terminator mix weights do not sum to ≈ 1 (tolerance 0.05); the
    /// generator normalizes internally, but a far-off total means the spec
    /// author's intended frequencies were silently rescaled.
    MixImbalance {
        /// The actual sum of the mix weights.
        total: f32,
    },
    /// An integer band has `min > max`, or a probability band is out of
    /// order or outside `[0, 1]`.
    BandOutOfOrder {
        /// The offending field's name.
        field: &'static str,
    },
    /// A structural constraint is violated.
    Degenerate {
        /// What is wrong.
        reason: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ZeroFootprint => {
                write!(f, "structural parameters imply a zero-byte text segment")
            }
            SpecError::MixImbalance { total } => write!(
                f,
                "terminator mix sums to {total} (expected ≈ 1 within 0.05)"
            ),
            SpecError::BandOutOfOrder { field } => {
                write!(f, "band {field} is out of order (or outside [0, 1])")
            }
            SpecError::Degenerate { reason } => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Relative frequencies of basic-block terminators in generated code.
///
/// Weights need not sum to 1; `Return` terminators are structural (every
/// function ends in one) and are not part of the mix.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct TerminatorMix {
    /// Conditional direct branches (`jcc`). Dominate BTB accesses (Fig. 7).
    pub conditional: f32,
    /// Unconditional direct jumps.
    pub jump: f32,
    /// Direct calls.
    pub call: f32,
    /// Indirect calls (virtual dispatch — prominent in Java/PHP apps).
    pub indirect_call: f32,
    /// Indirect jumps (switch tables, JIT dispatch).
    pub indirect_jump: f32,
    /// Blocks that simply fall through (no branch).
    pub fallthrough: f32,
}

impl TerminatorMix {
    /// A mix typical of compiled server code: conditionals dominate.
    pub const fn server_default() -> Self {
        TerminatorMix {
            conditional: 0.52,
            jump: 0.10,
            call: 0.16,
            indirect_call: 0.05,
            indirect_jump: 0.02,
            fallthrough: 0.15,
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> f32 {
        self.conditional
            + self.jump
            + self.call
            + self.indirect_call
            + self.indirect_jump
            + self.fallthrough
    }
}

/// An inclusive integer range used for sampled structural parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Span {
    /// Minimum value (inclusive).
    pub min: u32,
    /// Maximum value (inclusive).
    pub max: u32,
}

impl Span {
    /// Creates a span; `min` must not exceed `max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub const fn new(min: u32, max: u32) -> Self {
        assert!(min <= max);
        Span { min, max }
    }

    /// Midpoint, used for footprint estimation.
    pub const fn mid(self) -> u32 {
        (self.min + self.max) / 2
    }
}

/// Full description of a synthetic data-center workload.
///
/// Construct via a preset ([`WorkloadSpec::preset`],
/// [`WorkloadSpec::all_apps`]) or start from [`WorkloadSpec::tiny_test`]
/// and adjust fields.
///
/// # Examples
///
/// ```
/// use twig_workload::{AppId, WorkloadSpec};
///
/// let spec = WorkloadSpec::preset(AppId::Cassandra);
/// assert_eq!(spec.name, "cassandra");
/// assert!(spec.estimated_footprint_bytes() > 3 << 20);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable application name.
    pub name: String,
    /// Seed for program *structure* generation (CFG shape, probabilities).
    pub seed: u64,
    /// Number of application (non-library) functions, including dispatcher
    /// and handlers.
    pub app_funcs: u32,
    /// Number of shared-library functions (placed in a distant text region).
    pub lib_funcs: u32,
    /// Number of request-handler functions dispatched by the event loop.
    pub handlers: u32,
    /// Zipf skew of handler popularity (0 = uniform; higher = hotter head).
    pub handler_zipf: f64,
    /// Blocks per function.
    pub blocks_per_func: Span,
    /// Original instructions per block (terminator included).
    pub instrs_per_block: Span,
    /// Mean instruction size in bytes per block (sampled per block,
    /// modelling a variable-length ISA).
    pub instr_bytes: Span,
    /// Terminator mix for non-structural blocks.
    pub mix: TerminatorMix,
    /// Number of call-depth levels below the handlers. Bounds recursion-free
    /// call chains.
    pub call_levels: u32,
    /// Candidate-callee fan-out of each indirect call site.
    pub indirect_call_fanout: Span,
    /// Target fan-out of each indirect jump site.
    pub indirect_jump_fanout: Span,
    /// Fraction of conditional branches that are loop back-edges.
    pub loop_fraction: f32,
    /// Taken probability assigned to loop back-edges.
    pub loop_taken_prob: Span1,
    /// Taken probability for biased forward conditionals (the complement
    /// class gets `1 - p`).
    pub biased_taken_prob: Span1,
    /// Fraction of conditionals that are unbiased (taken prob near 0.5).
    pub unbiased_fraction: f32,
    /// Fraction of call sites that target the shared-library region.
    /// Library functions are few and hot (BTB-resident), so this dial
    /// controls the share of short-reuse-distance branch traffic.
    pub library_call_fraction: f32,
    /// Extra backend-stall cycles per kilo-instruction, modelling D-cache
    /// and dependency stalls. Calibrates the Fig.-1 frontend/backend split.
    pub backend_extra_cpki: f64,
    /// Padding between functions in the layout (bytes).
    pub inter_function_pad: u64,
}

/// An inclusive `f32` range for sampled probabilities.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Span1 {
    /// Minimum value (inclusive).
    pub min: f32,
    /// Maximum value (inclusive).
    pub max: f32,
}

impl Span1 {
    /// Creates a probability span; requires `0 ≤ min ≤ max ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are out of order or outside `[0, 1]`.
    pub fn new(min: f32, max: f32) -> Self {
        assert!((0.0..=1.0).contains(&min) && min <= max && max <= 1.0);
        Span1 { min, max }
    }
}

/// The nine data-center applications evaluated in the paper (§2, Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AppId {
    /// Apache Cassandra (NoSQL DBMS, Java DaCapo).
    Cassandra,
    /// Drupal on HHVM (Facebook OSS-performance).
    Drupal,
    /// Twitter Finagle microblogging service (Java Renaissance).
    FinagleChirper,
    /// Twitter Finagle HTTP server (Java Renaissance).
    FinagleHttp,
    /// Apache Kafka (stream processing, Java DaCapo).
    Kafka,
    /// MediaWiki on HHVM.
    Mediawiki,
    /// Apache Tomcat (Java web server, DaCapo).
    Tomcat,
    /// Verilator (RTL simulation; the largest footprint and MPKI).
    Verilator,
    /// WordPress on HHVM.
    Wordpress,
}

impl AppId {
    /// All nine applications, in the paper's figure order.
    pub const ALL: [AppId; 9] = [
        AppId::Cassandra,
        AppId::Drupal,
        AppId::FinagleChirper,
        AppId::FinagleHttp,
        AppId::Kafka,
        AppId::Mediawiki,
        AppId::Tomcat,
        AppId::Verilator,
        AppId::Wordpress,
    ];

    /// Lower-case display name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            AppId::Cassandra => "cassandra",
            AppId::Drupal => "drupal",
            AppId::FinagleChirper => "finagle-chirper",
            AppId::FinagleHttp => "finagle-http",
            AppId::Kafka => "kafka",
            AppId::Mediawiki => "mediawiki",
            AppId::Tomcat => "tomcat",
            AppId::Verilator => "verilator",
            AppId::Wordpress => "wordpress",
        }
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl WorkloadSpec {
    /// A deliberately small spec for unit tests: generates in microseconds
    /// and exercises every terminator kind.
    pub fn tiny_test() -> Self {
        WorkloadSpec {
            name: "tiny-test".to_owned(),
            seed: 0x7716_0001,
            app_funcs: 40,
            lib_funcs: 10,
            handlers: 4,
            handler_zipf: 0.8,
            blocks_per_func: Span::new(3, 10),
            instrs_per_block: Span::new(3, 9),
            instr_bytes: Span::new(3, 5),
            mix: TerminatorMix::server_default(),
            call_levels: 4,
            indirect_call_fanout: Span::new(2, 4),
            indirect_jump_fanout: Span::new(2, 5),
            loop_fraction: 0.2,
            loop_taken_prob: Span1::new(0.70, 0.92),
            biased_taken_prob: Span1::new(0.04, 0.18),
            unbiased_fraction: 0.15,
            library_call_fraction: 0.3,
            backend_extra_cpki: 120.0,
            inter_function_pad: 0,
        }
    }

    /// The calibrated preset for one paper application.
    ///
    /// Calibration (see DESIGN.md §6 and `twig-bench/src/bin/calibrate.rs`)
    /// targets the paper's per-app BTB MPKI band (Fig. 3), frontend-bound
    /// share (Fig. 1), footprint ordering (Table 3), and the ideal-BTB
    /// speedup shape (Fig. 2). Two structural properties matter most:
    /// *shallow* call graphs with balanced (rotor-assigned) callees keep the
    /// execution profile flat, as in real data-center services, and the
    /// `loop_fraction`/`library_call_fraction` dials control the share of
    /// short-reuse-distance branch traffic (BTB hits).
    pub fn preset(app: AppId) -> Self {
        if app == AppId::Verilator {
            // Generated RTL evaluation code: an enormous, nearly flat
            // instruction sweep of branchy straight-line code. Jump-heavy
            // (dispatch between generated evaluation snippets), tiny hot
            // library, almost no loops: the BTB misses on most taken
            // branches, reproducing the paper's 121-MPKI outlier.
            return WorkloadSpec {
                name: app.name().to_owned(),
                seed: 0xD47A_0000 + app as u64,
                app_funcs: 5500,
                lib_funcs: 200,
                handlers: 400,
                handler_zipf: 0.02,
                blocks_per_func: Span::new(40, 120),
                instrs_per_block: Span::new(2, 5),
                instr_bytes: Span::new(3, 5),
                mix: TerminatorMix {
                    conditional: 0.30,
                    jump: 0.28,
                    call: 0.05,
                    indirect_call: 0.01,
                    indirect_jump: 0.03,
                    fallthrough: 0.33,
                },
                call_levels: 2,
                indirect_call_fanout: Span::new(2, 4),
                indirect_jump_fanout: Span::new(2, 8),
                loop_fraction: 0.01,
                loop_taken_prob: Span1::new(0.70, 0.92),
                biased_taken_prob: Span1::new(0.002, 0.025),
                unbiased_fraction: 0.01,
                library_call_fraction: 0.02,
                backend_extra_cpki: 60.0,
                inter_function_pad: 0,
            };
        }
        // The eight service applications share one structural recipe and
        // differ in size, handler skew, hit-traffic dials, and backend
        // stall factor: (app_funcs, lib_funcs, handlers, handler_zipf,
        // blocks, loop_fraction, library_call_fraction, backend cpki).
        let (app_funcs, lib_funcs, handlers, zipf, blocks, loops, lib_frac, cpki) = match app {
            AppId::Cassandra => (6800, 700, 64, 0.35, (12, 40), 0.005, 0.25, 800.0),
            AppId::Drupal => (2800, 400, 48, 0.45, (12, 38), 0.02, 0.30, 200.0),
            AppId::FinagleChirper => (3300, 450, 48, 0.45, (12, 38), 0.015, 0.30, 620.0),
            AppId::FinagleHttp => (8600, 900, 72, 0.40, (12, 40), 0.01, 0.28, 850.0),
            AppId::Kafka => (5300, 700, 48, 0.60, (10, 34), 0.035, 0.35, 550.0),
            AppId::Mediawiki => (3600, 500, 44, 0.50, (12, 38), 0.025, 0.30, 120.0),
            AppId::Tomcat => (3900, 550, 44, 0.65, (10, 34), 0.045, 0.35, 650.0),
            AppId::Wordpress => (3100, 420, 44, 0.50, (12, 38), 0.028, 0.30, 220.0),
            AppId::Verilator => unreachable!("handled above"),
        };
        WorkloadSpec {
            name: app.name().to_owned(),
            seed: 0xD47A_0000 + app as u64,
            app_funcs,
            lib_funcs,
            handlers,
            handler_zipf: zipf,
            blocks_per_func: Span::new(blocks.0, blocks.1),
            instrs_per_block: Span::new(3, 9),
            instr_bytes: Span::new(3, 5),
            mix: TerminatorMix {
                conditional: 0.50,
                jump: 0.08,
                call: 0.10,
                indirect_call: 0.04,
                indirect_jump: 0.02,
                fallthrough: 0.26,
            },
            call_levels: 3,
            indirect_call_fanout: Span::new(2, 5),
            indirect_jump_fanout: Span::new(2, 8),
            loop_fraction: loops,
            loop_taken_prob: Span1::new(0.70, 0.92),
            biased_taken_prob: Span1::new(0.002, 0.02),
            unbiased_fraction: 0.01,
            library_call_fraction: lib_frac,
            backend_extra_cpki: cpki,
            inter_function_pad: 0,
        }
    }

    /// All nine presets in figure order.
    pub fn all_apps() -> Vec<WorkloadSpec> {
        AppId::ALL.iter().map(|&a| WorkloadSpec::preset(a)).collect()
    }

    /// Rough expected text-segment size implied by the structural
    /// parameters, in bytes.
    pub fn estimated_footprint_bytes(&self) -> u64 {
        let funcs = u64::from(self.app_funcs + self.lib_funcs);
        let blocks = u64::from(self.blocks_per_func.mid());
        let instrs = u64::from(self.instrs_per_block.mid());
        let bytes = u64::from(self.instr_bytes.mid());
        funcs * blocks * instrs * bytes
    }

    /// Validates internal consistency. Bands are re-checked here because
    /// literal construction and deserialization bypass the [`Span`] /
    /// [`Span1`] constructor asserts.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        fn degenerate(reason: impl Into<String>) -> SpecError {
            SpecError::Degenerate {
                reason: reason.into(),
            }
        }
        if self.handlers == 0 {
            return Err(degenerate("handlers must be >= 1"));
        }
        if self.app_funcs < self.handlers + 1 {
            return Err(degenerate(format!(
                "app_funcs ({}) must exceed handlers ({}) plus dispatcher",
                self.app_funcs, self.handlers
            )));
        }
        for (field, span) in [
            ("blocks_per_func", self.blocks_per_func),
            ("instrs_per_block", self.instrs_per_block),
            ("instr_bytes", self.instr_bytes),
            ("indirect_call_fanout", self.indirect_call_fanout),
            ("indirect_jump_fanout", self.indirect_jump_fanout),
        ] {
            if span.min > span.max {
                return Err(SpecError::BandOutOfOrder { field });
            }
        }
        for (field, span) in [
            ("loop_taken_prob", self.loop_taken_prob),
            ("biased_taken_prob", self.biased_taken_prob),
        ] {
            if !(span.min >= 0.0 && span.min <= span.max && span.max <= 1.0) {
                return Err(SpecError::BandOutOfOrder { field });
            }
        }
        if self.blocks_per_func.min < 2 {
            return Err(degenerate("functions need at least 2 blocks (body + return)"));
        }
        if self.instrs_per_block.min < 1 {
            return Err(degenerate("blocks need at least 1 instruction"));
        }
        if self.estimated_footprint_bytes() == 0 {
            return Err(SpecError::ZeroFootprint);
        }
        let total = self.mix.total();
        if !total.is_finite() || (total - 1.0).abs() > 0.05 {
            return Err(SpecError::MixImbalance { total });
        }
        if self.call_levels == 0 {
            return Err(degenerate("call_levels must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.loop_fraction)
            || !(0.0..=1.0).contains(&self.unbiased_fraction)
            || !(0.0..=1.0).contains(&self.library_call_fraction)
        {
            return Err(degenerate("fractions must be within [0, 1]"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for spec in WorkloadSpec::all_apps() {
            spec.validate().unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
        WorkloadSpec::tiny_test().validate().unwrap();
    }

    #[test]
    fn preset_names_match_paper() {
        let names: Vec<_> = WorkloadSpec::all_apps().iter().map(|s| s.name.clone()).collect();
        assert_eq!(
            names,
            vec![
                "cassandra",
                "drupal",
                "finagle-chirper",
                "finagle-http",
                "kafka",
                "mediawiki",
                "tomcat",
                "verilator",
                "wordpress"
            ]
        );
    }

    #[test]
    fn footprints_are_ordered_like_table3() {
        // verilator must be by far the largest; wordpress/drupal smallest.
        // Static estimates track Table 3's ordering for the service apps.
        // (Verilator's *executed* footprint is the largest by ~2x — see the
        // calibrate binary — but its short instructions make the static
        // estimate comparable to finagle-http's, so it is compared against
        // the mid-size apps here.)
        let f = |a| WorkloadSpec::preset(a).estimated_footprint_bytes();
        assert!(f(AppId::Verilator) > f(AppId::Cassandra));
        assert!(f(AppId::FinagleHttp) > f(AppId::Cassandra));
        assert!(f(AppId::Cassandra) > f(AppId::Drupal));
        assert!(f(AppId::Drupal) > f(AppId::Tomcat) / 2);
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<_> = WorkloadSpec::all_apps().iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 9);
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let mut s = WorkloadSpec::tiny_test();
        s.handlers = 0;
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::tiny_test();
        s.app_funcs = s.handlers; // no room for dispatcher
        assert!(s.validate().is_err());

        let mut s = WorkloadSpec::tiny_test();
        s.blocks_per_func = Span::new(1, 1);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_types_band_mix_and_footprint_errors() {
        // Out-of-order integer band, built literally (bypasses Span::new).
        let mut s = WorkloadSpec::tiny_test();
        s.instrs_per_block = Span { min: 9, max: 3 };
        assert_eq!(
            s.validate(),
            Err(SpecError::BandOutOfOrder {
                field: "instrs_per_block"
            })
        );

        // Probability band escaping [0, 1].
        let mut s = WorkloadSpec::tiny_test();
        s.loop_taken_prob = Span1 { min: 0.2, max: 1.5 };
        assert_eq!(
            s.validate(),
            Err(SpecError::BandOutOfOrder {
                field: "loop_taken_prob"
            })
        );

        // Zero-size footprint: zero-byte instructions.
        let mut s = WorkloadSpec::tiny_test();
        s.instr_bytes = Span { min: 0, max: 0 };
        assert_eq!(s.validate(), Err(SpecError::ZeroFootprint));

        // Mix weights far from 1.
        let mut s = WorkloadSpec::tiny_test();
        s.mix.conditional = 3.0;
        assert!(matches!(
            s.validate(),
            Err(SpecError::MixImbalance { total }) if total > 3.0
        ));

        // Errors render as readable text.
        let text = SpecError::MixImbalance { total: 2.5 }.to_string();
        assert!(text.contains("2.5"), "{text}");
    }

    #[test]
    fn span_midpoint() {
        assert_eq!(Span::new(4, 10).mid(), 7);
        assert_eq!(Span::new(3, 3).mid(), 3);
    }
}
