//! Seeded random construction of synthetic programs from a [`WorkloadSpec`].
//!
//! The generated program has the shape of a data-center service:
//!
//! - function 0 is the *dispatcher* (event loop) that indirect-calls one of
//!   `handlers` request-handler functions per iteration, with Zipf-skewed
//!   popularity;
//! - handlers call into a DAG of helper functions organized in
//!   `call_levels` levels (calls only go to strictly deeper levels, so the
//!   call graph is recursion-free and the call depth is bounded);
//! - the last `lib_funcs` functions are shared-library leaves placed in a
//!   distant text region by the layout pass.
//!
//! Everything is deterministic in `spec.seed`.

use twig_rand::rngs::StdRng;
use twig_rand::{RngExt, SeedableRng};
use twig_types::{BlockId, FuncId};

use crate::layout::{assign_layout, LayoutOptions, LibrarySplit};
use crate::program::{BasicBlock, Function, Program, Terminator};
use crate::spec::{Span, Span1, WorkloadSpec};

/// Deterministic program builder. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use twig_workload::{ProgramGenerator, WorkloadSpec};
///
/// let spec = WorkloadSpec::tiny_test();
/// let a = ProgramGenerator::new(spec.clone()).generate();
/// let b = ProgramGenerator::new(spec).generate();
/// assert_eq!(a.num_blocks(), b.num_blocks()); // fully deterministic
/// ```
#[derive(Debug)]
pub struct ProgramGenerator {
    spec: WorkloadSpec,
}

/// Terminator byte sizes, modelling typical x86-64 encodings.
const COND_BYTES: u32 = 4;
const JUMP_BYTES: u32 = 5;
const CALL_BYTES: u32 = 5;
const ICALL_BYTES: u32 = 3;
const IJUMP_BYTES: u32 = 3;
const RET_BYTES: u32 = 1;

impl ProgramGenerator {
    /// Creates a generator for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`]; use
    /// [`Self::try_new`] to handle invalid specs as typed errors.
    pub fn new(spec: WorkloadSpec) -> Self {
        Self::try_new(spec).expect("invalid workload spec")
    }

    /// Creates a generator for `spec`, surfacing validation failures as a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Returns the spec's first violated constraint.
    pub fn try_new(spec: WorkloadSpec) -> Result<Self, crate::spec::SpecError> {
        spec.validate()?;
        Ok(ProgramGenerator { spec })
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates the program and assigns its initial binary layout.
    pub fn generate(&self) -> Program {
        let spec = &self.spec;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let total_funcs = spec.app_funcs + spec.lib_funcs;

        // Assign call-graph levels. Levels: 0 dispatcher, 1 handlers,
        // 2..=call_levels+1 helpers, call_levels+2 library leaves.
        let helper_levels = spec.call_levels;
        let mut level_of = vec![0u32; total_funcs as usize];
        let mut funcs_at_level: Vec<Vec<u32>> = vec![Vec::new(); (helper_levels + 3) as usize];
        funcs_at_level[0].push(0);
        for f in 1..=spec.handlers {
            level_of[f as usize] = 1;
            funcs_at_level[1].push(f);
        }
        for f in (spec.handlers + 1)..spec.app_funcs {
            // Deeper levels get more functions (call trees widen with depth).
            let depth_bias = rng.random::<f64>().max(rng.random::<f64>());
            let level = 2 + (depth_bias * f64::from(helper_levels)) as u32;
            let level = level.min(helper_levels + 1);
            level_of[f as usize] = level;
            funcs_at_level[level as usize].push(f);
        }
        let lib_level = helper_levels + 2;
        for f in spec.app_funcs..total_funcs {
            level_of[f as usize] = lib_level;
            funcs_at_level[lib_level as usize].push(f);
        }
        // Guarantee every helper level is non-empty so call sites always
        // find a deeper target (fall back to the library otherwise).

        let mut functions = Vec::with_capacity(total_funcs as usize);
        let mut blocks: Vec<BasicBlock> = Vec::new();
        // Balanced callee assignment: rotate through each pool so every
        // function has near-uniform in-degree. Uniform *random* assignment
        // produces a multiplicative popularity cascade across call levels
        // (lognormal skew) that lets the hottest 8K branch sites absorb
        // ~99% of executions, collapsing the BTB miss rate far below what
        // the paper's flat-profile data-center applications exhibit.
        let mut rotors = vec![0usize; funcs_at_level.len()];

        for f in 0..total_funcs {
            let fid = FuncId::new(f);
            let first_block = blocks.len() as u32;
            if f == 0 {
                self.build_dispatcher(&mut blocks, fid, &mut rng);
            } else {
                let level = level_of[f as usize];
                self.build_function(
                    &mut blocks,
                    fid,
                    level,
                    &funcs_at_level,
                    lib_level,
                    &mut rotors,
                    &mut rng,
                );
            }
            let last_block = blocks.len() as u32;
            functions.push(Function {
                id: fid,
                entry: BlockId::new(first_block),
                first_block,
                last_block,
            });
        }

        let mut program = Program::from_parts(functions, blocks, FuncId::new(0));
        assign_layout(&mut program, &self.layout_options());
        program
    }

    /// The layout options implied by the spec (library functions go to a
    /// distant region, producing the large offsets of Fig. 15).
    pub fn layout_options(&self) -> LayoutOptions {
        LayoutOptions {
            inter_function_pad: self.spec.inter_function_pad,
            library_split: Some(LibrarySplit {
                first_library_func: self.spec.app_funcs,
                library_base: 0x7f00_0000_0000 / 64 * 64,
            }),
            ..LayoutOptions::default()
        }
    }

    /// Dispatcher: `bb0` indirect-calls a handler (Zipf weights), `bb1`
    /// jumps back to `bb0` — an infinite event loop.
    fn build_dispatcher(&self, blocks: &mut Vec<BasicBlock>, fid: FuncId, rng: &mut StdRng) {
        let spec = &self.spec;
        let first = blocks.len() as u32;
        let callees: Vec<(FuncId, f32)> = (1..=spec.handlers)
            .map(|h| {
                let zipf_w = 1.0 / f64::from(h).powf(spec.handler_zipf);
                (FuncId::new(h), zipf_w as f32)
            })
            .collect();
        blocks.push(BasicBlock {
            func: fid,
            addr: twig_types::Addr::ZERO,
            num_instrs: self.sample_instrs(rng),
            body_bytes: 0,
            term_bytes: ICALL_BYTES,
            term: Terminator::IndirectCall {
                callees,
                return_to: BlockId::new(first + 1),
            },
            prefetch_ops: Vec::new(),
        });
        blocks.push(BasicBlock {
            func: fid,
            addr: twig_types::Addr::ZERO,
            num_instrs: self.sample_instrs(rng),
            body_bytes: 0,
            term_bytes: JUMP_BYTES,
            term: Terminator::Jump {
                target: BlockId::new(first),
            },
            prefetch_ops: Vec::new(),
        });
        let ib = self.sample_span(spec.instr_bytes, rng);
        for b in &mut blocks[first as usize..] {
            b.body_bytes = (b.num_instrs - 1) * ib + b.term_bytes;
        }
    }

    /// Builds one handler/helper/library function.
    #[allow(clippy::too_many_arguments)]
    fn build_function(
        &self,
        blocks: &mut Vec<BasicBlock>,
        fid: FuncId,
        level: u32,
        funcs_at_level: &[Vec<u32>],
        lib_level: u32,
        rotors: &mut [usize],
        rng: &mut StdRng,
    ) {
        let spec = &self.spec;
        let first = blocks.len() as u32;
        let n = self.sample_span(spec.blocks_per_func, rng).max(2);
        let instr_bytes = self.sample_span(spec.instr_bytes, rng);
        let is_library = level >= lib_level;

        for i in 0..n {
            let bid = first + i;
            let is_last = i == n - 1;
            let term = if is_last {
                Terminator::Return
            } else {
                self.sample_terminator(
                    first,
                    i,
                    n,
                    level,
                    funcs_at_level,
                    lib_level,
                    is_library,
                    rotors,
                    rng,
                )
            };
            let term_bytes = match &term {
                Terminator::FallThrough { .. } => 0,
                Terminator::Conditional { .. } => COND_BYTES,
                Terminator::Jump { .. } => JUMP_BYTES,
                Terminator::Call { .. } => CALL_BYTES,
                Terminator::IndirectJump { .. } => IJUMP_BYTES,
                Terminator::IndirectCall { .. } => ICALL_BYTES,
                Terminator::Return => RET_BYTES,
            };
            let num_instrs = self.sample_instrs(rng);
            let body_bytes = (num_instrs - 1) * instr_bytes + term_bytes.max(1);
            blocks.push(BasicBlock {
                func: fid,
                addr: twig_types::Addr::ZERO,
                num_instrs,
                body_bytes,
                term_bytes,
                term,
                prefetch_ops: Vec::new(),
            });
            let _ = bid;
        }
    }

    /// Samples a terminator for block `i` of `n` in the function starting at
    /// global block index `first`.
    #[allow(clippy::too_many_arguments)]
    fn sample_terminator(
        &self,
        first: u32,
        i: u32,
        n: u32,
        level: u32,
        funcs_at_level: &[Vec<u32>],
        lib_level: u32,
        is_library: bool,
        rotors: &mut [usize],
        rng: &mut StdRng,
    ) -> Terminator {
        let spec = &self.spec;
        let mix = &spec.mix;
        let next = BlockId::new(first + i + 1);
        let can_call = !is_library;

        let mut total = mix.conditional + mix.jump + mix.fallthrough + mix.indirect_jump;
        if can_call {
            total += mix.call + mix.indirect_call;
        }
        let mut x = rng.random::<f32>() * total;

        // Conditional.
        if x < mix.conditional {
            return self.sample_conditional(first, i, n, next, rng);
        }
        x -= mix.conditional;
        // Unconditional jump: short forward hop, like the join blocks of
        // compiled if/else code. Near targets keep per-function execution
        // coverage high and produce the small-offset mass of Figs. 14-15.
        if x < mix.jump {
            let hi = (i + 4).min(n - 1);
            let target = BlockId::new(first + rng.random_range(i + 1..=hi));
            return Terminator::Jump { target };
        }
        x -= mix.jump;
        // Indirect jump (switch over nearby forward blocks).
        if x < mix.indirect_jump {
            let fanout = self
                .sample_span(spec.indirect_jump_fanout, rng)
                .min(n - i - 1)
                .max(1);
            let hi = (i + 8).min(n - 1);
            let targets = (0..fanout)
                .map(|_| {
                    let t = BlockId::new(first + rng.random_range(i + 1..=hi));
                    (t, rng.random_range(0.2f32..1.0))
                })
                .collect();
            return Terminator::IndirectJump { targets };
        }
        x -= mix.indirect_jump;
        // Fall-through.
        if x < mix.fallthrough || !can_call {
            return Terminator::FallThrough { next };
        }
        x -= mix.fallthrough;
        // Direct call. Deepest-level functions have no deeper app level to
        // call; only `library_call_fraction` of their call slots reach the
        // library, the rest degrade to fall-throughs, so the call cascade
        // tapers off instead of funnelling into the small library pool.
        if x < mix.call {
            return match self.choose_callee(level, funcs_at_level, lib_level, rotors, rng) {
                Some(callee) => Terminator::Call {
                    callee: FuncId::new(callee),
                    return_to: next,
                },
                None => Terminator::FallThrough { next },
            };
        }
        // Indirect call.
        let fanout = self.sample_span(spec.indirect_call_fanout, rng).max(1);
        let callees: Vec<(FuncId, f32)> = (0..fanout)
            .filter_map(|_| {
                let c = self.choose_callee(level, funcs_at_level, lib_level, rotors, rng)?;
                Some((FuncId::new(c), rng.random_range(0.2f32..1.0)))
            })
            .collect();
        if callees.is_empty() {
            return Terminator::FallThrough { next };
        }
        Terminator::IndirectCall {
            callees,
            return_to: next,
        }
    }

    /// Balanced callee choice: `library_call_fraction` of call slots go to
    /// the library; the rest rotate through the next non-empty deeper app
    /// level, or return `None` (no call) when none exists. Rotation keeps
    /// in-degree near-uniform, preserving the flat execution profile of
    /// data-center services.
    fn choose_callee(
        &self,
        level: u32,
        funcs_at_level: &[Vec<u32>],
        lib_level: u32,
        rotors: &mut [usize],
        rng: &mut StdRng,
    ) -> Option<u32> {
        let lib = &funcs_at_level[lib_level as usize];
        let wants_lib =
            !lib.is_empty() && rng.random::<f32>() < self.spec.library_call_fraction;
        let (pool_idx, pool) = if wants_lib {
            (lib_level as usize, lib)
        } else {
            let idx = (level as usize + 1..lib_level as usize)
                .find(|&l| !funcs_at_level[l].is_empty())?;
            (idx, &funcs_at_level[idx])
        };
        let rotor = &mut rotors[pool_idx];
        let choice = pool[*rotor % pool.len()];
        *rotor += 1;
        Some(choice)
    }

    fn sample_conditional(
        &self,
        first: u32,
        i: u32,
        n: u32,
        next: BlockId,
        rng: &mut StdRng,
    ) -> Terminator {
        let spec = &self.spec;
        let is_loop = i > 0 && rng.random::<f32>() < spec.loop_fraction;
        let (taken, prob) = if is_loop {
            let back = rng.random_range(first + i.saturating_sub(6)..=first + i);
            (
                BlockId::new(back),
                self.sample_prob(spec.loop_taken_prob, rng),
            )
        } else {
            // Short forward skip (if/then shape): mostly 1-3 blocks ahead.
            let hi = (i + 3).min(n - 1);
            let fwd = BlockId::new(first + rng.random_range(i + 1..=hi));
            let p = if rng.random::<f32>() < spec.unbiased_fraction {
                rng.random_range(0.35f32..0.65)
            } else {
                let p = self.sample_prob(spec.biased_taken_prob, rng);
                if rng.random::<bool>() {
                    p
                } else {
                    1.0 - p
                }
            };
            (fwd, p)
        };
        Terminator::Conditional {
            taken,
            not_taken: next,
            taken_prob: prob,
        }
    }

    fn sample_span(&self, span: Span, rng: &mut StdRng) -> u32 {
        rng.random_range(span.min..=span.max)
    }

    fn sample_instrs(&self, rng: &mut StdRng) -> u32 {
        self.sample_span(self.spec.instrs_per_block, rng).max(1)
    }

    fn sample_prob(&self, span: Span1, rng: &mut StdRng) -> f32 {
        rng.random_range(span.min..=span.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use twig_types::BranchKind;

    fn tiny() -> Program {
        ProgramGenerator::new(WorkloadSpec::tiny_test()).generate()
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a, b);
    }

    #[test]
    fn every_function_ends_in_return_except_dispatcher() {
        let p = tiny();
        for func in p.functions() {
            let last = p.block(BlockId::new(func.last_block - 1));
            if func.id == p.entry_function() {
                assert!(matches!(last.term, Terminator::Jump { .. }));
            } else {
                assert!(
                    matches!(last.term, Terminator::Return),
                    "{} does not end in return",
                    func.id
                );
            }
        }
    }

    #[test]
    fn branch_targets_stay_in_function_for_direct_branches() {
        let p = tiny();
        for (id, block) in p.blocks() {
            let func = p.function(block.func);
            let in_func = |b: BlockId| {
                (func.first_block..func.last_block).contains(&b.raw())
            };
            match &block.term {
                Terminator::Conditional {
                    taken, not_taken, ..
                } => {
                    assert!(in_func(*taken), "{id}: cond target escapes function");
                    assert_eq!(not_taken.raw(), id.raw() + 1);
                }
                Terminator::Jump { target } if block.func != p.entry_function() => {
                    assert!(in_func(*target));
                    assert!(target.raw() > id.raw(), "direct jumps are forward");
                }
                Terminator::IndirectJump { targets } => {
                    assert!(!targets.is_empty());
                    for (t, w) in targets {
                        assert!(in_func(*t));
                        assert!(*w > 0.0);
                    }
                }
                Terminator::FallThrough { next } => {
                    assert_eq!(next.raw(), id.raw() + 1);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn calls_are_recursion_free() {
        // Follow max-length call chains: must terminate (DAG by levels).
        let p = tiny();
        fn depth(
            p: &Program,
            f: twig_types::FuncId,
            memo: &mut Vec<Option<u32>>,
            visiting: &mut Vec<bool>,
        ) -> u32 {
            if let Some(d) = memo[f.index()] {
                return d;
            }
            assert!(!visiting[f.index()], "recursive call chain at {f}");
            visiting[f.index()] = true;
            let func = p.function(f);
            let mut best = 0;
            for bid in func.block_ids() {
                match &p.block(bid).term {
                    Terminator::Call { callee, .. } => {
                        best = best.max(1 + depth(p, *callee, memo, visiting));
                    }
                    Terminator::IndirectCall { callees, .. } => {
                        for (c, _) in callees {
                            best = best.max(1 + depth(p, *c, memo, visiting));
                        }
                    }
                    _ => {}
                }
            }
            visiting[f.index()] = false;
            memo[f.index()] = Some(best);
            best
        }
        let mut memo = vec![None; p.num_functions()];
        let mut visiting = vec![false; p.num_functions()];
        let d = depth(&p, p.entry_function(), &mut memo, &mut visiting);
        assert!(d >= 2, "call graph should have some depth, got {d}");
    }

    #[test]
    fn probabilities_are_valid() {
        let p = tiny();
        for (_, b) in p.blocks() {
            if let Terminator::Conditional { taken_prob, .. } = b.term {
                assert!((0.0..=1.0).contains(&taken_prob));
            }
        }
    }

    #[test]
    fn terminator_mix_is_represented() {
        let p = tiny();
        let mut seen = [false; 6];
        for (_, b) in p.blocks() {
            if let Some(k) = b.branch_kind() {
                seen[k.index()] = true;
            }
        }
        for k in BranchKind::ALL {
            assert!(seen[k.index()], "no {k} branches generated");
        }
    }

    #[test]
    fn footprint_close_to_estimate() {
        let spec = WorkloadSpec::tiny_test();
        let est = spec.estimated_footprint_bytes() as f64;
        let p = ProgramGenerator::new(spec).generate();
        let actual = p.text_bytes() as f64;
        assert!(
            (actual / est - 1.0).abs() < 0.5,
            "estimate {est} vs actual {actual}"
        );
    }
}
