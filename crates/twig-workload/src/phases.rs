//! Load phases: the diurnal request-mix drift a long-running service sees.
//!
//! A fleet tenant is not profiled against one frozen input. Over a day the
//! request mix rotates (peak traffic, batch backfill, cache-cold restarts),
//! which shifts hot-path frequencies the same way the paper's input drift
//! study does (§4.2) — just continuously instead of once. A [`LoadPhase`]
//! names one such operating point and maps it to an [`InputConfig`] plus an
//! instruction-budget scale; a [`PhaseSchedule`] cycles phases across layout
//! generations so the continuous-PGO loop re-profiles each tenant under the
//! mix it is actually serving.
//!
//! Everything here is pure data: the schedule is a deterministic function of
//! `(tenant seed, generation)`, so fleet runs replay identically regardless
//! of worker count or wall-clock.

use crate::inputs::{splitmix, InputConfig};
use twig_serde::{Deserialize, Serialize};

/// One operating point of a long-running service.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LoadPhase {
    /// Peak request traffic: the profiled steady state, full instruction
    /// budget, training-input behaviour.
    Peak,
    /// Off-peak trough: same code paths at lower volume — a shorter
    /// profiling window with mild mix drift.
    Trough,
    /// Batch/backfill window: cold paths dominate; the strongest drift
    /// from the training input.
    Batch,
}

impl LoadPhase {
    /// All phases, in schedule rotation order.
    pub const ALL: [LoadPhase; 3] = [LoadPhase::Peak, LoadPhase::Trough, LoadPhase::Batch];

    /// Stable lower-case name (used in manifests and fault labels).
    pub fn name(self) -> &'static str {
        match self {
            LoadPhase::Peak => "peak",
            LoadPhase::Trough => "trough",
            LoadPhase::Batch => "batch",
        }
    }

    /// The walker input this phase drives: phase-specific drift strength on
    /// top of a per-phase numbered input, so `Peak` reproduces the training
    /// mix and `Batch` drifts hardest.
    pub fn input(self) -> InputConfig {
        match self {
            LoadPhase::Peak => InputConfig::numbered(0),
            LoadPhase::Trough => InputConfig {
                cond_skew: 0.10,
                weight_skew: 0.20,
                ..InputConfig::numbered(1)
            },
            LoadPhase::Batch => InputConfig {
                cond_skew: 0.25,
                weight_skew: 0.45,
                ..InputConfig::numbered(2)
            },
        }
    }

    /// Scales a full-phase instruction budget: profiling windows shrink
    /// off-peak (numerator over a fixed denominator of 8).
    pub fn budget_scale_num(self) -> u64 {
        match self {
            LoadPhase::Peak => 8,
            LoadPhase::Trough => 5,
            LoadPhase::Batch => 6,
        }
    }

    /// Applies this phase's scale to `instructions` (floored at 1).
    pub fn scaled_budget(self, instructions: u64) -> u64 {
        (instructions * self.budget_scale_num() / 8).max(1)
    }
}

/// A deterministic rotation of load phases across layout generations.
///
/// # Examples
///
/// ```
/// use twig_workload::{LoadPhase, PhaseSchedule};
///
/// let sched = PhaseSchedule::diurnal(0xF00D);
/// assert_eq!(sched.phase_at(0), sched.phase_at(3)); // period 3
/// let _ = sched.phase_at(1).input();
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PhaseSchedule {
    /// Per-tenant seed: rotates each tenant's starting phase so a fleet
    /// does not profile every tenant under the same mix simultaneously.
    pub seed: u64,
}

impl PhaseSchedule {
    /// The standard three-phase diurnal rotation for tenant `seed`.
    pub fn diurnal(seed: u64) -> Self {
        PhaseSchedule { seed }
    }

    /// The phase active at layout `generation`.
    pub fn phase_at(&self, generation: u64) -> LoadPhase {
        let offset = splitmix(self.seed ^ 0x10AD_FA5E) % LoadPhase::ALL.len() as u64;
        let idx = (generation + offset) % LoadPhase::ALL.len() as u64;
        LoadPhase::ALL[idx as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_map_to_distinct_inputs() {
        let mut seeds: Vec<u64> = LoadPhase::ALL.iter().map(|p| p.input().rng_seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), LoadPhase::ALL.len());
    }

    #[test]
    fn budgets_scale_and_never_hit_zero() {
        assert_eq!(LoadPhase::Peak.scaled_budget(80_000), 80_000);
        assert_eq!(LoadPhase::Trough.scaled_budget(80_000), 50_000);
        assert_eq!(LoadPhase::Batch.scaled_budget(80_000), 60_000);
        for phase in LoadPhase::ALL {
            assert_eq!(phase.scaled_budget(0), 1);
        }
    }

    #[test]
    fn schedule_is_periodic_and_seed_rotated() {
        let a = PhaseSchedule::diurnal(1);
        for g in 0..12 {
            assert_eq!(a.phase_at(g), a.phase_at(g + 3));
        }
        // Some pair of seeds starts in different phases.
        let starts: Vec<LoadPhase> = (0..8).map(|s| PhaseSchedule::diurnal(s).phase_at(0)).collect();
        assert!(starts.iter().any(|p| *p != starts[0]));
    }

    #[test]
    fn schedule_covers_every_phase() {
        let sched = PhaseSchedule::diurnal(7);
        for phase in LoadPhase::ALL {
            assert!((0..3).any(|g| sched.phase_at(g) == phase));
        }
    }
}
