//! Static and dynamic program statistics.
//!
//! Supports the paper's characterization figures: static branch composition,
//! instruction working-set size (Table 3), and the unconditional-branch
//! working set that Shotgun's U-BTB must hold (Fig. 11).

use std::collections::HashSet;

use twig_serde::{Deserialize, Serialize};
use twig_types::{BlockId, BranchKind};

use crate::program::Program;
use crate::walker::BlockEvent;

/// Static composition of a program binary.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StaticStats {
    /// Total basic blocks.
    pub blocks: u64,
    /// Total functions.
    pub functions: u64,
    /// Total original instructions.
    pub instructions: u64,
    /// Total text bytes (code + coalesce table).
    pub text_bytes: u64,
    /// Static branch-site counts per [`BranchKind`] index.
    pub branches_by_kind: [u64; 6],
    /// Injected prefetch operations.
    pub prefetch_ops: u64,
    /// Bytes of injected prefetch operations plus coalesce table.
    pub prefetch_bytes: u64,
}

impl StaticStats {
    /// Computes static statistics for `program`.
    ///
    /// # Examples
    ///
    /// ```
    /// use twig_workload::{ProgramGenerator, StaticStats, WorkloadSpec};
    ///
    /// let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
    /// let stats = StaticStats::of(&p);
    /// assert_eq!(stats.blocks as usize, p.num_blocks());
    /// assert!(stats.total_branches() > 0);
    /// ```
    pub fn of(program: &Program) -> Self {
        let mut stats = StaticStats {
            functions: program.num_functions() as u64,
            ..StaticStats::default()
        };
        for (_, block) in program.blocks() {
            stats.blocks += 1;
            stats.instructions += u64::from(block.num_instrs);
            stats.text_bytes += u64::from(block.size_bytes());
            if let Some(kind) = block.branch_kind() {
                stats.branches_by_kind[kind.index()] += 1;
            }
            stats.prefetch_ops += block.prefetch_ops.len() as u64;
            stats.prefetch_bytes += u64::from(block.prefetch_bytes());
        }
        let table_bytes =
            program.coalesce_table().len() as u64 * u64::from(twig_types::COALESCE_ENTRY_BYTES);
        stats.text_bytes += table_bytes;
        stats.prefetch_bytes += table_bytes;
        stats
    }

    /// Total static branch sites.
    pub fn total_branches(&self) -> u64 {
        self.branches_by_kind.iter().sum()
    }

    /// Static count for one branch kind.
    pub fn branches(&self, kind: BranchKind) -> u64 {
        self.branches_by_kind[kind.index()]
    }
}

/// Dynamic working-set accumulator over an event stream.
///
/// Feed it every executed [`BlockEvent`]; query working-set sizes at the
/// end of the run.
///
/// # Examples
///
/// ```
/// use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkingSet, WorkloadSpec};
///
/// let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// let mut ws = WorkingSet::new();
/// for ev in Walker::new(&p, InputConfig::numbered(0)).take(10_000) {
///     ws.observe(&p, ev);
/// }
/// assert!(ws.instruction_bytes(&p) > 0);
/// assert!(ws.unconditional_branch_sites() > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct WorkingSet {
    executed_blocks: HashSet<BlockId>,
    taken_branch_sites: HashSet<BlockId>,
    uncond_sites: HashSet<BlockId>,
    cond_sites: HashSet<BlockId>,
    dynamic_instrs: u64,
    dynamic_branches_by_kind: [u64; 6],
}

impl WorkingSet {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        WorkingSet::default()
    }

    /// Records one executed block event (by value; [`BlockEvent`] is
    /// `Copy`-sized, so event sources feed it without borrowing).
    pub fn observe(&mut self, program: &Program, event: BlockEvent) {
        let block = program.block(event.block);
        self.executed_blocks.insert(event.block);
        self.dynamic_instrs += u64::from(block.num_instrs);
        if let Some(kind) = block.branch_kind() {
            self.dynamic_branches_by_kind[kind.index()] += 1;
            if event.taken {
                self.taken_branch_sites.insert(event.block);
            }
            if kind.is_unconditional() {
                self.uncond_sites.insert(event.block);
            } else {
                self.cond_sites.insert(event.block);
            }
        }
    }

    /// Number of distinct executed basic blocks.
    pub fn executed_blocks(&self) -> usize {
        self.executed_blocks.len()
    }

    /// Instruction working-set size in bytes (Table 3's first column):
    /// total bytes of blocks executed at least once.
    pub fn instruction_bytes(&self, program: &Program) -> u64 {
        self.executed_blocks
            .iter()
            .map(|&b| u64::from(program.block(b).size_bytes()))
            .sum()
    }

    /// Distinct branch sites observed taken at least once — the BTB's
    /// steady-state demand.
    pub fn taken_branch_sites(&self) -> usize {
        self.taken_branch_sites.len()
    }

    /// Distinct executed unconditional branch sites (Fig. 11: compared with
    /// Shotgun's 5120-entry U-BTB).
    pub fn unconditional_branch_sites(&self) -> usize {
        self.uncond_sites.len()
    }

    /// Distinct executed conditional branch sites.
    pub fn conditional_branch_sites(&self) -> usize {
        self.cond_sites.len()
    }

    /// Total executed original instructions.
    pub fn dynamic_instructions(&self) -> u64 {
        self.dynamic_instrs
    }

    /// Dynamic branch-execution counts per kind.
    pub fn dynamic_branches(&self, kind: BranchKind) -> u64 {
        self.dynamic_branches_by_kind[kind.index()]
    }

    /// Total dynamic branch executions.
    pub fn total_dynamic_branches(&self) -> u64 {
        self.dynamic_branches_by_kind.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    fn tiny() -> Program {
        ProgramGenerator::new(WorkloadSpec::tiny_test()).generate()
    }

    #[test]
    fn static_counts_are_consistent() {
        let p = tiny();
        let s = StaticStats::of(&p);
        assert_eq!(s.blocks as usize, p.num_blocks());
        assert_eq!(s.functions as usize, p.num_functions());
        assert_eq!(s.text_bytes, p.text_bytes());
        assert_eq!(s.prefetch_ops, 0);
        assert_eq!(s.prefetch_bytes, 0);
        // Blocks either branch or fall through; branches never exceed blocks.
        assert!(s.total_branches() <= s.blocks);
        assert!(s.branches(BranchKind::Conditional) > 0);
    }

    #[test]
    fn working_set_grows_then_saturates() {
        let p = tiny();
        let mut ws = WorkingSet::new();
        let mut walker = Walker::new(&p, InputConfig::numbered(0));
        for _ in 0..2_000 {
            let ev = walker.next().unwrap();
            ws.observe(&p, ev);
        }
        let early = ws.executed_blocks();
        for _ in 0..60_000 {
            let ev = walker.next().unwrap();
            ws.observe(&p, ev);
        }
        let late = ws.executed_blocks();
        assert!(late >= early);
        assert!(late <= p.num_blocks());
        // The tiny program should be mostly explored by 62k events.
        assert!(late as f64 > 0.3 * p.num_blocks() as f64);
    }

    #[test]
    fn instruction_bytes_bounded_by_text() {
        let p = tiny();
        let mut ws = WorkingSet::new();
        for ev in Walker::new(&p, InputConfig::numbered(0)).take(50_000) {
            ws.observe(&p, ev);
        }
        assert!(ws.instruction_bytes(&p) <= p.text_bytes());
    }

    #[test]
    fn uncond_and_cond_sites_disjoint() {
        let p = tiny();
        let mut ws = WorkingSet::new();
        for ev in Walker::new(&p, InputConfig::numbered(0)).take(20_000) {
            ws.observe(&p, ev);
        }
        assert!(ws.unconditional_branch_sites() + ws.conditional_branch_sites()
            <= ws.executed_blocks());
    }

    #[test]
    fn dynamic_branch_totals_match_events() {
        let p = tiny();
        let mut ws = WorkingSet::new();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(5_000).collect();
        let expected = events
            .iter()
            .filter(|e| p.block(e.block).branch_kind().is_some())
            .count() as u64;
        for ev in &events {
            ws.observe(&p, *ev);
        }
        assert_eq!(ws.total_dynamic_branches(), expected);
    }
}
