//! The workload walker: a stochastic interpreter of the program CFG that
//! produces the dynamic instruction stream the frontend simulator consumes.
//!
//! The walker plays the role of the traced application: it maintains a call
//! stack, resolves every terminator (drawing from the seeded RNG, with the
//! active [`InputConfig`] skewing probabilities), and emits one
//! [`BlockEvent`] per executed basic block.
//!
//! Determinism matters twice:
//!
//! 1. the same `(program structure, input)` pair always produces the same
//!    event stream, making every experiment reproducible, and
//! 2. the event stream is *layout-independent* — it references blocks by
//!    stable id — so the exact same control-flow replay can be fed to the
//!    simulator before and after Twig's rewriter re-lays-out the binary,
//!    isolating the effect of the injected prefetches (the injected ops do
//!    not alter control flow, only block sizes and instruction counts).

use std::borrow::Borrow;

use twig_rand::rngs::SmallRng;
use twig_rand::{RngExt, SeedableRng};
use twig_serde::{Deserialize, Serialize};
use twig_types::{BlockId, BranchRecord};

use crate::inputs::InputConfig;
use crate::program::{Program, Terminator};

/// One executed basic block, with its resolved terminator outcome.
///
/// Layout-independent: block references are stable ids. Use
/// [`Program::resolve_branch`] to obtain the concrete [`BranchRecord`]
/// under the program's current layout.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BlockEvent {
    /// The executed block.
    pub block: BlockId,
    /// Whether the terminator branch was taken (`false` for not-taken
    /// conditionals and for fall-through blocks).
    pub taken: bool,
    /// The dynamic successor block reached via the *taken* edge
    /// (callee entry for calls, return site for returns). `None` when the
    /// terminator was not taken.
    pub target: Option<BlockId>,
}

impl BlockEvent {
    /// Resolves this event to a concrete branch record under `program`'s
    /// current layout. `None` for fall-through blocks.
    pub fn branch_record(&self, program: &Program) -> Option<BranchRecord> {
        if matches!(program.block(self.block).term, Terminator::FallThrough { .. }) {
            return None;
        }
        program.resolve_branch(self.block, self.taken, self.target)
    }
}

/// Maximum call-stack depth the walker tolerates before treating a call as
/// a tail-call (defense in depth; the generated call graph is level-bounded
/// and never reaches this).
const MAX_STACK_DEPTH: usize = 512;

/// Stochastic CFG interpreter. Implements [`Iterator`] over [`BlockEvent`]s
/// and never terminates (the dispatcher loops forever), so callers bound it
/// with [`Iterator::take`] or an instruction budget.
///
/// Generic over how the program is held: `Walker::new(&program, ..)` borrows
/// (the common case), while an owning holder such as `Arc<Program>` yields a
/// self-contained walker — what [`crate::WalkerSource`] uses to be an owned,
/// resettable event source.
///
/// # Examples
///
/// ```
/// use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};
///
/// let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
/// let events: Vec<_> = Walker::new(&program, InputConfig::numbered(0))
///     .take(100)
///     .collect();
/// assert_eq!(events.len(), 100);
/// ```
#[derive(Debug)]
pub struct Walker<P: Borrow<Program>> {
    program: P,
    input: InputConfig,
    rng: SmallRng,
    current: BlockId,
    stack: Vec<BlockId>,
}

impl<P: Borrow<Program>> Walker<P> {
    /// Starts a walk at the program's dispatcher under the given input.
    pub fn new(program: P, input: InputConfig) -> Self {
        let entry = {
            let program = program.borrow();
            program.function(program.entry_function()).entry
        };
        Walker {
            program,
            input,
            rng: SmallRng::seed_from_u64(input.rng_seed()),
            current: entry,
            stack: Vec::with_capacity(64),
        }
    }

    /// The active input configuration.
    pub fn input(&self) -> &InputConfig {
        &self.input
    }

    /// Current call-stack depth (for tests and diagnostics).
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    /// Runs the walker until at least `instructions` original program
    /// instructions have been emitted, collecting the events.
    ///
    /// Injected prefetch ops do not count toward the budget, so the same
    /// budget covers the same *program work* before and after rewriting.
    pub fn run_instructions(mut self, instructions: u64) -> Vec<BlockEvent> {
        let mut events = Vec::with_capacity((instructions / 4) as usize);
        let mut executed = 0u64;
        while executed < instructions {
            let ev = self.next().expect("walker is infinite");
            executed += u64::from(self.program.borrow().block(ev.block).num_instrs);
            events.push(ev);
        }
        events
    }

    /// Resolves the dynamic successor of `block` and returns the event.
    fn step(&mut self) -> BlockEvent {
        let id = self.current;
        let program = self.program.borrow();
        let block = program.block(id);
        let (event, next) = match &block.term {
            Terminator::FallThrough { next } => (
                BlockEvent {
                    block: id,
                    taken: false,
                    target: None,
                },
                *next,
            ),
            Terminator::Conditional {
                taken,
                not_taken,
                taken_prob,
            } => {
                let p = self.input.effective_taken_prob(id, *taken_prob);
                let is_taken = self.rng.random::<f32>() < p;
                if is_taken {
                    (
                        BlockEvent {
                            block: id,
                            taken: true,
                            target: Some(*taken),
                        },
                        *taken,
                    )
                } else {
                    (
                        BlockEvent {
                            block: id,
                            taken: false,
                            target: None,
                        },
                        *not_taken,
                    )
                }
            }
            Terminator::Jump { target } => (
                BlockEvent {
                    block: id,
                    taken: true,
                    target: Some(*target),
                },
                *target,
            ),
            Terminator::Call { callee, return_to } => {
                let entry = program.function(*callee).entry;
                if self.stack.len() < MAX_STACK_DEPTH {
                    self.stack.push(*return_to);
                }
                (
                    BlockEvent {
                        block: id,
                        taken: true,
                        target: Some(entry),
                    },
                    entry,
                )
            }
            Terminator::IndirectJump { targets } => {
                let choice =
                    weighted_choice(&mut self.rng, &self.input, id, targets.iter().map(|(_, w)| *w));
                let target = targets[choice].0;
                (
                    BlockEvent {
                        block: id,
                        taken: true,
                        target: Some(target),
                    },
                    target,
                )
            }
            Terminator::IndirectCall { callees, return_to } => {
                let choice =
                    weighted_choice(&mut self.rng, &self.input, id, callees.iter().map(|(_, w)| *w));
                let entry = program.function(callees[choice].0).entry;
                if self.stack.len() < MAX_STACK_DEPTH {
                    self.stack.push(*return_to);
                }
                (
                    BlockEvent {
                        block: id,
                        taken: true,
                        target: Some(entry),
                    },
                    entry,
                )
            }
            Terminator::Return => {
                let next = self.stack.pop().unwrap_or_else(|| {
                    // Stack exhausted (should only happen if a walk starts
                    // mid-program): restart the event loop.
                    program.function(program.entry_function()).entry
                });
                (
                    BlockEvent {
                        block: id,
                        taken: true,
                        target: Some(next),
                    },
                    next,
                )
            }
        };
        self.current = next;
        event
    }
}

/// Samples an index from input-skewed weights. A free function (rather than
/// a method) so [`Walker::step`] can call it while the program holder is
/// borrowed — it touches only the RNG and input fields.
fn weighted_choice(
    rng: &mut SmallRng,
    input: &InputConfig,
    block: BlockId,
    weights: impl Iterator<Item = f32>,
) -> usize {
    let effective: Vec<f32> = weights
        .enumerate()
        .map(|(slot, w)| input.effective_weight(block, slot as u32, w))
        .collect();
    let total: f32 = effective.iter().sum();
    debug_assert!(total > 0.0);
    let mut x = rng.random::<f32>() * total;
    for (i, w) in effective.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= *w;
    }
    effective.len() - 1
}

impl<P: Borrow<Program>> Iterator for Walker<P> {
    type Item = BlockEvent;

    fn next(&mut self) -> Option<BlockEvent> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProgramGenerator, WorkloadSpec};
    use twig_types::BranchKind;

    fn tiny() -> Program {
        ProgramGenerator::new(WorkloadSpec::tiny_test()).generate()
    }

    #[test]
    fn walk_is_deterministic() {
        let p = tiny();
        let a: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(5000).collect();
        let b: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_diverge() {
        let p = tiny();
        let a: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(5000).collect();
        let b: Vec<_> = Walker::new(&p, InputConfig::numbered(1)).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn successors_respect_cfg() {
        let p = tiny();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(20_000).collect();
        for pair in events.windows(2) {
            let (ev, next) = (&pair[0], &pair[1]);
            let block = p.block(ev.block);
            let expected = match (&block.term, ev.taken) {
                (Terminator::FallThrough { next }, _) => *next,
                (Terminator::Conditional { not_taken, .. }, false) => *not_taken,
                (_, true) => ev.target.expect("taken branch has target"),
                (t, false) => panic!("non-taken unconditional {t:?}"),
            };
            assert_eq!(next.block, expected);
        }
    }

    #[test]
    fn calls_balance_returns() {
        let p = tiny();
        let mut walker = Walker::new(&p, InputConfig::numbered(0));
        let mut max_depth = 0usize;
        for _ in 0..50_000 {
            walker.next().unwrap();
            max_depth = max_depth.max(walker.stack_depth());
        }
        assert!(max_depth > 1, "no call nesting observed");
        assert!(
            max_depth < 64,
            "call depth {max_depth} exceeds level bound"
        );
    }

    #[test]
    fn branch_records_resolve() {
        // The default tiny fixture carries a ~2% indirect-jump weight, so
        // whether its lone ijmp lands on a hot path depends on the RNG
        // stream. This test needs every kind to execute, so boost the
        // ijmp weight to make coverage structural rather than lucky.
        let mut spec = WorkloadSpec::tiny_test();
        spec.mix.indirect_jump = 0.10;
        spec.mix.conditional = 0.44;
        let p = ProgramGenerator::new(spec).generate();
        let mut kinds_seen = [false; 6];
        for ev in Walker::new(&p, InputConfig::numbered(0)).take(300_000) {
            if let Some(rec) = ev.branch_record(&p) {
                kinds_seen[rec.kind.index()] = true;
                if ev.taken {
                    assert!(rec.outcome.is_taken());
                }
            }
            if kinds_seen.iter().all(|&seen| seen) {
                break;
            }
        }
        for k in BranchKind::ALL {
            assert!(kinds_seen[k.index()], "never executed a {k} branch");
        }
    }

    #[test]
    fn run_instructions_meets_budget() {
        let p = tiny();
        let events = Walker::new(&p, InputConfig::numbered(0)).run_instructions(10_000);
        let total: u64 = events
            .iter()
            .map(|e| u64::from(p.block(e.block).num_instrs))
            .sum();
        assert!(total >= 10_000);
        assert!(total < 10_000 + 64, "overshoot bounded by one block");
    }

    #[test]
    fn conditional_bias_shows_in_frequencies() {
        // Loop back-edges are mostly taken; statistically, taken conditional
        // executions should not be rare.
        let p = tiny();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(50_000).collect();
        let (mut taken, mut total) = (0u64, 0u64);
        for ev in &events {
            if matches!(p.block(ev.block).term, Terminator::Conditional { .. }) {
                total += 1;
                taken += u64::from(ev.taken);
            }
        }
        assert!(total > 1000);
        let rate = taken as f64 / total as f64;
        assert!((0.15..0.85).contains(&rate), "taken rate {rate}");
    }
}
