//! Compact binary trace encoding for workload event streams.
//!
//! Plays the role of the paper's Intel Processor Trace captures (§4.1): a
//! trace stores only the *dynamic control-flow decisions* — like real PT
//! packets, static information (block geometry, direct-branch targets) is
//! reconstructed from the binary, so traces are small and layout-independent.
//!
//! This module holds the row-oriented `TWGT` v1 format (one varint record
//! per event, decoded front to back) plus the decode machinery shared with
//! the columnar `.twgc` format in [`crate::columnar`]. See the crate docs
//! for when each format is chosen.
//!
//! Format (little-endian, varint = LEB128):
//!
//! ```text
//! magic  "TWGT"            4 bytes
//! version u8               currently 1
//! count   varint           number of events
//! events  count × event
//!
//! event:
//!   header u8: bit0 = taken, bit1 = has_target
//!   block  varint          block id
//!   target varint          (only if has_target) block id
//! ```
//!
//! Both [`decode_trace`] (over a byte slice) and [`read_trace`] (over any
//! [`Read`]) drive the same chunk-oriented [`EventDecoder`]: the streaming
//! path refills a bounded window and retries the shared per-event decode at
//! the window edge, so `read_trace` never buffers the whole file.

use std::io::{self, Read, Write};

use twig_bytes::{BufMut, Bytes, BytesMut};
use twig_types::BlockId;

use crate::walker::BlockEvent;

const MAGIC: &[u8; 4] = b"TWGT";
const VERSION: u8 = 1;

/// Streaming-read window size: large enough to amortize `Read` calls, small
/// enough that [`read_trace`]'s transient buffer stays cache-resident.
const READ_WINDOW: usize = 64 * 1024;

/// Upper bound on one encoded event (header byte + two maximal varints);
/// a decode that fails inside the last `MAX_EVENT_BYTES` of a non-final
/// window is a window-edge artifact, not corruption.
const MAX_EVENT_BYTES: usize = 1 + 10 + 10;

/// Errors produced when decoding a trace (either format).
#[derive(Debug)]
pub enum TraceError {
    /// The stream does not begin with a known trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The stream ended mid-event or a varint overflowed.
    Truncated {
        /// Absolute byte offset where decoding failed.
        offset: u64,
        /// Index of the event being decoded when the stream ended.
        event: u64,
    },
    /// A structural invariant of the container failed (bad directory,
    /// impossible length, ...); `what` names the violated invariant.
    Corrupt {
        /// Absolute byte offset of the rejected structure.
        offset: u64,
        /// The violated invariant.
        what: &'static str,
    },
    /// A CRC-framed chunk failed its checksum (bit flip or torn write).
    ChecksumMismatch {
        /// Index of the rejected chunk.
        chunk: u32,
        /// Absolute byte offset of the chunk.
        offset: u64,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "stream is not a twig trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated { offset, event } => write!(
                f,
                "trace ended unexpectedly at byte {offset} (event {event})"
            ),
            TraceError::Corrupt { offset, what } => {
                write!(f, "corrupt trace at byte {offset}: {what}")
            }
            TraceError::ChecksumMismatch { chunk, offset } => {
                write!(f, "trace chunk {chunk} at byte {offset} failed its checksum")
            }
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Appends a LEB128 varint. Shared with the columnar encoder.
pub(crate) fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// The one event/varint decoder both trace formats drive: a cursor over a
/// byte window that knows its absolute position in the containing stream
/// (`base`) and the index of the event being decoded, so every failure is
/// a precise [`TraceError::Truncated`].
pub(crate) struct EventDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Absolute stream offset of `buf[0]`.
    base: u64,
    /// Index of the event currently being decoded.
    event: u64,
}

impl<'a> EventDecoder<'a> {
    pub(crate) fn new(buf: &'a [u8], base: u64, event: u64) -> Self {
        EventDecoder {
            buf,
            pos: 0,
            base,
            event,
        }
    }

    /// Bytes consumed from the window so far.
    pub(crate) fn consumed(&self) -> usize {
        self.pos
    }

    /// Absolute stream offset of the next unread byte.
    pub(crate) fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn truncated(&self) -> TraceError {
        TraceError::Truncated {
            offset: self.offset(),
            event: self.event,
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TraceError> {
        let byte = *self.buf.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(byte)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.truncated())
    }

    /// Decodes one `TWGT` event record and advances the event index.
    pub(crate) fn event(&mut self) -> Result<BlockEvent, TraceError> {
        let header = self.u8()?;
        let block = BlockId::new(self.varint()? as u32);
        let target = if header & 2 != 0 {
            Some(BlockId::new(self.varint()? as u32))
        } else {
            None
        };
        self.event += 1;
        Ok(BlockEvent {
            block,
            taken: header & 1 != 0,
            target,
        })
    }
}

/// Encodes one `TWGT` event record. The inverse of [`EventDecoder::event`].
pub(crate) fn put_event(buf: &mut BytesMut, ev: &BlockEvent) {
    let mut header = 0u8;
    if ev.taken {
        header |= 1;
    }
    if ev.target.is_some() {
        header |= 2;
    }
    buf.put_u8(header);
    put_varint(buf, u64::from(ev.block.raw()));
    if let Some(t) = ev.target {
        put_varint(buf, u64::from(t.raw()));
    }
}

/// Encodes events into an in-memory trace buffer.
///
/// # Examples
///
/// ```
/// use twig_workload::{decode_trace, encode_trace, BlockEvent};
/// use twig_types::BlockId;
///
/// let events = vec![BlockEvent {
///     block: BlockId::new(3),
///     taken: true,
///     target: Some(BlockId::new(9)),
/// }];
/// let bytes = encode_trace(&events);
/// assert_eq!(decode_trace(&bytes).unwrap(), events);
/// ```
pub fn encode_trace(events: &[BlockEvent]) -> Bytes {
    let mut buf = BytesMut::with_capacity(events.len() * 3 + 16);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, events.len() as u64);
    for ev in events {
        put_event(&mut buf, ev);
    }
    buf.freeze()
}

/// Parses the `TWGT` header from a decoder positioned at byte 0; returns
/// the event count.
fn decode_header(dec: &mut EventDecoder<'_>) -> Result<u64, TraceError> {
    if dec.buf.len() < 5 || &dec.buf[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = dec.buf[4];
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    dec.pos = 5;
    dec.varint()
}

/// Decodes a full trace buffer.
///
/// # Errors
///
/// Returns [`TraceError`] on malformed input; [`TraceError::Truncated`]
/// carries the byte offset and event index where decoding stopped.
pub fn decode_trace(buf: &[u8]) -> Result<Vec<BlockEvent>, TraceError> {
    let mut dec = EventDecoder::new(buf, 0, 0);
    let count = decode_header(&mut dec)?;
    let mut events = Vec::with_capacity((count as usize).min(1 << 24));
    for _ in 0..count {
        events.push(dec.event()?);
    }
    Ok(events)
}

/// Writes an encoded trace to `writer`.
///
/// A `&mut W` also works wherever a `W: Write` is expected.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(mut writer: W, events: &[BlockEvent]) -> io::Result<()> {
    writer.write_all(&encode_trace(events))
}

/// Reads an entire trace from `reader`, decoding through a bounded 64 KiB
/// window rather than buffering the file — the same per-event decoder as
/// [`decode_trace`], retried at the window edge after a refill.
///
/// A `&mut R` also works wherever an `R: Read` is expected.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failure or malformed input.
pub fn read_trace<R: Read>(reader: R) -> Result<Vec<BlockEvent>, TraceError> {
    let mut window = StreamWindow::new(reader);
    // Header: magic + version + count varint fit well inside one window.
    window.fill()?;
    let (count, header_len) = {
        let mut dec = EventDecoder::new(window.bytes(), 0, 0);
        let count = decode_header(&mut dec)?;
        (count, dec.consumed())
    };
    window.consume(header_len);
    let mut events = Vec::with_capacity((count as usize).min(1 << 24));
    for index in 0..count {
        loop {
            let mut dec = EventDecoder::new(window.bytes(), window.base(), index);
            match dec.event() {
                Ok(ev) => {
                    let used = dec.consumed();
                    window.consume(used);
                    events.push(ev);
                    break;
                }
                // A failure near the window edge may just mean the record
                // straddles it: refill and re-run the same decoder. Only
                // when no more input exists is it a real truncation.
                Err(TraceError::Truncated { .. }) if !window.at_eof() => {
                    window.fill()?;
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(events)
}

/// A bounded sliding window over a [`Read`] stream: holds at most one
/// refill chunk plus a partial record, tracking the absolute offset of its
/// first unconsumed byte.
struct StreamWindow<R: Read> {
    reader: R,
    buf: Vec<u8>,
    start: usize,
    base: u64,
    eof: bool,
}

impl<R: Read> StreamWindow<R> {
    fn new(reader: R) -> Self {
        StreamWindow {
            reader,
            buf: Vec::with_capacity(READ_WINDOW + MAX_EVENT_BYTES),
            start: 0,
            base: 0,
            eof: false,
        }
    }

    /// The unconsumed window.
    fn bytes(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Absolute stream offset of `bytes()[0]`.
    fn base(&self) -> u64 {
        self.base
    }

    /// Whether the underlying reader is exhausted (window may still hold a
    /// tail).
    fn at_eof(&self) -> bool {
        self.eof
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(self.start + n <= self.buf.len());
        self.start += n;
        self.base += n as u64;
    }

    /// Compacts the consumed prefix away and reads one more chunk.
    fn fill(&mut self) -> Result<(), TraceError> {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let old_len = self.buf.len();
        self.buf.resize(old_len + READ_WINDOW, 0);
        let mut filled = old_len;
        while filled < self.buf.len() {
            match self.reader.read(&mut self.buf[filled..]) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::Io(e)),
            }
        }
        self.buf.truncate(filled);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    #[test]
    fn roundtrip_empty() {
        let bytes = encode_trace(&[]);
        assert_eq!(decode_trace(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn roundtrip_walker_stream() {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(10_000).collect();
        let bytes = encode_trace(&events);
        assert_eq!(decode_trace(&bytes).unwrap(), events);
        // Compactness: a handful of bytes per event on average (header +
        // varint block id + optional varint target).
        assert!(bytes.len() < events.len() * 6 + 16);
    }

    #[test]
    fn io_roundtrip() {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(1)).take(1000).collect();
        let mut sink = Vec::new();
        write_trace(&mut sink, &events).unwrap();
        let back = read_trace(sink.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn streaming_read_crosses_window_edges() {
        // Enough events that the encoded stream spans several 64 KiB
        // windows, exercising the refill-and-retry path of `read_trace`.
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(2))
            .take(100_000)
            .collect();
        let bytes = encode_trace(&events);
        assert!(bytes.len() > 2 * super::READ_WINDOW, "trace too small");
        assert_eq!(read_trace(&bytes[..]).unwrap(), events);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            decode_trace(b"NOPE\x01\x00"),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            read_trace(&b"NOPE\x01\x00"[..]),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        assert!(matches!(
            decode_trace(b"TWGT\x63\x00"),
            Err(TraceError::BadVersion(0x63))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(100).collect();
        let bytes = encode_trace(&events);
        for cut in [5, 7, bytes.len() - 1] {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
            assert!(
                read_trace(&bytes[..cut]).is_err(),
                "streaming accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn truncation_error_names_offset_and_event() {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(100).collect();
        let bytes = encode_trace(&events);
        let cut = bytes.len() - 1;
        match decode_trace(&bytes[..cut]) {
            Err(TraceError::Truncated { offset, event }) => {
                // The failure is inside the final event, at the cut point.
                assert_eq!(event, events.len() as u64 - 1);
                assert!(offset as usize <= cut);
                assert!(offset as usize >= cut.saturating_sub(super::MAX_EVENT_BYTES));
                // The streaming decoder reports the identical position.
                match read_trace(&bytes[..cut]) {
                    Err(TraceError::Truncated {
                        offset: s_offset,
                        event: s_event,
                    }) => {
                        assert_eq!((s_offset, s_event), (offset, event));
                    }
                    other => panic!("streaming path returned {other:?}"),
                }
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut dec = EventDecoder::new(&buf, 0, 0);
            assert_eq!(dec.varint().unwrap(), v);
            assert_eq!(dec.consumed(), buf.len());
        }
    }
}
