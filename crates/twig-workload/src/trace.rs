//! Compact binary trace encoding for workload event streams.
//!
//! Plays the role of the paper's Intel Processor Trace captures (§4.1): a
//! trace stores only the *dynamic control-flow decisions* — like real PT
//! packets, static information (block geometry, direct-branch targets) is
//! reconstructed from the binary, so traces are small and layout-independent.
//!
//! Format (little-endian, varint = LEB128):
//!
//! ```text
//! magic  "TWGT"            4 bytes
//! version u8               currently 1
//! count   varint           number of events
//! events  count × event
//!
//! event:
//!   header u8: bit0 = taken, bit1 = has_target
//!   block  varint          block id
//!   target varint          (only if has_target) block id
//! ```

use std::io::{self, Read, Write};

use twig_bytes::{Buf, BufMut, Bytes, BytesMut};
use twig_types::BlockId;

use crate::walker::BlockEvent;

const MAGIC: &[u8; 4] = b"TWGT";
const VERSION: u8 = 1;

/// Errors produced when decoding a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The stream does not begin with the trace magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The stream ended mid-event or a varint overflowed.
    Truncated,
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "stream is not a twig trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace ended unexpectedly"),
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Encodes events into an in-memory trace buffer.
///
/// # Examples
///
/// ```
/// use twig_workload::{decode_trace, encode_trace, BlockEvent};
/// use twig_types::BlockId;
///
/// let events = vec![BlockEvent {
///     block: BlockId::new(3),
///     taken: true,
///     target: Some(BlockId::new(9)),
/// }];
/// let bytes = encode_trace(&events);
/// assert_eq!(decode_trace(&bytes).unwrap(), events);
/// ```
pub fn encode_trace(events: &[BlockEvent]) -> Bytes {
    let mut buf = BytesMut::with_capacity(events.len() * 3 + 16);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    put_varint(&mut buf, events.len() as u64);
    for ev in events {
        let mut header = 0u8;
        if ev.taken {
            header |= 1;
        }
        if ev.target.is_some() {
            header |= 2;
        }
        buf.put_u8(header);
        put_varint(&mut buf, u64::from(ev.block.raw()));
        if let Some(t) = ev.target {
            put_varint(&mut buf, u64::from(t.raw()));
        }
    }
    buf.freeze()
}

/// Decodes a full trace buffer.
///
/// # Errors
///
/// Returns [`TraceError`] on malformed input.
pub fn decode_trace(mut buf: &[u8]) -> Result<Vec<BlockEvent>, TraceError> {
    if buf.len() < 5 || &buf[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = buf[4];
    if version != VERSION {
        return Err(TraceError::BadVersion(version));
    }
    buf.advance(5);
    let count = get_varint(&mut buf)? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        if buf.remaining() < 2 {
            return Err(TraceError::Truncated);
        }
        let header = buf.get_u8();
        let block = BlockId::new(get_varint(&mut buf)? as u32);
        let target = if header & 2 != 0 {
            Some(BlockId::new(get_varint(&mut buf)? as u32))
        } else {
            None
        };
        events.push(BlockEvent {
            block,
            taken: header & 1 != 0,
            target,
        });
    }
    Ok(events)
}

/// Writes an encoded trace to `writer`.
///
/// A `&mut W` also works wherever a `W: Write` is expected.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_trace<W: Write>(mut writer: W, events: &[BlockEvent]) -> io::Result<()> {
    writer.write_all(&encode_trace(events))
}

/// Reads an entire trace from `reader`.
///
/// A `&mut R` also works wherever an `R: Read` is expected.
///
/// # Errors
///
/// Returns [`TraceError`] on I/O failure or malformed input.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Vec<BlockEvent>, TraceError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode_trace(&bytes)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, TraceError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(TraceError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(TraceError::Truncated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

    #[test]
    fn roundtrip_empty() {
        let bytes = encode_trace(&[]);
        assert_eq!(decode_trace(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn roundtrip_walker_stream() {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(10_000).collect();
        let bytes = encode_trace(&events);
        assert_eq!(decode_trace(&bytes).unwrap(), events);
        // Compactness: a handful of bytes per event on average (header +
        // varint block id + optional varint target).
        assert!(bytes.len() < events.len() * 6 + 16);
    }

    #[test]
    fn io_roundtrip() {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(1)).take(1000).collect();
        let mut sink = Vec::new();
        write_trace(&mut sink, &events).unwrap();
        let back = read_trace(sink.as_slice()).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(
            decode_trace(b"NOPE\x01\x00"),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        assert!(matches!(
            decode_trace(b"TWGT\x63\x00"),
            Err(TraceError::BadVersion(0x63))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let p = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
        let events: Vec<_> = Walker::new(&p, InputConfig::numbered(0)).take(100).collect();
        let bytes = encode_trace(&events);
        for cut in [5, 7, bytes.len() - 1] {
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut slice: &[u8] = &buf;
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }
}
