//! Property tests for the columnar `.twgc` trace format: lossless
//! round-trips against the row-oriented `TWGT` codec on arbitrary event
//! streams and chunk sizes, rejection of torn tails and single-bit flips
//! anywhere in the CRC-covered region, and reset-replay determinism of
//! the chunked reader behind [`ColumnarSource`].

use std::sync::Arc;

use twig_proptest::prelude::*;
use twig_types::BlockId;
use twig_workload::{
    decode_columnar, decode_trace, encode_columnar_chunked, encode_trace, BlockEvent,
    ColumnarReader, ColumnarSource, EventSource,
};

/// Bytes before the first chunk: magic (4) + version (1) + chunk_target
/// (4). The chunk-size hint is advisory and not checksummed, so the
/// bit-flip property starts past it.
const HEADER_LEN: usize = 9;

fn arb_event() -> impl Strategy<Value = BlockEvent> {
    (0u32..100_000, any::<bool>(), prop::option::of(0u32..100_000)).prop_map(
        |(block, taken, target)| BlockEvent {
            block: BlockId::new(block),
            taken,
            target: target.map(BlockId::new),
        },
    )
}

fn arb_events() -> impl Strategy<Value = Vec<BlockEvent>> {
    prop::collection::vec(arb_event(), 0..600)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Columnar encode/decode is lossless for arbitrary events at any
    /// chunk size, and agrees exactly with the `TWGT` row codec: both
    /// formats describe the same stream.
    #[test]
    fn columnar_roundtrip_matches_twgt(events in arb_events(), chunk in 1u32..300) {
        let columnar = encode_columnar_chunked(&events, chunk);
        prop_assert_eq!(decode_columnar(&columnar).expect("decode"), events.clone());
        let rows = encode_trace(&events);
        prop_assert_eq!(decode_trace(&rows).expect("twgt decode"), events);
    }

    /// Every strict prefix of a columnar file is rejected at open — the
    /// footer magic and checksums catch torn tails of any length.
    #[test]
    fn torn_tail_is_rejected(events in arb_events(), frac in 0.0f64..1.0) {
        let bytes = encode_columnar_chunked(&events, 64);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let cut = ((bytes.len() as f64) * frac) as usize;
        let torn = bytes[..cut.min(bytes.len() - 1)].to_vec();
        prop_assert!(
            ColumnarReader::from_bytes(torn).is_err(),
            "accepted a {cut}-byte prefix of a {}-byte file",
            bytes.len()
        );
    }

    /// Flipping any single bit past the (unchecksummed, advisory) header
    /// is detected: either open fails, or decoding the touched chunk does.
    #[test]
    fn single_bit_flip_is_detected(
        events in prop::collection::vec(arb_event(), 1..400),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let bytes = encode_columnar_chunked(&events, 64);
        let at = HEADER_LEN + pos % (bytes.len() - HEADER_LEN);
        let mut mutated = bytes;
        mutated[at] ^= 1 << bit;
        let rejected = match ColumnarReader::from_bytes(mutated) {
            Err(_) => true,
            Ok(reader) => reader.read_all().is_err(),
        };
        prop_assert!(rejected, "bit {bit} flip at byte {at} went undetected");
    }

    /// The chunked reader is deterministic under replay: a reset source
    /// re-yields the identical stream, and skipping `n` events lands
    /// exactly where iterate-and-drop would.
    #[test]
    fn reset_replay_is_deterministic(
        events in arb_events(),
        chunk in 1u32..300,
        skip in any::<usize>(),
    ) {
        let bytes = encode_columnar_chunked(&events, chunk);
        let reader = Arc::new(ColumnarReader::from_bytes(bytes).expect("open"));
        let mut source = ColumnarSource::from_reader(reader);
        let first: Vec<BlockEvent> = source.by_ref().collect();
        prop_assert_eq!(&first, &events);
        source.reset();
        let second: Vec<BlockEvent> = source.by_ref().collect();
        prop_assert_eq!(&second, &events);
        let n = skip % (events.len() + 1);
        source.reset();
        source.skip_events(n as u64);
        let tail: Vec<BlockEvent> = source.collect();
        prop_assert_eq!(&tail[..], &events[n..]);
    }
}
