//! Typed CLI errors with distinct exit codes.
//!
//! Every fallible path maps onto one of four categories, each with its
//! own nonzero exit code so scripts can tell a typo from a missing file
//! from a corrupt artifact:
//!
//! | variant   | exit | meaning                                        |
//! |-----------|------|------------------------------------------------|
//! | `Differs` | 1    | a comparison found differences (`metrics diff`)|
//! | `Usage`   | 2    | bad command line (unknown command/flag/value)  |
//! | `Io`      | 3    | filesystem failure (missing file, permissions) |
//! | `Decode`  | 4    | artifact exists but does not parse/verify      |
//! | `Invalid` | 5    | well-formed input that fails semantic checks   |
//! | `Locked`  | 6    | another live run holds the output directory    |
//!
//! `Io` and `Decode` keep their underlying error as a
//! [`std::error::Error::source`] chain, printed by `main` one `caused
//! by:` line per link.

/// A categorized CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown command, missing flag, unparseable value.
    Usage(String),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// What was being done (`read`, `write`, `mkdir for`).
        action: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// An artifact was read but could not be decoded (corrupt JSON,
    /// bad `.twpf`/`.twgt` bytes) — or could not be encoded.
    Decode {
        /// The path involved.
        path: String,
        /// The underlying codec error.
        source: Box<dyn std::error::Error + Send + Sync>,
    },
    /// Input parsed fine but is semantically invalid (spec/config
    /// validation, unknown app or system name).
    Invalid(String),
    /// A comparison command found differences (`metrics diff`) — exit 1,
    /// like `diff(1)`, so scripts can branch on "same or not".
    Differs(String),
    /// Another live process holds the output directory's `.lock` file
    /// (a dead holder's lock is stolen automatically, never reported).
    Locked {
        /// The lock file path.
        path: String,
        /// The pid recorded in it.
        pid: u32,
    },
}

impl CliError {
    /// The process exit code for this category.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Differs(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Decode { .. } => 4,
            CliError::Invalid(_) => 5,
            CliError::Locked { .. } => 6,
        }
    }

    /// Convenience constructor for [`CliError::Io`].
    pub fn io(action: &'static str, path: &str, source: std::io::Error) -> Self {
        CliError::Io {
            path: path.to_string(),
            action,
            source,
        }
    }

    /// Convenience constructor for [`CliError::Decode`].
    pub fn decode(
        path: &str,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Self {
        CliError::Decode {
            path: path.to_string(),
            source: Box::new(source),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, action, .. } => write!(f, "cannot {action} {path}"),
            CliError::Decode { path, .. } => write!(f, "cannot decode {path}"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
            CliError::Differs(msg) => write!(f, "{msg}"),
            CliError::Locked { path, pid } => write!(
                f,
                "another twig run holds {path} (pid {pid}); \
                 wait for it or remove the lock file if that process is dead"
            ),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Decode { source, .. } => Some(source.as_ref()),
            CliError::Usage(_)
            | CliError::Invalid(_)
            | CliError::Differs(_)
            | CliError::Locked { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            CliError::Differs("d".into()),
            CliError::Usage("u".into()),
            CliError::io("read", "f", std::io::Error::other("x")),
            CliError::decode("f", std::io::Error::other("y")),
            CliError::Invalid("i".into()),
            CliError::Locked {
                path: "results/.lock".into(),
                pid: 42,
            },
        ];
        let codes: Vec<i32> = errors.iter().map(CliError::exit_code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6]);
        for e in &errors {
            assert_ne!(e.exit_code(), 0);
        }
    }

    #[test]
    fn io_and_decode_chain_their_sources() {
        let io = CliError::io("read", "missing.json", std::io::Error::other("boom"));
        assert!(io.source().unwrap().to_string().contains("boom"));
        let decode = CliError::decode("p.twpf", std::io::Error::other("bad bytes"));
        assert!(decode.source().unwrap().to_string().contains("bad bytes"));
        assert!(CliError::Usage("u".into()).source().is_none());
    }

    #[test]
    fn locked_names_the_holding_process() {
        let locked = CliError::Locked {
            path: "results/.lock".into(),
            pid: 4242,
        };
        let text = locked.to_string();
        assert!(text.contains("results/.lock"), "{text}");
        assert!(text.contains("4242"), "{text}");
        assert!(locked.source().is_none());
    }
}
