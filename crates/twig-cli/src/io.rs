//! File I/O helpers: JSON for structured artifacts (specs, profiles,
//! plans, reports) and the binary `.twgt` format for traces. All
//! failures are typed [`CliError`]s: filesystem problems map to
//! [`CliError::Io`] (exit 3), undecodable artifacts to
//! [`CliError::Decode`] (exit 4). Every write publishes atomically
//! (`twig_sched::durable`), so a kill mid-command never leaves a torn
//! artifact — only ignorable `.twig-tmp` residue.

use std::path::Path;

use twig_serde::de::DeserializeOwned;
use twig_serde::Serialize;

use crate::error::CliError;

/// Reads a JSON artifact.
pub fn read_json<T: DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    twig_serde_json::from_str(&text).map_err(|e| CliError::decode(path, e))
}

/// Writes a JSON artifact (pretty-printed), atomically.
pub fn write_json<T: Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    let text = twig_serde_json::to_string_pretty(value).map_err(|e| CliError::decode(path, e))?;
    write_bytes(path, text.as_bytes())
}

/// Writes raw bytes atomically, mapping failures to [`CliError::Io`].
pub fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    twig_sched::publish_atomic(Path::new(path), bytes, None, None)
        .map_err(|e| CliError::io("write", path, e))
}

/// Writes a text artifact atomically.
pub fn write_text(path: &str, text: &str) -> Result<(), CliError> {
    write_bytes(path, text.as_bytes())
}

/// Reads a profile, selecting the format by extension: `.twpf` binary,
/// everything else JSON.
pub fn read_profile(path: &str) -> Result<twig_profile::Profile, CliError> {
    if path.ends_with(".twpf") {
        let bytes = std::fs::read(path).map_err(|e| CliError::io("read", path, e))?;
        twig_profile::decode_profile(&bytes).map_err(|e| CliError::decode(path, e))
    } else {
        read_json(path)
    }
}

/// Writes a profile, selecting the format by extension (see
/// [`read_profile`]).
pub fn write_profile(path: &str, profile: &twig_profile::Profile) -> Result<(), CliError> {
    if path.ends_with(".twpf") {
        write_bytes(path, &twig_profile::encode_profile(profile))
    } else {
        write_json(path, profile)
    }
}

/// Opens a binary trace as a resettable event source, selecting the
/// format by extension: `.twgc` columnar traces stream through the
/// mmap'd chunked reader (bounded resident memory, never materialized);
/// everything else is decoded as a row-oriented `TWGT` trace into memory.
pub fn open_trace_source(path: &str) -> Result<twig_workload::AnySource, CliError> {
    if path.ends_with(".twgc") {
        let source = twig_workload::ColumnarSource::open(Path::new(path))
            .map_err(|e| CliError::decode(path, e))?;
        Ok(source.into())
    } else {
        let bytes = std::fs::read(path).map_err(|e| CliError::io("read", path, e))?;
        let events =
            twig_workload::decode_trace(&bytes).map_err(|e| CliError::decode(path, e))?;
        Ok(events.into())
    }
}

/// Writes a binary trace file, selecting the format by extension:
/// `.twgc` columnar (chunked, CRC-framed), everything else `TWGT`. Both
/// publish atomically.
pub fn write_trace_file(
    path: &str,
    events: &[twig_workload::BlockEvent],
) -> Result<(), CliError> {
    if path.ends_with(".twgc") {
        twig_workload::write_columnar_file(Path::new(path), events.iter().copied())
            .map(|_| ())
            .map_err(|e| CliError::io("write", path, e))
    } else {
        write_bytes(path, &twig_workload::encode_trace(events))
    }
}

/// Tiny argument cursor: `--key value` flags plus positionals.
pub struct Args<'a> {
    rest: &'a [String],
}

impl<'a> Args<'a> {
    /// Wraps the argument slice after the subcommand.
    pub fn new(rest: &'a [String]) -> Self {
        Args { rest }
    }

    /// The value of `--name`, if present.
    pub fn flag(&self, name: &str) -> Option<&'a str> {
        let key = format!("--{name}");
        self.rest
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    /// The value of `--name`, or a usage error mentioning the flag.
    pub fn require(&self, name: &str) -> Result<&'a str, CliError> {
        self.flag(name)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{name}")))
    }

    /// Parsed value of `--name`, or `default`.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Whether a bare switch `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.rest.iter().any(|a| a == &key)
    }
}
