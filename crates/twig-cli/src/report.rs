//! Frontend-bottleneck reports and the cross-run regression sentinel.
//!
//! `twig report` renders a deterministic per-cell digest of exported
//! metrics snapshots (`<app>_<slot>.json`), attribution profiles
//! (`<app>_<slot>.attr.json`), and — with `--timeline` — windowed
//! timelines (`<app>_<slot>.timeline.json`, ASCII sparklines plus the
//! detected phase table): headline rates, Top-Down split, resteer
//! cost, and the top-N costliest static branches. `--json` swaps the
//! human tables for a machine-readable digest
//! (`docs/schema/report-v1.json`). `twig metrics regress`
//! compares a directory of fresh snapshots against checked-in baselines
//! with per-metric relative thresholds and exits 1 on any regression,
//! optionally appending the run's derived series to a trajectory file
//! (`BENCH_trajectory.json`).

use twig_obs::{AttributionSnapshot, MetricsSnapshot, MissKind, TimelineSnapshot};
use twig_serde::{Deserialize, Serialize};

use crate::error::CliError;

/// Schema version of `BENCH_trajectory.json`.
pub const TRAJECTORY_VERSION: u32 = 1;

/// Schema version of the `report --json` digest
/// (`docs/schema/report-v1.json`).
pub const REPORT_DIGEST_VERSION: u32 = 1;

fn read_metrics(path: &str) -> Result<MetricsSnapshot, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    MetricsSnapshot::from_json(&text).map_err(|e| CliError::decode(path, e))
}

fn read_attribution(path: &str) -> Result<AttributionSnapshot, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    AttributionSnapshot::from_json(&text).map_err(|e| CliError::decode(path, e))
}

fn read_timeline(path: &str) -> Result<TimelineSnapshot, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    TimelineSnapshot::from_json(&text).map_err(|e| CliError::decode(path, e))
}

/// File stem without the export suffixes: `m/kafka_twig.attr.json` →
/// `kafka_twig`.
fn stem(path: &str) -> String {
    let name = path.rsplit(['/', '\\']).next().unwrap_or(path);
    let name = name.strip_suffix(".attr.json").unwrap_or(name);
    let name = name.strip_suffix(".timeline.json").unwrap_or(name);
    let name = name.strip_suffix(".json").unwrap_or(name);
    name.to_string()
}

// ---------------------------------------------------------------------------
// Derived headline metrics
// ---------------------------------------------------------------------------

/// The headline figures the sentinel tracks, derived from one snapshot.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Derived {
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// BTB misses per kilo-instruction.
    pub btb_mpki: f64,
    /// Fraction of BTB misses covered by the active prefetcher.
    pub coverage: f64,
    /// Total simulated cycles.
    pub cycles: u64,
}

fn require_counter(snap: &MetricsSnapshot, path: &str, name: &str) -> Result<u64, CliError> {
    snap.counter(name)
        .ok_or_else(|| CliError::Invalid(format!("{path}: missing counter {name}")))
}

/// Derives the sentinel metrics from a counters-tier snapshot.
pub fn derive(path: &str, snap: &MetricsSnapshot) -> Result<Derived, CliError> {
    let cycles = require_counter(snap, path, "sim.cycles")?;
    let instructions = require_counter(snap, path, "sim.retired_instructions")?;
    let misses = require_counter(snap, path, "btb.misses.total")?;
    let covered = require_counter(snap, path, "btb.covered.total")?;
    if cycles == 0 || instructions == 0 {
        return Err(CliError::Invalid(format!("{path}: empty run (0 cycles or instructions)")));
    }
    Ok(Derived {
        ipc: instructions as f64 / cycles as f64,
        btb_mpki: misses as f64 * 1000.0 / instructions as f64,
        coverage: if misses == 0 { 1.0 } else { covered as f64 / misses as f64 },
        cycles,
    })
}

// ---------------------------------------------------------------------------
// twig report
// ---------------------------------------------------------------------------

fn print_metrics_section(path: &str, snap: &MetricsSnapshot) -> Result<(), CliError> {
    let d = derive(path, snap)?;
    let instructions = require_counter(snap, path, "sim.retired_instructions")?;
    println!("== {} (metrics) ==", stem(path));
    println!("  IPC             {:.4}", d.ipc);
    println!("  cycles          {}", d.cycles);
    println!("  instructions    {instructions}");
    println!("  BTB MPKI        {:.2}", d.btb_mpki);
    println!("  miss coverage   {:.1}%", d.coverage * 100.0);
    let td: Vec<u64> = ["retiring", "frontend_bound", "bad_speculation", "backend_bound"]
        .iter()
        .map(|k| snap.counter(&format!("topdown.{k}")).unwrap_or(0))
        .collect();
    let total: u64 = td.iter().sum();
    if total > 0 {
        let pct = |v: u64| v as f64 * 100.0 / total as f64;
        println!(
            "  topdown         retiring {:.1}% | frontend {:.1}% | bad-spec {:.1}% | backend {:.1}%",
            pct(td[0]),
            pct(td[1]),
            pct(td[2]),
            pct(td[3]),
        );
    }
    if let Some(penalty) = snap.histogram("frontend.resteer_penalty") {
        if penalty.count > 0 {
            println!(
                "  resteer cost    {} cycles over {} resteers (avg {:.1}, p99 {})",
                penalty.sum,
                penalty.count,
                penalty.sum as f64 / penalty.count as f64,
                penalty.p99,
            );
        }
    }
    Ok(())
}

fn print_attribution_section(path: &str, attr: &AttributionSnapshot, top: usize) {
    println!("== {} (attribution) ==", stem(path));
    println!(
        "  events          {} (sampled {})",
        attr.total_events, attr.sampled_events
    );
    println!(
        "  cycles          {} (sampled {})",
        attr.total_cycles, attr.sampled_cycles
    );
    println!(
        "  tracked sites   {} (k={}, sample={})",
        attr.entries.len(),
        attr.k,
        attr.sample
    );
    let by_kind = attr.cycles_by_miss_kind();
    let kinds: Vec<String> = MissKind::ALL
        .iter()
        .map(|k| format!("{} {}", k.mnemonic(), by_kind[k.index()]))
        .collect();
    println!("  cycles by kind  {}", kinds.join(" | "));
    if attr.entries.is_empty() {
        return;
    }
    println!("  top {} costly branches:", top.min(attr.entries.len()));
    println!(
        "  {:<18} {:<6} {:<12} {:>10} {:>8} {:>8}",
        "pc", "branch", "miss", "cycles", "events", "±err"
    );
    for e in attr.top(top) {
        println!(
            "  {:<18} {:<6} {:<12} {:>10} {:>8} {:>8}",
            format!("{:#x}", e.pc),
            e.branch,
            e.miss,
            e.cycles,
            e.events,
            e.error_cycles,
        );
    }
}

// ---------------------------------------------------------------------------
// Timeline sections (sparklines + phases)
// ---------------------------------------------------------------------------

/// 9-level ASCII intensity ramp, lowest to highest.
const SPARK_RAMP: &[u8] = b" .:-=+*#@";

/// Widest sparkline before windows are bucket-averaged down.
const SPARK_WIDTH: usize = 64;

/// Renders a value series as a fixed-ramp ASCII sparkline. Pure integer
/// arithmetic (min/max scaling, bucket means for long series), so the
/// same timeline always renders the same bytes.
fn sparkline(values: &[u64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let compact: Vec<u64> = if values.len() <= SPARK_WIDTH {
        values.to_vec()
    } else {
        (0..SPARK_WIDTH)
            .map(|b| {
                let lo = b * values.len() / SPARK_WIDTH;
                let hi = ((b + 1) * values.len() / SPARK_WIDTH).max(lo + 1);
                values[lo..hi].iter().sum::<u64>() / (hi - lo) as u64
            })
            .collect()
    };
    let min = *compact.iter().min().unwrap();
    let max = *compact.iter().max().unwrap();
    let top = (SPARK_RAMP.len() - 1) as u64;
    compact
        .iter()
        .map(|&v| {
            let level = if max == min {
                top / 2
            } else {
                (v - min).saturating_mul(top) / (max - min)
            };
            SPARK_RAMP[level as usize] as char
        })
        .collect()
}

/// `123_456` micro-units → `"0.123"` (three decimals, integer math).
fn fmt_micros(v: u64) -> String {
    format!("{}.{:03}", v / 1_000_000, (v % 1_000_000) / 1_000)
}

/// `12_345` milli-units → `"12.345"`.
fn fmt_milli(v: u64) -> String {
    format!("{}.{:03}", v / 1_000, v % 1_000)
}

/// `987` permille → `"98.7%"`.
fn fmt_permille(v: u64) -> String {
    format!("{}.{}%", v / 10, v % 10)
}

fn print_timeline_section(path: &str, tl: &TimelineSnapshot) {
    println!("== {} (timeline) ==", stem(path));
    println!(
        "  window          {} instructions, {} window(s), {} dropped",
        tl.window,
        tl.windows.len(),
        tl.dropped_windows
    );
    if tl.derived.is_empty() {
        println!("  (no derived metrics: cycle/instruction tracks absent)");
        return;
    }
    let series: [(&str, Vec<u64>, fn(u64) -> String); 4] = [
        ("ipc", tl.derived.iter().map(|d| d.ipc_micros).collect(), fmt_micros),
        ("btb mpki", tl.derived.iter().map(|d| d.btb_mpki_milli).collect(), fmt_milli),
        ("coverage", tl.derived.iter().map(|d| d.coverage_permille).collect(), fmt_permille),
        ("resteers/ki", tl.derived.iter().map(|d| d.resteer_pki_milli).collect(), fmt_milli),
    ];
    for (name, values, render) in &series {
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        println!(
            "  {:<15} [{}] {}..{}",
            name,
            sparkline(values),
            render(min),
            render(max)
        );
    }
    if !tl.phases.is_empty() {
        println!("  phases:");
        for p in &tl.phases {
            println!(
                "    {:<10} windows {:>4}..{:<4} mean IPC {}",
                p.label,
                p.start_window,
                p.end_window,
                fmt_micros(p.mean_ipc_micros)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// report --json digest
// ---------------------------------------------------------------------------

/// One metrics snapshot in the digest (integer fixed-point, derived
/// straight from the counters so the document is byte-deterministic).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DigestMetricsCell {
    /// Cell stem, e.g. `kafka_twig`.
    pub id: String,
    /// IPC × 1 000 000.
    pub ipc_micros: u64,
    /// BTB MPKI × 1 000.
    pub btb_mpki_milli: u64,
    /// Miss coverage in permille (1000 when there were no misses).
    pub coverage_permille: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
}

/// One attribution profile in the digest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DigestAttrCell {
    /// Cell stem.
    pub id: String,
    /// Total observed events.
    pub total_events: u64,
    /// Events actually sampled.
    pub sampled_events: u64,
    /// Total attributed cycles.
    pub total_cycles: u64,
    /// Cycles in sampled events.
    pub sampled_cycles: u64,
    /// Distinct branch sites tracked.
    pub tracked_sites: u64,
}

/// One windowed timeline in the digest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DigestTimelineCell {
    /// Cell stem.
    pub id: String,
    /// Window period (retired instructions per window).
    pub window: u64,
    /// Windows held.
    pub windows: u64,
    /// Windows lost to ring overwrite.
    pub dropped_windows: u64,
    /// Detected phase segments.
    pub phases: u64,
}

/// The `report --json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReportDigest {
    /// Schema version ([`REPORT_DIGEST_VERSION`]).
    pub version: u32,
    /// Metrics cells, in rendered (sorted-stem) order.
    pub metrics: Vec<DigestMetricsCell>,
    /// Attribution cells.
    pub attribution: Vec<DigestAttrCell>,
    /// Timeline cells.
    pub timelines: Vec<DigestTimelineCell>,
}

fn digest_metrics(path: &str, snap: &MetricsSnapshot) -> Result<DigestMetricsCell, CliError> {
    let cycles = require_counter(snap, path, "sim.cycles")?;
    let instructions = require_counter(snap, path, "sim.retired_instructions")?;
    let misses = require_counter(snap, path, "btb.misses.total")?;
    let covered = require_counter(snap, path, "btb.covered.total")?;
    if cycles == 0 || instructions == 0 {
        return Err(CliError::Invalid(format!("{path}: empty run (0 cycles or instructions)")));
    }
    Ok(DigestMetricsCell {
        id: stem(path),
        ipc_micros: instructions.saturating_mul(1_000_000) / cycles,
        btb_mpki_milli: misses.saturating_mul(1_000_000) / instructions,
        coverage_permille: if misses == 0 {
            1000
        } else {
            covered.saturating_mul(1000) / misses
        },
        cycles,
        instructions,
    })
}

/// `twig report [--top N] [--timeline] [--json] FILE...` —
/// deterministic bottleneck digest.
///
/// Files ending in `.attr.json` are attribution profiles and files
/// ending in `.timeline.json` are windowed timelines (accepted only
/// under `--timeline`); everything else is read as a metrics snapshot.
/// Sections print in sorted stem order regardless of argument order, so
/// reruns and shell-glob order never change the output. `--json`
/// replaces the human tables with the machine-readable digest.
pub fn cmd_report(args: &[String]) -> Result<(), CliError> {
    let mut top: usize = 10;
    let mut timeline = false;
    let mut json = false;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--top needs a number".into()))?;
                top = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("--top: cannot parse {v:?}")))?;
            }
            "--timeline" => timeline = true,
            "--json" => json = true,
            other if other.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown report flag {other:?}")));
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return Err(CliError::Usage(
            "usage: twig report [--top N] [--timeline] [--json] \
             SNAPSHOT.json|PROFILE.attr.json|CELL.timeline.json ..."
                .into(),
        ));
    }
    if !timeline {
        if let Some(path) = files.iter().find(|p| p.ends_with(".timeline.json")) {
            return Err(CliError::Usage(format!(
                "{path} is a timeline export; pass --timeline to render it"
            )));
        }
    }
    // Stem-sorted with a stable kind tiebreak: metrics, then
    // attribution, then timeline for the same cell.
    files.sort_by_key(|path| {
        let kind = if path.ends_with(".attr.json") {
            1
        } else if path.ends_with(".timeline.json") {
            2
        } else {
            0
        };
        (stem(path), kind)
    });

    let mut digest = ReportDigest {
        version: REPORT_DIGEST_VERSION,
        metrics: Vec::new(),
        attribution: Vec::new(),
        timelines: Vec::new(),
    };
    let mut coverage_rows: Vec<(String, Derived)> = Vec::new();
    let mut first = true;
    for path in files {
        if !json && !first {
            println!();
        }
        first = false;
        if path.ends_with(".attr.json") {
            let attr = read_attribution(path)?;
            if json {
                digest.attribution.push(DigestAttrCell {
                    id: stem(path),
                    total_events: attr.total_events,
                    sampled_events: attr.sampled_events,
                    total_cycles: attr.total_cycles,
                    sampled_cycles: attr.sampled_cycles,
                    tracked_sites: attr.entries.len() as u64,
                });
            } else {
                print_attribution_section(path, &attr, top);
            }
        } else if path.ends_with(".timeline.json") {
            let tl = read_timeline(path)?;
            if json {
                digest.timelines.push(DigestTimelineCell {
                    id: stem(path),
                    window: tl.window,
                    windows: tl.windows.len() as u64,
                    dropped_windows: tl.dropped_windows,
                    phases: tl.phases.len() as u64,
                });
            } else {
                print_timeline_section(path, &tl);
            }
        } else {
            let snap = read_metrics(path)?;
            if json {
                digest.metrics.push(digest_metrics(path, &snap)?);
            } else {
                print_metrics_section(path, &snap)?;
                coverage_rows.push((stem(path), derive(path, &snap)?));
            }
        }
    }
    if json {
        println!(
            "{}",
            twig_serde_json::to_string_pretty(&digest)
                .map_err(|e| CliError::decode("stdout", e))?
        );
        return Ok(());
    }
    if coverage_rows.len() > 1 {
        println!();
        println!("== coverage by configuration ==");
        println!("  {:<24} {:>8} {:>10} {:>10}", "cell", "IPC", "BTB MPKI", "coverage");
        for (name, d) in &coverage_rows {
            println!(
                "  {:<24} {:>8.4} {:>10.2} {:>9.1}%",
                name,
                d.ipc,
                d.btb_mpki,
                d.coverage * 100.0
            );
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// twig metrics regress
// ---------------------------------------------------------------------------

/// Outcome of one metric comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Within the threshold of the baseline.
    Ok,
    /// Moved past the threshold in the good direction.
    Improved,
    /// Moved past the threshold in the bad direction.
    Regressed,
}

impl Verdict {
    fn as_str(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
        }
    }
}

struct MetricSpec {
    name: &'static str,
    /// Relative change tolerated before a verdict flips (e.g. 0.02 = 2%).
    threshold: f64,
    higher_is_better: bool,
    read: fn(&Derived) -> f64,
}

/// The sentinel's metric set. Thresholds are relative; the simulator is
/// bit-deterministic, so a clean rerun of the pinned command reproduces
/// the baselines exactly and any nonzero delta reflects a real change.
const METRICS: [MetricSpec; 4] = [
    MetricSpec { name: "ipc", threshold: 0.005, higher_is_better: true, read: |d| d.ipc },
    MetricSpec { name: "cycles", threshold: 0.005, higher_is_better: false, read: |d| d.cycles as f64 },
    MetricSpec { name: "btb_mpki", threshold: 0.02, higher_is_better: false, read: |d| d.btb_mpki },
    MetricSpec { name: "coverage", threshold: 0.02, higher_is_better: true, read: |d| d.coverage },
];

fn judge(spec: &MetricSpec, base: f64, current: f64) -> (f64, Verdict) {
    let delta = if base == 0.0 {
        if current == 0.0 { 0.0 } else { f64::INFINITY * (current - base).signum() }
    } else {
        (current - base) / base
    };
    let verdict = if delta.abs() <= spec.threshold {
        Verdict::Ok
    } else if (delta > 0.0) == spec.higher_is_better {
        Verdict::Improved
    } else {
        Verdict::Regressed
    };
    (delta, verdict)
}

/// Metrics-snapshot stems (`<app>_<slot>`) in a directory, sorted.
/// Attribution/trace exports and non-JSON files are skipped.
fn snapshot_stems(dir: &str) -> Result<Vec<String>, CliError> {
    let entries = std::fs::read_dir(dir).map_err(|e| CliError::io("read", dir, e))?;
    let mut stems = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CliError::io("read", dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json")
            && !name.ends_with(".attr.json")
            && !name.ends_with(".trace.json")
            && !name.ends_with(".timeline.json")
        {
            stems.push(name.trim_end_matches(".json").to_string());
        }
    }
    stems.sort();
    Ok(stems)
}

/// One cell's derived figures in the trajectory series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrajectoryCell {
    /// Cell stem, e.g. `kafka_twig`.
    pub id: String,
    /// Derived IPC.
    pub ipc: f64,
    /// Derived BTB MPKI.
    pub btb_mpki: f64,
    /// Derived miss coverage.
    pub coverage: f64,
    /// Simulated cycles.
    pub cycles: u64,
}

/// One sentinel run in the trajectory series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrajectoryRun {
    /// 1-based run index (append order; the file keeps no wall-clock).
    pub run: u64,
    /// Whether this run regressed against its baseline.
    pub regressed: bool,
    /// Per-cell derived figures, sorted by id.
    pub cells: Vec<TrajectoryCell>,
}

/// The `BENCH_trajectory.json` document: run-over-run derived series.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trajectory {
    /// Schema version.
    pub version: u32,
    /// Runs in append order.
    pub runs: Vec<TrajectoryRun>,
}

fn append_trajectory(
    path: &str,
    cells: Vec<TrajectoryCell>,
    regressed: bool,
) -> Result<(), CliError> {
    // Journaled read-modify-write: opening heals whatever a kill during a
    // previous append left behind (rolls a complete journal forward,
    // discards a torn one), so this read always sees exactly the pre- or
    // post-append document of that run — never a mix.
    let (file, healed) = twig_sched::Journaled::open(std::path::Path::new(path))
        .map_err(|e| CliError::io("recover", path, e))?;
    for h in &healed {
        eprintln!("recovered crash residue: {h}");
    }
    let mut trajectory = match file.read().map_err(|e| CliError::io("read", path, e))? {
        Some(bytes) => {
            let text =
                String::from_utf8(bytes).map_err(|e| CliError::decode(path, e))?;
            twig_serde_json::from_str::<Trajectory>(&text)
                .map_err(|e| CliError::decode(path, e))?
        }
        None => Trajectory {
            version: TRAJECTORY_VERSION,
            runs: Vec::new(),
        },
    };
    trajectory.runs.push(TrajectoryRun {
        run: trajectory.runs.len() as u64 + 1,
        regressed,
        cells,
    });
    let json = twig_serde_json::to_string_pretty(&trajectory)
        .map_err(|e| CliError::decode(path, e))?;
    file.write(json.as_bytes(), Some("traj-journal"), Some("traj-published"))
        .map_err(|e| CliError::io("write", path, e))?;
    eprintln!("appended run {} to {path}", trajectory.runs.len());
    Ok(())
}

/// `twig metrics regress --baseline DIR CURRENT_DIR [--trajectory FILE]`
/// — compare fresh snapshots against checked-in baselines.
///
/// Every `<stem>.json` in the baseline directory must exist in the
/// current directory (a missing cell is itself a failure). Each cell is
/// judged on the derived metric set with per-metric relative thresholds;
/// any `REGRESSED` verdict makes the command exit 1.
pub fn cmd_regress(args: &[String]) -> Result<(), CliError> {
    let mut baseline_dir: Option<&String> = None;
    let mut trajectory_path: Option<&String> = None;
    let mut current_dir: Option<&String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline_dir =
                    Some(it.next().ok_or_else(|| {
                        CliError::Usage("--baseline needs a directory".into())
                    })?);
            }
            "--trajectory" => {
                trajectory_path =
                    Some(it.next().ok_or_else(|| {
                        CliError::Usage("--trajectory needs a path".into())
                    })?);
            }
            other if other.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown regress flag {other:?}")));
            }
            _ if current_dir.is_none() => current_dir = Some(arg),
            _ => return Err(CliError::Usage("regress takes one current directory".into())),
        }
    }
    let usage =
        "usage: twig metrics regress --baseline DIR CURRENT_DIR [--trajectory FILE]";
    let baseline_dir = baseline_dir.ok_or_else(|| CliError::Usage(usage.into()))?;
    let current_dir = current_dir.ok_or_else(|| CliError::Usage(usage.into()))?;

    let stems = snapshot_stems(baseline_dir)?;
    if stems.is_empty() {
        return Err(CliError::Invalid(format!(
            "{baseline_dir}: no metrics snapshots to compare against"
        )));
    }

    let mut regressions = 0usize;
    let mut cells: Vec<TrajectoryCell> = Vec::new();
    println!(
        "{:<24} {:<10} {:>12} {:>12} {:>9}  verdict",
        "cell", "metric", "baseline", "current", "delta"
    );
    for cell in &stems {
        let base_path = format!("{baseline_dir}/{cell}.json");
        let cur_path = format!("{current_dir}/{cell}.json");
        if !std::path::Path::new(&cur_path).exists() {
            // A cell that vanished from the run is the worst regression
            // of all — count it and keep judging the rest.
            println!("{cell:<24} {:<10} {:>12} {:>12} {:>9}  REGRESSED (missing)", "-", "-", "-", "-");
            regressions += 1;
            continue;
        }
        let base = derive(&base_path, &read_metrics(&base_path)?)?;
        let current = derive(&cur_path, &read_metrics(&cur_path)?)?;
        for spec in &METRICS {
            let (delta, verdict) = judge(spec, (spec.read)(&base), (spec.read)(&current));
            if verdict == Verdict::Regressed {
                regressions += 1;
            }
            if verdict != Verdict::Ok || delta != 0.0 {
                println!(
                    "{:<24} {:<10} {:>12.4} {:>12.4} {:>+8.2}%  {}",
                    cell,
                    spec.name,
                    (spec.read)(&base),
                    (spec.read)(&current),
                    delta * 100.0,
                    verdict.as_str(),
                );
            }
        }
        cells.push(TrajectoryCell {
            id: cell.clone(),
            ipc: current.ipc,
            btb_mpki: current.btb_mpki,
            coverage: current.coverage,
            cycles: current.cycles,
        });
    }
    let verdict_line = if regressions > 0 {
        format!("{regressions} regressed metric(s) across {} baseline cell(s)", stems.len())
    } else {
        format!("all {} baseline cell(s) within thresholds", stems.len())
    };
    println!("{verdict_line}");
    if let Some(path) = trajectory_path {
        append_trajectory(path, cells, regressions > 0)?;
    }
    if regressions > 0 {
        Err(CliError::Differs(verdict_line))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stems_strip_export_suffixes() {
        assert_eq!(stem("m/kafka_twig.json"), "kafka_twig");
        assert_eq!(stem("m/kafka_twig.attr.json"), "kafka_twig");
        assert_eq!(stem("m/kafka_twig.timeline.json"), "kafka_twig");
        assert_eq!(stem("kafka_twig"), "kafka_twig");
    }

    #[test]
    fn sparklines_are_deterministic_and_scaled() {
        assert_eq!(sparkline(&[]), "");
        // min maps to the lowest ramp char, max to the highest.
        let s = sparkline(&[0, 50, 100]);
        assert_eq!(s.len(), 3);
        assert!(s.starts_with(' ') && s.ends_with('@'), "{s:?}");
        // A flat series renders mid-ramp, not a div-by-zero.
        let flat = sparkline(&[7, 7, 7, 7]);
        assert_eq!(flat.chars().collect::<std::collections::HashSet<_>>().len(), 1);
        // Long series bucket-average down to the fixed width.
        let long: Vec<u64> = (0..1000).collect();
        let s = sparkline(&long);
        assert_eq!(s.len(), SPARK_WIDTH);
        assert_eq!(s, sparkline(&long), "same input, same bytes");
        // Integer fixed-point renderers.
        assert_eq!(fmt_micros(1_234_567), "1.234");
        assert_eq!(fmt_milli(12_345), "12.345");
        assert_eq!(fmt_permille(987), "98.7%");
    }

    #[test]
    fn report_digest_validates_against_checked_in_schema() {
        let digest = ReportDigest {
            version: REPORT_DIGEST_VERSION,
            metrics: vec![DigestMetricsCell {
                id: "kafka_twig".into(),
                ipc_micros: 512_345,
                btb_mpki_milli: 12_500,
                coverage_permille: 640,
                cycles: 40_000,
                instructions: 20_000,
            }],
            attribution: vec![DigestAttrCell {
                id: "kafka_twig".into(),
                total_events: 100,
                sampled_events: 50,
                total_cycles: 4_000,
                sampled_cycles: 2_000,
                tracked_sites: 8,
            }],
            timelines: vec![DigestTimelineCell {
                id: "kafka_twig".into(),
                window: 10_000,
                windows: 6,
                dropped_windows: 0,
                phases: 2,
            }],
        };
        let json = twig_serde_json::to_string_pretty(&digest).unwrap();
        let doc: twig_serde::Value = twig_serde_json::from_str(&json).unwrap();
        let schema_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .unwrap()
            .join("docs/schema/report-v1.json");
        let schema: twig_serde::Value = twig_serde_json::from_str(
            &std::fs::read_to_string(schema_path).unwrap(),
        )
        .unwrap();
        twig_obs::validate(&doc, &schema).unwrap();
        // An empty digest (no inputs of a given kind) still validates.
        let empty = ReportDigest {
            version: REPORT_DIGEST_VERSION,
            metrics: Vec::new(),
            attribution: Vec::new(),
            timelines: Vec::new(),
        };
        let doc: twig_serde::Value =
            twig_serde_json::from_str(&twig_serde_json::to_string_pretty(&empty).unwrap())
                .unwrap();
        twig_obs::validate(&doc, &schema).unwrap();
    }

    #[test]
    fn verdicts_respect_direction_and_threshold() {
        let ipc = &METRICS[0]; // higher is better, 0.5%
        assert_eq!(judge(ipc, 1.0, 1.0).1, Verdict::Ok);
        assert_eq!(judge(ipc, 1.0, 1.004).1, Verdict::Ok);
        assert_eq!(judge(ipc, 1.0, 1.02).1, Verdict::Improved);
        assert_eq!(judge(ipc, 1.0, 0.98).1, Verdict::Regressed);
        let mpki = &METRICS[2]; // lower is better, 2%
        assert_eq!(judge(mpki, 10.0, 10.1).1, Verdict::Ok);
        assert_eq!(judge(mpki, 10.0, 10.5).1, Verdict::Regressed);
        assert_eq!(judge(mpki, 10.0, 9.0).1, Verdict::Improved);
        // Zero baselines never divide.
        assert_eq!(judge(mpki, 0.0, 0.0).1, Verdict::Ok);
        assert_eq!(judge(mpki, 0.0, 1.0).1, Verdict::Regressed);
        assert_eq!(judge(ipc, 0.0, 1.0).1, Verdict::Improved);
    }

    #[test]
    fn trajectory_round_trips_and_appends() {
        let dir = std::env::temp_dir().join(format!("twig-cli-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json").to_string_lossy().into_owned();
        let cell = TrajectoryCell {
            id: "kafka_twig".into(),
            ipc: 0.75,
            btb_mpki: 12.5,
            coverage: 0.6,
            cycles: 1000,
        };
        append_trajectory(&path, vec![cell.clone()], false).unwrap();
        append_trajectory(&path, vec![cell], true).unwrap();
        let parsed: Trajectory =
            twig_serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.version, TRAJECTORY_VERSION);
        assert_eq!(parsed.runs.len(), 2);
        assert_eq!(parsed.runs[0].run, 1);
        assert!(!parsed.runs[0].regressed);
        assert_eq!(parsed.runs[1].run, 2);
        assert!(parsed.runs[1].regressed);
        assert_eq!(parsed.runs[1].cells[0].id, "kafka_twig");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn demo_cell() -> TrajectoryCell {
        TrajectoryCell {
            id: "kafka_twig".into(),
            ipc: 0.75,
            btb_mpki: 12.5,
            coverage: 0.6,
            cycles: 1000,
        }
    }

    #[test]
    fn torn_trajectory_journal_is_discarded_and_append_proceeds() {
        let dir = std::env::temp_dir().join(format!("twig-cli-traj-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path_buf = dir.join("BENCH_trajectory.json");
        let path = path_buf.to_string_lossy().into_owned();
        append_trajectory(&path, vec![demo_cell()], false).unwrap();
        let committed = std::fs::read(&path_buf).unwrap();
        // A kill mid-journal-write leaves a torn frame; the next append
        // must discard it, keep the committed document, and append run 2.
        let frame = twig_sched::durable::encode_journal_frame(b"{\"garbage\": true}");
        std::fs::write(
            twig_sched::durable::journal_path(&path_buf),
            &frame[..frame.len() / 2],
        )
        .unwrap();
        append_trajectory(&path, vec![demo_cell()], true).unwrap();
        let parsed: Trajectory =
            twig_serde_json::from_str(&std::fs::read_to_string(&path_buf).unwrap()).unwrap();
        assert_eq!(parsed.runs.len(), 2);
        assert_eq!(parsed.runs[0].run, 1);
        assert!(!twig_sched::durable::journal_path(&path_buf).exists());
        // The torn journal never contaminated run 1's committed bytes.
        let reparsed: Trajectory =
            twig_serde_json::from_str(std::str::from_utf8(&committed).unwrap()).unwrap();
        assert_eq!(reparsed.runs.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn complete_trajectory_journal_rolls_forward_before_append() {
        let dir = std::env::temp_dir().join(format!("twig-cli-traj-fwd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path_buf = dir.join("BENCH_trajectory.json");
        let path = path_buf.to_string_lossy().into_owned();
        append_trajectory(&path, vec![demo_cell()], false).unwrap();
        // Simulate a kill between journal sync and publish of run 2: the
        // journal holds the full two-run document, the file only run 1.
        let two_runs = {
            let text = std::fs::read_to_string(&path_buf).unwrap();
            let mut t: Trajectory = twig_serde_json::from_str(&text).unwrap();
            t.runs.push(TrajectoryRun {
                run: 2,
                regressed: true,
                cells: vec![demo_cell()],
            });
            twig_serde_json::to_string_pretty(&t).unwrap()
        };
        std::fs::write(
            twig_sched::durable::journal_path(&path_buf),
            twig_sched::durable::encode_journal_frame(two_runs.as_bytes()),
        )
        .unwrap();
        // The next append heals forward to two runs, then appends run 3.
        append_trajectory(&path, vec![demo_cell()], false).unwrap();
        let parsed: Trajectory =
            twig_serde_json::from_str(&std::fs::read_to_string(&path_buf).unwrap()).unwrap();
        assert_eq!(parsed.runs.len(), 3);
        assert!(parsed.runs[1].regressed, "rolled-forward run 2 kept");
        assert_eq!(parsed.runs[2].run, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
