//! Subcommand implementations.

use twig::{TwigConfig, TwigOptimizer};
use twig_profile::LbrRecorder;
use twig_sim::{BtbSystem, PlainBtb, SimConfig, SimStats, Simulator};
use twig_workload::{
    AppId, InputConfig, Program, ProgramGenerator, Walker, WorkloadSpec,
};

use crate::error::CliError;
use crate::io::{read_json, read_profile, open_trace_source, write_json, write_profile, write_trace_file, Args};

const USAGE: &str = "\
twig — profile-guided BTB prefetching toolkit (MICRO'21 reproduction)

usage: twig <command> [flags]

commands:
  apps                                   list the nine built-in applications
  spec      --app NAME --out SPEC.json   export a workload spec for editing
  trace     --spec SPEC.json --out T.twgt|T.twgc [--input N] [--instructions N]
                                         record a control-flow trace (.twgc =
                                         columnar, streamed to disk unbuffered)
  profile   --spec SPEC.json --out P.json|P.twpf [--input N]
            [--instructions N] [--period N]
                                         collect an LBR-style BTB-miss profile
                                         (.twpf = compact binary format)
  analyze   --spec SPEC.json --profile P.json --out PLANS.json
                                         select prefetch injection sites
  simulate  --spec SPEC.json [--system NAME] [--plans PLANS.json]
            [--trace T.twgt|T.twgc] [--skip-events N] [--input N]
            [--instructions N] [--json]
            [--obs off|counters|trace[=N]] [--obs-attr off|on|k=N,sample=N]
            [--metrics-out M.json] [--trace-out T.json]
            [--attr-out A.attr.json] [--folded-out F.folded.txt]
                                         run the frontend simulator
  optimize  --spec SPEC.json [--train N] [--test N] [--instructions N] [--json]
                                         full profile->rewrite->evaluate flow
  report    [--top N] [--timeline] [--json]
            SNAPSHOT.json|PROFILE.attr.json|CELL.timeline.json ...
                                         per-cell frontend-bottleneck report
                                         (deterministic; sorted by cell);
                                         --timeline renders windowed exports
                                         as sparklines + phase tables and
                                         --json emits the schema-validated
                                         digest (docs/schema/report-v1.json)
  metrics   diff A.json B.json           semantic diff of two metrics exports
                                         (exit 1 when they differ)
  metrics   timeline diff A.json B.json  per-window semantic diff of two
                                         timeline exports (exit 1 on differ)
  metrics   validate DOC.json SCHEMA.json
                                         check an exported metrics/trace JSON
                                         against a schema
  metrics   regress --baseline DIR CURRENT_DIR [--trajectory FILE]
                                         judge fresh snapshots against
                                         checked-in baselines (exit 1 on any
                                         regression)
  fleet     run [--out DIR] [--tenants N] [--faults SPEC] [--state-dir DIR]
                                         run the continuous-PGO fleet service
                                         (TWIG_FLEET_*, TWIG_FAULT_SPEC) and
                                         write DIR/fleet_manifest.json
  fleet     report MANIFEST.json         per-tenant health/deploy/latency
                                         table from a fleet manifest
  bench     budget BENCH_RESULTS.json --budget BUDGET.json [--slack X]
                                         check per-figure wall-clock against
                                         a checked-in timing budget (exit 1
                                         when any figure overshoots
                                         budget x slack)

systems: twig (default; aliases plain/baseline, or ideal for a perfect
         BTB), shotgun, confluence, phantom, btbx, bulk, stream
         (legacy spellings btb-x, phantom-btb, two-level-bulk still work)

observability: --obs selects the recording tier for this run and
         --obs-attr the per-branch cycle attribution profiler (each beats
         its TWIG_OBS/TWIG_OBS_ATTR environment variable);
         --metrics-out/--trace-out/--attr-out/--folded-out write the
         snapshot, chrome://tracing, attribution, and folded-stack
         exports after the run
";

/// Dispatches a parsed command line.
pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return Ok(());
    };
    let rest = Args::new(&args[1..]);
    match command.as_str() {
        "apps" => cmd_apps(),
        "spec" => cmd_spec(&rest),
        "trace" => cmd_trace(&rest),
        "profile" => cmd_profile(&rest),
        "analyze" => cmd_analyze(&rest),
        "simulate" => cmd_simulate(&rest),
        "optimize" => cmd_optimize(&rest),
        "report" => crate::report::cmd_report(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "fleet" => crate::fleet::cmd_fleet(&args[1..]),
        "help" | "--help" | "-h" => {
            eprint!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}; try `twig help`"))),
    }
}

fn cmd_apps() -> Result<(), CliError> {
    println!("{:<16} {:>10} {:>12} {:>10}", "app", "functions", "footprint", "handlers");
    for app in AppId::ALL {
        let spec = WorkloadSpec::preset(app);
        println!(
            "{:<16} {:>10} {:>9.1} MB {:>10}",
            spec.name,
            spec.app_funcs + spec.lib_funcs,
            spec.estimated_footprint_bytes() as f64 / (1 << 20) as f64,
            spec.handlers
        );
    }
    Ok(())
}

fn load_spec(args: &Args<'_>) -> Result<WorkloadSpec, CliError> {
    let path = args.require("spec")?;
    let spec: WorkloadSpec = read_json(path)?;
    spec.validate().map_err(|e| CliError::Invalid(format!("invalid spec: {e}")))?;
    Ok(spec)
}

fn cmd_spec(args: &Args<'_>) -> Result<(), CliError> {
    let name = args.require("app")?;
    let app = AppId::ALL
        .iter()
        .copied()
        .find(|a| a.name() == name)
        .ok_or_else(|| CliError::Invalid(format!("unknown app {name:?}; see `twig apps`")))?;
    let out = args.require("out")?;
    write_json(out, &WorkloadSpec::preset(app))?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_trace(args: &Args<'_>) -> Result<(), CliError> {
    let spec = load_spec(args)?;
    let out = args.require("out")?;
    let input: u32 = args.parse_or("input", 0)?;
    let instructions: u64 = args.parse_or("instructions", 1_000_000)?;
    let program = ProgramGenerator::new(spec).generate();
    let count = if out.ends_with(".twgc") {
        // Columnar output streams the walk straight to disk, one chunk
        // at a time — arbitrarily long traces never materialize.
        let source = twig_workload::WalkerSource::new(
            std::sync::Arc::new(program),
            InputConfig::numbered(input),
            instructions,
        );
        twig_workload::write_columnar_file(std::path::Path::new(out), source)
            .map_err(|e| CliError::io("write", out, e))?
    } else {
        let events =
            Walker::new(&program, InputConfig::numbered(input)).run_instructions(instructions);
        write_trace_file(out, &events)?;
        events.len() as u64
    };
    eprintln!("wrote {out}: {count} events ({instructions} instructions)");
    Ok(())
}

fn cmd_profile(args: &Args<'_>) -> Result<(), CliError> {
    let spec = load_spec(args)?;
    let out = args.require("out")?;
    let input: u32 = args.parse_or("input", 0)?;
    let instructions: u64 = args.parse_or("instructions", 1_000_000)?;
    let period: u32 = args.parse_or("period", 1)?;
    let program = ProgramGenerator::new(spec.clone()).generate();
    let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let events =
        Walker::new(&program, InputConfig::numbered(input)).run_instructions(instructions);
    let mut recorder = LbrRecorder::new(&program, period);
    recorder.observe_events(&program, events.iter().copied());
    let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
    sim.run_observed(events, instructions, &mut recorder);
    let profile = recorder.into_profile();
    eprintln!(
        "{} miss samples over {} distinct branches",
        profile.num_samples(),
        profile.miss_histogram().len()
    );
    write_profile(out, &profile)?;
    eprintln!("wrote {out}");
    Ok(())
}

fn cmd_analyze(args: &Args<'_>) -> Result<(), CliError> {
    let spec = load_spec(args)?;
    let profile: twig_profile::Profile = read_profile(args.require("profile")?)?;
    let out = args.require("out")?;
    let program = ProgramGenerator::new(spec).generate();
    let optimizer = TwigOptimizer::new(twig_config(args)?);
    let plans = optimizer.analyze_for(&profile, &program);
    let covered: u64 = plans.iter().map(|p| p.covered_samples()).sum();
    eprintln!(
        "{} plans covering {covered} of {} samples",
        plans.len(),
        profile.num_samples()
    );
    write_json(out, &plans)?;
    eprintln!("wrote {out}");
    Ok(())
}

fn twig_config(args: &Args<'_>) -> Result<TwigConfig, CliError> {
    let mut config = TwigConfig::default();
    config.prefetch_distance = args.parse_or("prefetch-distance", config.prefetch_distance)?;
    config.coalesce_bitmask_bits =
        args.parse_or("bitmask-bits", config.coalesce_bitmask_bits)?;
    if args.has("no-coalesce") {
        config.enable_coalescing = false;
    }
    config.validate().map_err(CliError::Invalid)?;
    Ok(config)
}

fn build_system(name: &str, config: &SimConfig) -> Result<Box<dyn BtbSystem>, CliError> {
    twig_prefetchers::by_name(name, config).map_err(|e| CliError::Invalid(e.to_string()))
}

fn print_stats(stats: &SimStats, json: bool) -> Result<(), CliError> {
    if json {
        println!(
            "{}",
            twig_serde_json::to_string_pretty(stats).map_err(|e| CliError::decode("stdout", e))?
        );
    } else {
        println!("IPC               {:.4}", stats.ipc());
        println!("cycles            {}", stats.cycles);
        println!("instructions      {}", stats.retired_instructions);
        println!("prefetch ops      {}", stats.retired_prefetch_ops);
        println!("BTB MPKI          {:.2}", stats.btb_mpki());
        println!("BTB misses        {}", stats.total_btb_misses());
        println!("covered misses    {}", stats.total_covered_misses());
        println!("decode resteers   {}", stats.decode_resteers);
        println!("exec resteers     {}", stats.exec_resteers);
        println!(
            "frontend-bound    {:.1}%",
            stats.topdown.frontend_fraction() * 100.0
        );
        println!(
            "prefetch accuracy {:.1}%",
            stats.prefetch_accuracy() * 100.0
        );
    }
    Ok(())
}

/// Applies `--plans` to a fresh program copy, if given.
fn maybe_rewrite(
    args: &Args<'_>,
    generator: &ProgramGenerator,
) -> Result<Program, CliError> {
    match args.flag("plans") {
        None => Ok(generator.generate()),
        Some(path) => {
            let plans: Vec<twig::MissPlan> = read_json(path)?;
            let optimizer = TwigOptimizer::new(twig_config(args)?);
            Ok(optimizer.rewrite(generator, &plans).program)
        }
    }
}

fn cmd_simulate(args: &Args<'_>) -> Result<(), CliError> {
    let spec = load_spec(args)?;
    let system_name = args.flag("system").unwrap_or("plain");
    let input: u32 = args.parse_or("input", 0)?;
    let instructions: u64 = args.parse_or("instructions", 1_000_000)?;
    let generator = ProgramGenerator::new(spec.clone());
    let program = maybe_rewrite(args, &generator)?;
    let mut config = SimConfig::paper_baseline(spec.backend_extra_cpki);
    if system_name == "ideal" {
        config.ideal_btb = true;
    }
    // Explicit --obs/--obs-attr beat their TWIG_OBS*/environment
    // variables (which paper_baseline already folded into config.obs via
    // the default).
    if let Some(text) = args.flag("obs") {
        let level = twig_obs::ObsLevel::parse(text)
            .map_err(|e| CliError::Usage(format!("--obs: {e}")))?;
        config.obs = twig_obs::ObsConfig {
            level,
            ..config.obs
        };
    }
    if let Some(text) = args.flag("obs-attr") {
        let attr = twig_obs::AttrConfig::parse(text)
            .map_err(|e| CliError::Usage(format!("--obs-attr: {e}")))?;
        config.obs = config.obs.with_attr(attr);
    }
    let system = build_system(system_name, &config)?;
    let mut sim = Simulator::new(&program, config, system);
    let skip: u64 = args.parse_or("skip-events", 0)?;
    let stats = match args.flag("trace") {
        Some(path) => {
            // `.twgc` traces stream via the mmap'd chunked reader; the
            // chunk directory makes `--skip-events` a macro-block leap
            // over whole chunks instead of a decode-and-discard loop.
            use twig_workload::EventSource;
            let mut source = open_trace_source(path)?;
            if skip > 0 {
                source.skip_events(skip);
            }
            sim.run(source, instructions)
        }
        None => {
            if skip > 0 {
                return Err(CliError::Usage(
                    "--skip-events needs --trace (live walks have no index to skip by)".into(),
                ));
            }
            sim.run(
                Walker::new(&program, InputConfig::numbered(input)),
                instructions,
            )
        }
    };
    if let Some(path) = args.flag("metrics-out") {
        let snapshot = sim.metrics_snapshot().ok_or_else(|| {
            CliError::Invalid(
                "--metrics-out needs a recording tier; pass --obs counters (or trace)".into(),
            )
        })?;
        let json = snapshot.to_json().map_err(|e| CliError::decode(path, e))?;
        crate::io::write_text(path, &json)?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.flag("trace-out") {
        let chrome = sim
            .chrome_trace()
            .map_err(|e| CliError::decode(path, e))?
            .ok_or_else(|| {
                CliError::Invalid("--trace-out needs the trace tier; pass --obs trace[=N]".into())
            })?;
        crate::io::write_text(path, &chrome)?;
        eprintln!("wrote {path}");
    }
    let attr_label = format!("{}/{}", spec.name, system_name);
    if let Some(path) = args.flag("attr-out") {
        let attr = sim.attribution_snapshot().ok_or_else(|| {
            CliError::Invalid("--attr-out needs attribution; pass --obs-attr on".into())
        })?;
        let json = attr.to_json().map_err(|e| CliError::decode(path, e))?;
        crate::io::write_text(path, &json)?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.flag("folded-out") {
        let folded = sim.attribution_folded(&attr_label).ok_or_else(|| {
            CliError::Invalid("--folded-out needs attribution; pass --obs-attr on".into())
        })?;
        crate::io::write_text(path, &folded)?;
        eprintln!("wrote {path}");
    }
    print_stats(&stats, args.has("json"))
}

fn read_snapshot(path: &str) -> Result<twig_obs::MetricsSnapshot, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    twig_obs::MetricsSnapshot::from_json(&text).map_err(|e| CliError::decode(path, e))
}

fn read_timeline_snapshot(path: &str) -> Result<twig_obs::TimelineSnapshot, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    twig_obs::TimelineSnapshot::from_json(&text).map_err(|e| CliError::decode(path, e))
}

fn cmd_metrics(args: &[String]) -> Result<(), CliError> {
    let usage = || {
        CliError::Usage(
            "usage: twig metrics diff A.json B.json | twig metrics timeline diff \
             A.json B.json | twig metrics validate DOC.json SCHEMA.json | \
             twig metrics regress --baseline DIR CURRENT_DIR"
                .into(),
        )
    };
    let sub = args.first().ok_or_else(usage)?;
    match sub.as_str() {
        "timeline" => {
            // Same exit-1-on-differs contract as `metrics diff`, per
            // window and per track instead of per counter.
            if args.get(1).map(String::as_str) != Some("diff") {
                return Err(usage());
            }
            let [a, b] = [args.get(2).ok_or_else(usage)?, args.get(3).ok_or_else(usage)?];
            let before = read_timeline_snapshot(a)?;
            let after = read_timeline_snapshot(b)?;
            let diff = twig_obs::diff_timelines(&before, &after);
            print!("{diff}");
            if diff.is_empty() {
                Ok(())
            } else {
                Err(CliError::Differs(format!(
                    "{} window value(s) differ",
                    diff.values.len()
                )))
            }
        }
        "diff" => {
            let [a, b] = [args.get(1).ok_or_else(usage)?, args.get(2).ok_or_else(usage)?];
            let before = read_snapshot(a)?;
            let after = read_snapshot(b)?;
            let diff = twig_obs::diff_snapshots(&before, &after);
            print!("{diff}");
            if diff.is_empty() {
                Ok(())
            } else {
                Err(CliError::Differs(format!(
                    "{} counter(s) and {} histogram(s) differ",
                    diff.counters.len(),
                    diff.histograms.len()
                )))
            }
        }
        "validate" => {
            let doc_path = args.get(1).ok_or_else(usage)?;
            let schema_path = args.get(2).ok_or_else(usage)?;
            let doc: twig_serde::Value = read_json(doc_path)?;
            let schema: twig_serde::Value = read_json(schema_path)?;
            twig_obs::validate(&doc, &schema).map_err(|e| {
                CliError::Invalid(format!("{doc_path} does not match {schema_path}: {e}"))
            })?;
            eprintln!("{doc_path}: valid against {schema_path}");
            Ok(())
        }
        "regress" => crate::report::cmd_regress(&args[1..]),
        other => Err(CliError::Usage(format!(
            "unknown metrics subcommand {other:?}; expected diff | timeline diff | \
             validate | regress"
        ))),
    }
}

/// One object field by key.
fn field<'v>(value: &'v twig_serde::Value, key: &str) -> Option<&'v twig_serde::Value> {
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let usage = || {
        CliError::Usage(
            "usage: twig bench budget BENCH_RESULTS.json --budget BUDGET.json [--slack X]".into(),
        )
    };
    match args.first().map(String::as_str) {
        Some("budget") => {}
        _ => return Err(usage()),
    }
    let results_path = args.get(1).filter(|a| !a.starts_with("--")).ok_or_else(usage)?;
    let flags = Args::new(&args[2..]);
    let budget_path = flags.require("budget")?;

    let results: twig_serde::Value = read_json(results_path)?;
    let budget: twig_serde::Value = read_json(budget_path)?;
    let slack: f64 = match flags.flag("slack") {
        Some(text) => text
            .parse()
            .map_err(|_| CliError::Usage(format!("--slack {text:?} is not a number")))?,
        None => field(&budget, "slack").and_then(|v| v.as_f64()).unwrap_or(2.0),
    };
    if slack < 1.0 || slack.is_nan() {
        return Err(CliError::Invalid(format!("slack {slack} must be >= 1")));
    }

    // Measured seconds per figure, from the run under judgement.
    let mut measured: Vec<(&str, f64)> = Vec::new();
    for entry in field(&results, "figures")
        .and_then(|v| v.as_array())
        .ok_or_else(|| CliError::Invalid(format!("{results_path}: no figures[] array")))?
    {
        let id = field(entry, "id").and_then(|v| v.as_str());
        let seconds = field(entry, "seconds").and_then(|v| v.as_f64());
        if let (Some(id), Some(seconds)) = (id, seconds) {
            measured.push((id, seconds));
        }
    }

    let budgets = field(&budget, "figures")
        .and_then(|v| v.as_object())
        .ok_or_else(|| CliError::Invalid(format!("{budget_path}: no figures object")))?;
    let mut over = Vec::new();
    for (id, allowed) in budgets {
        let allowed = allowed.as_f64().ok_or_else(|| {
            CliError::Invalid(format!("{budget_path}: budget for {id} is not a number"))
        })?;
        let Some(&(_, seconds)) = measured.iter().find(|(m, _)| m == id) else {
            return Err(CliError::Invalid(format!(
                "{results_path} has no timing for budgeted figure {id}"
            )));
        };
        let limit = allowed * slack;
        let verdict = if seconds > limit { "OVER" } else { "ok" };
        println!("{id:<8} {seconds:>7.2}s  budget {allowed:>6.2}s x{slack} = {limit:>6.2}s  {verdict}");
        if seconds > limit {
            over.push(id.clone());
        }
    }
    if over.is_empty() {
        Ok(())
    } else {
        Err(CliError::Differs(format!(
            "{} figure(s) overshot the timing budget: {}",
            over.len(),
            over.join(", ")
        )))
    }
}

fn cmd_optimize(args: &Args<'_>) -> Result<(), CliError> {
    let spec = load_spec(args)?;
    let train: u32 = args.parse_or("train", 0)?;
    let test: u32 = args.parse_or("test", 1)?;
    let instructions: u64 = args.parse_or("instructions", 1_000_000)?;
    let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(twig_config(args)?);
    let report = optimizer
        .run_app(&spec, config, train, &[test], instructions)
        .remove(0);
    if args.has("json") {
        println!(
            "{}",
            twig_serde_json::to_string_pretty(&report).map_err(|e| CliError::decode("stdout", e))?
        );
    } else {
        println!("baseline IPC      {:.4}", report.baseline.ipc());
        println!("twig IPC          {:.4}", report.twig.ipc());
        println!("ideal-BTB IPC     {:.4}", report.ideal.ipc());
        println!("twig speedup      {:+.2}%", report.speedup_percent);
        println!("ideal speedup     {:+.2}%", report.ideal_speedup_percent);
        println!("% of ideal        {:.1}%", report.pct_of_ideal * 100.0);
        println!("miss coverage     {:.1}%", report.coverage * 100.0);
        println!("accuracy          {:.1}%", report.accuracy * 100.0);
        println!("dynamic overhead  {:.2}%", report.dynamic_overhead * 100.0);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_flags_and_switches() {
        let raw = strs(&["--spec", "a.json", "--json", "--input", "2"]);
        let args = Args::new(&raw);
        assert_eq!(args.flag("spec"), Some("a.json"));
        assert!(args.has("json"));
        assert_eq!(args.parse_or::<u32>("input", 0).unwrap(), 2);
        assert_eq!(args.parse_or::<u32>("missing", 7).unwrap(), 7);
        assert!(args.require("nope").is_err());
        assert!(args.parse_or::<u32>("spec", 0).is_err());
    }

    #[test]
    fn unknown_command_and_system_error() {
        assert!(dispatch(&strs(&["frobnicate"])).is_err());
        let config = SimConfig::default();
        let err = match build_system("nope", &config) {
            Err(e) => e,
            Ok(_) => panic!("expected an error for an unknown system"),
        };
        assert!(err.to_string().contains("shotgun"), "error lists options: {err}");
        for name in [
            // Canonical registry names.
            "twig",
            "shotgun",
            "confluence",
            "phantom",
            "btbx",
            "bulk",
            "stream",
            // Legacy CLI spellings stay accepted.
            "plain",
            "ideal",
            "btb-x",
            "phantom-btb",
            "two-level-bulk",
        ] {
            assert!(build_system(name, &config).is_ok(), "{name}");
        }
    }

    #[test]
    fn error_categories_map_to_distinct_exit_codes() {
        // Unknown command: usage (2).
        let e = dispatch(&strs(&["frobnicate"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        // Missing required flag: usage (2).
        let e = dispatch(&strs(&["trace"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        // Missing file: I/O (3).
        let e = dispatch(&strs(&["trace", "--spec", "/nonexistent/spec.json", "--out", "/tmp/x"]))
            .unwrap_err();
        assert_eq!(e.exit_code(), 3);
        // Corrupt artifact: decode (4).
        let dir = std::env::temp_dir().join(format!("twig-cli-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, b"{not json").unwrap();
        let e = dispatch(&strs(&[
            "trace",
            "--spec",
            &bad.to_string_lossy(),
            "--out",
            "/tmp/x",
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 4);
        // Semantically invalid: (5).
        let e = dispatch(&strs(&["spec", "--app", "not-an-app", "--out", "/tmp/x"])).unwrap_err();
        assert_eq!(e.exit_code(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_diff_and_validate_subcommands() {
        let dir = std::env::temp_dir().join(format!("twig-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let mut reg = twig_obs::MetricsRegistry::new();
        reg.set_by_name("btb.hits", 10);
        std::fs::write(p("a.json"), reg.snapshot().to_json().unwrap()).unwrap();
        std::fs::write(p("same.json"), reg.snapshot().to_json().unwrap()).unwrap();
        reg.set_by_name("btb.hits", 12);
        std::fs::write(p("b.json"), reg.snapshot().to_json().unwrap()).unwrap();

        // Identical snapshots: clean exit.
        dispatch(&strs(&["metrics", "diff", &p("a.json"), &p("same.json")])).unwrap();
        // Differing snapshots: exit code 1, like diff(1).
        let e = dispatch(&strs(&["metrics", "diff", &p("a.json"), &p("b.json")])).unwrap_err();
        assert_eq!(e.exit_code(), 1);

        // The export validates against a minimal schema; a wrong-shape
        // document does not.
        std::fs::write(
            p("schema.json"),
            r#"{"type": "object", "required": ["version", "counters"],
                "properties": {"version": {"type": "integer"},
                               "counters": {"type": "array"}}}"#,
        )
        .unwrap();
        dispatch(&strs(&["metrics", "validate", &p("a.json"), &p("schema.json")])).unwrap();
        std::fs::write(p("bad.json"), r#"{"version": "one"}"#).unwrap();
        let e = dispatch(&strs(&["metrics", "validate", &p("bad.json"), &p("schema.json")]))
            .unwrap_err();
        assert_eq!(e.exit_code(), 5);

        // Bad sub-usage is a usage error.
        let e = dispatch(&strs(&["metrics", "frobnicate"])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A small sim-track timeline with `n` windows, `step` instructions
    /// and `cycles_per` cycles apiece.
    fn demo_timeline(n: u64, step: u64, cycles_per: u64) -> twig_obs::TimelineSnapshot {
        use twig_obs::timeseries::track_names;
        let mut ring = twig_obs::timeseries::TimeSeriesRing::new(64);
        ring.track(track_names::CYCLES, twig_obs::TrackKind::Counter);
        ring.track(track_names::INSTRUCTIONS, twig_obs::TrackKind::Counter);
        for w in 1..=n {
            ring.push_window(w * step, w * cycles_per, &[w * cycles_per, w * step]);
        }
        ring.snapshot(step)
    }

    #[test]
    fn timeline_report_and_diff_subcommands() {
        let dir = std::env::temp_dir().join(format!("twig-cli-tl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let a = demo_timeline(6, 10_000, 20_000);
        let mut b = demo_timeline(6, 10_000, 20_000);
        b.windows[3].values[0] += 7; // one cycle-delta diverges
        std::fs::write(p("a.timeline.json"), a.to_json().unwrap()).unwrap();
        std::fs::write(p("same.timeline.json"), a.to_json().unwrap()).unwrap();
        std::fs::write(p("b.timeline.json"), b.to_json().unwrap()).unwrap();

        // Identical timelines: clean exit. Diverging ones: exit 1.
        dispatch(&strs(&[
            "metrics", "timeline", "diff",
            &p("a.timeline.json"), &p("same.timeline.json"),
        ]))
        .unwrap();
        let e = dispatch(&strs(&[
            "metrics", "timeline", "diff",
            &p("a.timeline.json"), &p("b.timeline.json"),
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);

        // Rendering a timeline needs the --timeline flag; with it (and
        // with --json) the report succeeds.
        let e = dispatch(&strs(&["report", &p("a.timeline.json")])).unwrap_err();
        assert_eq!(e.exit_code(), 2);
        dispatch(&strs(&["report", "--timeline", &p("a.timeline.json")])).unwrap();
        dispatch(&strs(&[
            "report", "--timeline", "--json",
            &p("a.timeline.json"), &p("b.timeline.json"),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Satellite: diff coverage for fleet manifests. The per-tenant
    /// generation series embedded in `fleet_manifest.json` is a timeline
    /// (window axis = generation), so `metrics timeline diff` is the
    /// cross-generation diff: a clean seeded run against a latency-spiked
    /// one must flag exactly the spiked generations' gauges, and two
    /// clean runs must diff empty.
    #[test]
    fn fleet_manifest_series_diff_flags_spiked_generations() {
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("twig-cli-fleetdiff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let tenants = twig_fleet::TenantSpec::demo_fleet(2);
        let config = twig_fleet::FleetConfig {
            instructions: 30_000,
            requests_per_generation: 64,
            ..twig_fleet::FleetConfig::demo()
        };
        let mut spiked_config = config.clone();
        spiked_config.faults = Arc::new(
            twig_sched::FaultSpec::parse("latency-spike:tenant=svc-bravo,gen=1").unwrap(),
        );
        let series_of = |manifest: &twig_fleet::FleetManifest, name: &str| {
            manifest
                .tenants
                .iter()
                .find(|t| t.name == name)
                .unwrap()
                .series
                .to_json()
                .unwrap()
        };
        let clean = twig_fleet::run_fleet(&tenants, &config).unwrap().manifest;
        let again = twig_fleet::run_fleet(&tenants, &config).unwrap().manifest;
        let spiked = twig_fleet::run_fleet(&tenants, &spiked_config).unwrap().manifest;
        std::fs::write(p("clean.json"), series_of(&clean, "svc-bravo")).unwrap();
        std::fs::write(p("again.json"), series_of(&again, "svc-bravo")).unwrap();
        std::fs::write(p("spiked.json"), series_of(&spiked, "svc-bravo")).unwrap();

        // Seeded reruns carry identical series: clean diff exit.
        dispatch(&strs(&["metrics", "timeline", "diff", &p("clean.json"), &p("again.json")]))
            .unwrap();
        // The spiked run differs, and only on the spiked generation's
        // latency/burn gauges (the deploy counter and IPC are untouched
        // by a latency spike).
        let e = dispatch(&strs(&[
            "metrics", "timeline", "diff", &p("clean.json"), &p("spiked.json"),
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
        let before = twig_obs::TimelineSnapshot::from_json(
            &std::fs::read_to_string(p("clean.json")).unwrap(),
        )
        .unwrap();
        let after = twig_obs::TimelineSnapshot::from_json(
            &std::fs::read_to_string(p("spiked.json")).unwrap(),
        )
        .unwrap();
        let diff = twig_obs::diff_timelines(&before, &after);
        assert!(!diff.values.is_empty());
        for v in &diff.values {
            assert_eq!(v.window, 1, "only generation 1 was spiked: {v:?}");
            assert!(
                v.track == "fleet.latency_p99" || v.track == "fleet.slo_burn_permille",
                "unexpected differing track: {v:?}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_budget_judges_figures_against_slacked_limits() {
        let dir = std::env::temp_dir().join(format!("twig-cli-budget-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        std::fs::write(
            p("bench.json"),
            r#"{"schema_version": 2, "total_seconds": 9.0,
                "figures": [{"id": "fig16", "seconds": 3.0},
                            {"id": "tab03", "seconds": 6.0}]}"#,
        )
        .unwrap();
        std::fs::write(
            p("budget.json"),
            r#"{"slack": 2.0, "figures": {"fig16": 2.0, "tab03": 4.0}}"#,
        )
        .unwrap();

        // Within budget x slack on both figures: clean exit.
        dispatch(&strs(&["bench", "budget", &p("bench.json"), "--budget", &p("budget.json")]))
            .unwrap();
        // Tightening the slack trips fig16 (3.0 > 2.0 x 1.25) with the
        // diff-style exit code.
        let e = dispatch(&strs(&[
            "bench", "budget", &p("bench.json"),
            "--budget", &p("budget.json"),
            "--slack", "1.25",
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_string().contains("fig16"), "{e}");
        // A budgeted figure missing from the run is an error, not a pass.
        std::fs::write(
            p("sparse.json"),
            r#"{"figures": [{"id": "fig16", "seconds": 3.0}]}"#,
        )
        .unwrap();
        let e = dispatch(&strs(&[
            "bench", "budget", &p("sparse.json"),
            "--budget", &p("budget.json"),
        ]))
        .unwrap_err();
        assert_eq!(e.exit_code(), 5);
        assert!(e.to_string().contains("tab03"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_file_pipeline_roundtrip() {
        let dir = std::env::temp_dir().join(format!("twig-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        // Export a spec, shrink it for test speed, and run the pipeline.
        let mut spec = WorkloadSpec::tiny_test();
        spec.app_funcs = 200;
        crate::io::write_json(&p("spec.json"), &spec).unwrap();

        dispatch(&strs(&[
            "trace",
            "--spec", &p("spec.json"),
            "--out", &p("t.twgt"),
            "--instructions", "20000",
        ]))
        .unwrap();
        dispatch(&strs(&[
            "profile",
            "--spec", &p("spec.json"),
            "--out", &p("p.twpf"),
            "--instructions", "20000",
        ]))
        .unwrap();
        dispatch(&strs(&[
            "analyze",
            "--spec", &p("spec.json"),
            "--profile", &p("p.twpf"),
            "--out", &p("plans.json"),
        ]))
        .unwrap();
        dispatch(&strs(&[
            "simulate",
            "--spec", &p("spec.json"),
            "--plans", &p("plans.json"),
            "--trace", &p("t.twgt"),
            "--instructions", "20000",
            "--json",
        ]))
        .unwrap();
        dispatch(&strs(&[
            "optimize",
            "--spec", &p("spec.json"),
            "--instructions", "20000",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn columnar_trace_roundtrip_matches_twgt() {
        let dir =
            std::env::temp_dir().join(format!("twig-cli-twgc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

        let mut spec = WorkloadSpec::tiny_test();
        spec.app_funcs = 200;
        crate::io::write_json(&p("spec.json"), &spec).unwrap();

        // Record the same walk in both formats.
        for out in ["t.twgt", "t.twgc"] {
            dispatch(&strs(&[
                "trace",
                "--spec", &p("spec.json"),
                "--out", &p(out),
                "--instructions", "20000",
            ]))
            .unwrap();
        }
        let mut row = crate::io::open_trace_source(&p("t.twgt")).unwrap();
        let mut col = crate::io::open_trace_source(&p("t.twgc")).unwrap();
        let row_events: Vec<_> = (&mut row).collect();
        let col_events: Vec<_> = (&mut col).collect();
        assert_eq!(row_events, col_events, "formats must carry identical events");
        assert!(!row_events.is_empty());

        // Simulating from the columnar trace must work end to end.
        dispatch(&strs(&[
            "simulate",
            "--spec", &p("spec.json"),
            "--trace", &p("t.twgc"),
            "--instructions", "20000",
            "--json",
        ]))
        .unwrap();
        // And the fast-forward flag leaps via the chunk directory.
        dispatch(&strs(&[
            "simulate",
            "--spec", &p("spec.json"),
            "--trace", &p("t.twgc"),
            "--skip-events", "100",
            "--instructions", "20000",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
