//! `twig fleet` — drive the continuous-PGO fleet service and report on
//! its manifest.
//!
//! `fleet run` executes the demo fleet under the typed harness
//! configuration (`TWIG_FLEET_*`, `TWIG_FAULT_SPEC`) and writes the
//! deterministic `fleet_manifest.json`; the (timing-dependent) service
//! counters go to stderr so the manifest stays byte-comparable.
//! `fleet report` renders a manifest as a per-tenant health table.

use std::sync::Arc;

use twig_fleet::{run_fleet, FleetConfig, FleetManifest, TenantSpec};
use twig_sched::FaultSpec;

use crate::error::CliError;
use crate::io::Args;

/// Dispatches `twig fleet <run|report> ...`.
pub fn cmd_fleet(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&Args::new(&args[1..])),
        Some("report") => cmd_report(&args[1..]),
        _ => Err(CliError::Usage(
            "usage: twig fleet run [--out DIR] [--tenants N] [--faults SPEC] \
             | twig fleet report MANIFEST.json"
                .into(),
        )),
    }
}

fn cmd_run(args: &Args<'_>) -> Result<(), CliError> {
    let out_dir = args.flag("out").unwrap_or("results");
    let tenants: usize = args.parse_or("tenants", 3)?;
    let mut config = FleetConfig::from_harness(twig_types::HarnessConfig::global());
    if let Some(spec) = args.flag("faults") {
        let parsed = FaultSpec::parse(spec)
            .map_err(|e| CliError::Invalid(format!("bad --faults spec: {e}")))?;
        config.faults = Arc::new(parsed);
    }
    if let Some(dir) = args.flag("state-dir") {
        config.state_dir = Some(dir.into());
    }

    // One fleet run per output directory; a killed run's lock is stolen,
    // a live one is a typed refusal (exit 6).
    let _run_lock = match twig_sched::RunLock::acquire(std::path::Path::new(out_dir)) {
        Ok(lock) => lock,
        Err(twig_sched::LockError::Held { path, pid }) => {
            return Err(CliError::Locked {
                path: path.display().to_string(),
                pid,
            });
        }
        Err(twig_sched::LockError::Io(e)) => return Err(CliError::io("lock", out_dir, e)),
    };
    // Heal crash residue a killed predecessor left in the output
    // directory before this run publishes over it.
    for healed in twig_sched::recover_dir(std::path::Path::new(out_dir)) {
        eprintln!("recovered crash residue: {healed}");
    }

    let outcome = run_fleet(&TenantSpec::demo_fleet(tenants), &config)
        .map_err(CliError::Invalid)?;

    let path = format!("{out_dir}/fleet_manifest.json");
    let json = outcome
        .manifest
        .to_json()
        .map_err(|e| CliError::Invalid(format!("serialize manifest: {e}")))?;
    twig_sched::publish_atomic(
        std::path::Path::new(&path),
        json.as_bytes(),
        Some("fleet-manifest-tmp"),
        Some("fleet-manifest-published"),
    )
    .map_err(|e| CliError::io("write", &path, e))?;

    let manifest = &outcome.manifest;
    println!(
        "fleet: {} tenant(s), {} generation(s), converged={}",
        manifest.tenants.len(),
        manifest.generations_run,
        manifest.converged
    );
    println!("manifest written to {path}");
    // Service counters are timing/worker-count dependent: stderr only,
    // never in the manifest.
    let stats = &outcome.service;
    eprintln!(
        "service: submitted={} completed={} failed={} backpressure_waits={}",
        stats.submitted, stats.completed, stats.failed, stats.backpressure_waits
    );
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(CliError::Usage("usage: twig fleet report MANIFEST.json".into()));
    };
    let text = std::fs::read_to_string(path).map_err(|e| CliError::io("read", path, e))?;
    let manifest = FleetManifest::from_json(&text).map_err(|e| CliError::Decode {
        path: path.to_string(),
        source: e.into(),
    })?;

    println!(
        "fleet manifest v{}: {} generation(s), converged={}",
        manifest.version, manifest.generations_run, manifest.converged
    );
    println!(
        "{:<12} {:<12} {:<16} {:>4} {:>8} {:>9} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "tenant", "health", "reason", "conv", "deploys", "rollbacks", "faults", "ipc",
        "lat_p50", "lat_p99", "lat_p999", "burn", "breach"
    );
    for t in &manifest.tenants {
        println!(
            "{:<12} {:<12} {:<16} {:>4} {:>8} {:>9} {:>7} {:>8.4} {:>8} {:>8} {:>8} {:>8} {:>6}",
            t.name,
            t.health,
            t.reason,
            if t.converged { "yes" } else { "no" },
            t.deploys,
            t.rollbacks,
            t.faults_seen,
            t.ipc_micros as f64 / 1e6,
            t.latency.p50,
            t.latency.p99,
            t.latency.p999,
            // Burn rate in permille of the SLO budget (>1000 = burning).
            t.slo_burn_permille,
            t.slo_breaches
        );
    }
    for t in &manifest.tenants {
        for tr in &t.transitions {
            println!(
                "  {:<12} g{:<3} {} -> {} ({})",
                t.name, tr.generation, tr.from, tr.to, tr.reason
            );
        }
    }
    Ok(())
}
