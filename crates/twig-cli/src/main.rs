//! `twig` — the command-line toolkit for the Twig reproduction.
//!
//! Mirrors how the real tool chain would be operated in production:
//! workloads, traces, profiles, and plans are files; each pipeline stage is
//! a subcommand. Run `twig help` for usage.
//!
//! Exit codes: 0 success, 2 usage error, 3 I/O failure, 4 undecodable
//! artifact, 5 semantically invalid input, 6 output directory locked by
//! another live run (see [`error::CliError`]).

mod commands;
mod error;
mod fleet;
mod io;
mod report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match commands::dispatch(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("twig: {e}");
            let mut source = std::error::Error::source(&e);
            while let Some(cause) = source {
                eprintln!("twig:   caused by: {cause}");
                source = cause.source();
            }
            e.exit_code()
        }
    };
    std::process::exit(code);
}
