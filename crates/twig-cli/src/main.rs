//! `twig` — the command-line toolkit for the Twig reproduction.
//!
//! Mirrors how the real tool chain would be operated in production:
//! workloads, traces, profiles, and plans are files; each pipeline stage is
//! a subcommand. Run `twig help` for usage.

mod commands;
mod io;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match commands::dispatch(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("twig: {e}");
            2
        }
    };
    std::process::exit(code);
}
