//! Microbenchmarks proving the hot-loop optimizations: monomorphized vs
//! `Box<dyn>`-erased `Simulator::run`, flat-storage BTB lookup/insert
//! under realistic miss traffic, batched (idle-skipping) vs per-cycle
//! stepping, and the cost of the simulation integrity and observability
//! tiers (`off` must be free; the richer tiers priced).

use twig_criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twig_rand::rngs::StdRng;
use twig_rand::{RngExt, SeedableRng};
use twig_sim::{
    Btb, BtbGeometry, BtbSystem, IntegrityConfig, ObsConfig, PlainBtb, SimConfig, Simulator,
};
use twig_types::{Addr, BranchKind};
use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};

const INSTRS: u64 = 100_000;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_dispatch");
    group.sample_size(10);
    let program = ProgramGenerator::new(WorkloadSpec::preset(twig_workload::AppId::Kafka))
        .generate();
    let events: Vec<_> =
        Walker::new(&program, InputConfig::numbered(0)).run_instructions(INSTRS);
    let config = SimConfig::default();
    group.throughput(Throughput::Elements(INSTRS));

    // Type-erased: the same system behind `Box<dyn BtbSystem>`, the path
    // existing callers keep using.
    group.bench_function("boxed_dyn", |b| {
        b.iter(|| {
            let system: Box<dyn BtbSystem> = Box::new(PlainBtb::new(&config));
            let mut sim = Simulator::new(&program, config, system);
            sim.run(events.iter().copied(), INSTRS).cycles
        });
    });
    // Monomorphized: the event loop sees the concrete `PlainBtb` type.
    group.bench_function("monomorphized", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
            sim.run(events.iter().copied(), INSTRS).cycles
        });
    });

    group.finish();
}

/// The seed's BTB storage layout (`Vec<Vec<_>>`, MRU via `remove` +
/// `insert(0)`), re-created verbatim — same entry payload, same evicted-PC
/// reconstruction — so the flat layout's effect is measured against the
/// real predecessor rather than asserted.
#[derive(Clone, Copy)]
struct NestedEntry {
    tag: u64,
    target: Addr,
    kind: BranchKind,
}

struct NestedBtb {
    sets: Vec<Vec<NestedEntry>>,
    ways: usize,
    set_mask: u64,
}

impl NestedBtb {
    fn new(entries: usize, ways: usize) -> Self {
        let sets = entries / ways;
        NestedBtb {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
            set_mask: sets as u64 - 1,
        }
    }

    fn set_and_tag(&self, pc: Addr) -> (usize, u64) {
        let key = pc.raw() >> 1;
        ((key & self.set_mask) as usize, key >> self.set_mask.count_ones())
    }

    fn lookup(&mut self, pc: Addr) -> Option<NestedEntry> {
        let (set, tag) = self.set_and_tag(pc);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|e| e.tag == tag)?;
        let entry = ways.remove(pos);
        ways.insert(0, entry);
        Some(entry)
    }

    fn insert(&mut self, pc: Addr, target: Addr, kind: BranchKind) -> Option<Addr> {
        let (set, tag) = self.set_and_tag(pc);
        let set_bits = self.set_mask.count_ones();
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|e| e.tag == tag) {
            let mut entry = ways.remove(pos);
            entry.target = target;
            entry.kind = kind;
            ways.insert(0, entry);
            return None;
        }
        ways.insert(0, NestedEntry { tag, target, kind });
        if ways.len() > self.ways {
            let victim = ways.pop().expect("overflow entry");
            let key = (victim.tag << set_bits) | set as u64;
            return Some(Addr::new(key << 1));
        }
        None
    }
}

fn bench_btb_flat_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("btb_storage");
    let mut rng = StdRng::seed_from_u64(29);
    let addrs: Vec<Addr> = (0..8192)
        .map(|_| Addr::new(0x40_0000 + rng.random_range(0..200_000u64) * 2))
        .collect();
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for &(entries, ways) in &[(8192usize, 4usize), (8192, 128)] {
        group.bench_with_input(
            BenchmarkId::new("flat", format!("{entries}x{ways}")),
            &(entries, ways),
            |b, &(entries, ways)| {
                let mut btb = Btb::new(BtbGeometry::new(entries, ways));
                b.iter(|| {
                    let mut hits = 0u32;
                    for &pc in &addrs {
                        match btb.lookup(pc) {
                            Some(_) => hits += 1,
                            None => {
                                btb.insert(pc, Addr::new(1), BranchKind::Conditional);
                            }
                        }
                    }
                    hits
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("nested_vec", format!("{entries}x{ways}")),
            &(entries, ways),
            |b, &(entries, ways)| {
                let mut btb = NestedBtb::new(entries, ways);
                b.iter(|| {
                    let mut hits = 0u32;
                    for &pc in &addrs {
                        match btb.lookup(pc) {
                            Some(_) => hits += 1,
                            None => {
                                btb.insert(pc, Addr::new(1), BranchKind::Conditional);
                            }
                        }
                    }
                    hits
                });
            },
        );
    }
    group.finish();
}

/// Before/after for the idle-cycle skipping rewrite: `per_cycle` steps
/// every simulated cycle (the seed's loop, `batch_stepping: false`);
/// `batched` consults the activity mask and leaps over quiescent spans
/// in closed form. The win scales with how backend-bound the workload
/// is — retire-limited stretches are exactly the cycles the mask proves
/// skippable — so both a frontend-bound app (Kafka) and a more
/// backend-bound one (Verilator) are priced.
///
/// Before timing anything, this bench asserts the soundness contract:
/// batching must produce bit-identical statistics to per-cycle stepping.
fn bench_idle_skipping(c: &mut Criterion) {
    let mut group = c.benchmark_group("idle_skipping");
    group.sample_size(10);
    group.throughput(Throughput::Elements(INSTRS));

    for app in [twig_workload::AppId::Kafka, twig_workload::AppId::Verilator] {
        let program = ProgramGenerator::new(WorkloadSpec::preset(app)).generate();
        let events: Vec<_> =
            Walker::new(&program, InputConfig::numbered(0)).run_instructions(INSTRS);
        let run = |batch: bool| {
            let config = SimConfig {
                batch_stepping: batch,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
            sim.run(events.iter().copied(), INSTRS)
        };

        assert_eq!(
            run(true),
            run(false),
            "batched stepping perturbed the simulation on {}",
            app.name(),
        );

        for (name, batch) in [("per_cycle", false), ("batched", true)] {
            group.bench_with_input(
                BenchmarkId::new(name, app.name()),
                &batch,
                |b, &batch| {
                    b.iter(|| run(batch).cycles);
                },
            );
        }
    }
    group.finish();
}

/// Prices the integrity tiers against each other on the same event
/// stream. The `off` tier leaves the hot loop paying one never-taken
/// branch per cycle, so its row should be indistinguishable from the
/// `monomorphized` dispatch row above; `sampled=64` buys continuous
/// invariant coverage for a bounded surcharge; `paranoid` is the
/// debugging tier and is expected to be several times slower.
///
/// Before timing anything, this bench asserts the zero-perturbation
/// contract: every tier must produce bit-identical statistics — checking
/// may cost time but must never change the simulation.
fn bench_integrity_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("integrity_overhead");
    group.sample_size(10);
    let program = ProgramGenerator::new(WorkloadSpec::preset(twig_workload::AppId::Kafka))
        .generate();
    let events: Vec<_> =
        Walker::new(&program, InputConfig::numbered(0)).run_instructions(INSTRS);
    group.throughput(Throughput::Elements(INSTRS));

    let tiers: [(&str, IntegrityConfig); 4] = [
        ("off", IntegrityConfig::off()),
        ("sampled64", IntegrityConfig::sampled(64)),
        ("sampled1024", IntegrityConfig::sampled(1024)),
        ("paranoid", IntegrityConfig::paranoid()),
    ];
    let run = |integrity: IntegrityConfig| {
        let config = SimConfig {
            integrity,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
        sim.run(events.iter().copied(), INSTRS)
    };

    let reference = run(IntegrityConfig::off());
    for &(name, integrity) in &tiers {
        assert_eq!(
            run(integrity),
            reference,
            "integrity tier {name} perturbed the simulation",
        );
    }

    for &(name, integrity) in &tiers {
        group.bench_function(name, |b| {
            b.iter(|| run(integrity).cycles);
        });
    }
    group.finish();
}

/// Prices the observability tiers on the same event stream. The `off`
/// tier leaves the hot loop paying one never-taken branch per cycle
/// (the `obs` state is `None`), so its row should be within noise of the
/// `monomorphized` dispatch row above; `counters` records through
/// preallocated integer handles; `trace`/`trace=64` add the sampled span
/// ring on top; `attr` adds the per-branch cycle attribution table
/// (bounded top-K, charged once per resteer) to the counters tier;
/// `window4096`/`window65536` price the windowed timeline alone (one
/// retired-instruction compare per retiring cycle, tier still `off`).
///
/// Before timing anything, this bench asserts the zero-perturbation
/// contract: every tier must produce bit-identical statistics —
/// recording may cost time but must never change the simulation.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    let program = ProgramGenerator::new(WorkloadSpec::preset(twig_workload::AppId::Kafka))
        .generate();
    let events: Vec<_> =
        Walker::new(&program, InputConfig::numbered(0)).run_instructions(INSTRS);
    group.throughput(Throughput::Elements(INSTRS));

    let tiers: [(&str, ObsConfig); 7] = [
        ("off", ObsConfig::off()),
        ("counters", ObsConfig::counters()),
        ("trace", ObsConfig::trace(1)),
        ("trace64", ObsConfig::trace(64)),
        (
            "attr",
            ObsConfig::counters().with_attr(twig_sim::AttrConfig::on()),
        ),
        ("window4096", ObsConfig::windowed(4096)),
        ("window65536", ObsConfig::windowed(65_536)),
    ];
    let run = |obs: ObsConfig| {
        let config = SimConfig {
            obs,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
        sim.run(events.iter().copied(), INSTRS)
    };

    let reference = run(ObsConfig::off());
    for &(name, obs) in &tiers {
        assert_eq!(
            run(obs),
            reference,
            "observability tier {name} perturbed the simulation",
        );
    }

    for &(name, obs) in &tiers {
        group.bench_function(name, |b| {
            b.iter(|| run(obs).cycles);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dispatch,
    bench_btb_flat_storage,
    bench_idle_skipping,
    bench_integrity_overhead,
    bench_obs_overhead
);
criterion_main!(benches);
