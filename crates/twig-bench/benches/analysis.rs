//! Microbenchmarks of Twig's offline machinery: profile collection,
//! injection-site analysis, coalesce-table construction, and rewriting.

use twig_criterion::{criterion_group, criterion_main, Criterion, Throughput};
use twig::{build_coalesce_plan, TwigConfig, TwigOptimizer};
use twig_types::BlockId;
use twig_workload::{InputConfig, ProgramGenerator, Span, WorkloadSpec};

fn midi_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "bench-midi".into(),
        seed: 0xBE7C_0001,
        app_funcs: 900,
        lib_funcs: 120,
        handlers: 24,
        handler_zipf: 0.4,
        blocks_per_func: Span::new(10, 30),
        call_levels: 3,
        loop_fraction: 0.01,
        ..WorkloadSpec::tiny_test()
    }
}

fn bench_profile_and_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("twig_offline");
    group.sample_size(10);
    let spec = midi_spec();
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();
    let sim = twig_sim::SimConfig::paper_baseline(spec.backend_extra_cpki);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    const INSTRS: u64 = 200_000;

    group.throughput(Throughput::Elements(INSTRS));
    group.bench_function("collect_profile_200k", |b| {
        b.iter(|| {
            optimizer
                .collect_profile(&program, sim, InputConfig::numbered(0), INSTRS)
                .num_samples()
        });
    });

    let profile = optimizer.collect_profile(&program, sim, InputConfig::numbered(0), INSTRS);
    group.throughput(Throughput::Elements(profile.num_samples() as u64));
    group.bench_function("analyze_profile", |b| {
        b.iter(|| optimizer.analyze_for(&profile, &program).len());
    });

    let plans = optimizer.analyze_for(&profile, &program);
    group.bench_function("rewrite", |b| {
        b.iter(|| {
            optimizer
                .rewrite(&generator, &plans)
                .rewrite
                .brprefetch_ops
        });
    });
    group.finish();
}

fn bench_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("coalesce");
    let program = ProgramGenerator::new(midi_spec()).generate();
    // Synthetic assignment set: 64 sites x 32 branches each.
    let assignments: Vec<(BlockId, Vec<BlockId>)> = (0..64u32)
        .map(|s| {
            let branches = (0..32u32)
                .map(|i| BlockId::new((s * 97 + i * 13) % program.num_blocks() as u32))
                .collect();
            (BlockId::new(s), branches)
        })
        .collect();
    group.throughput(Throughput::Elements(64 * 32));
    group.bench_function("build_plan_8bit", |b| {
        b.iter(|| build_coalesce_plan(&program, &assignments, 8).num_ops());
    });
    group.finish();
}

criterion_group!(benches, bench_profile_and_analysis, bench_coalesce);
criterion_main!(benches);
