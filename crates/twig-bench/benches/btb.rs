//! Microbenchmarks of the frontend structures: BTB lookup/insert, the
//! prefetch buffer, direction predictors, and the memory hierarchy.

use twig_criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twig_rand::rngs::StdRng;
use twig_rand::{RngExt, SeedableRng};
use twig_sim::{
    build_predictor, Btb, BtbGeometry, DirectionPredictorKind, MemoryHierarchy, PrefetchBuffer,
    SimConfig,
};
use twig_types::{Addr, BranchKind, CacheLineAddr};

fn addresses(n: usize, spread: u64) -> Vec<Addr> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|_| Addr::new(0x40_0000 + rng.random_range(0..spread) * 2))
        .collect()
}

fn bench_btb(c: &mut Criterion) {
    let mut group = c.benchmark_group("btb");
    for &(entries, ways) in &[(8192usize, 4usize), (32768, 4), (8192, 128)] {
        let addrs = addresses(4096, 100_000);
        group.throughput(Throughput::Elements(addrs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("lookup_insert", format!("{entries}x{ways}")),
            &(entries, ways),
            |b, &(entries, ways)| {
                let mut btb = Btb::new(BtbGeometry::new(entries, ways));
                b.iter(|| {
                    for &pc in &addrs {
                        if btb.lookup(pc).is_none() {
                            btb.insert(pc, Addr::new(1), BranchKind::Conditional);
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_prefetch_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetch_buffer");
    for &capacity in &[64usize, 256] {
        let addrs = addresses(2048, 10_000);
        group.throughput(Throughput::Elements(addrs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("insert_take", capacity),
            &capacity,
            |b, &capacity| {
                b.iter(|| {
                    let mut buf = PrefetchBuffer::new(capacity);
                    for (i, &pc) in addrs.iter().enumerate() {
                        buf.insert(pc, Addr::new(1), BranchKind::DirectJump, 0);
                        if i % 3 == 0 {
                            let _ = buf.take(addrs[i / 2], 10);
                        }
                    }
                    buf.stats()
                });
            },
        );
    }
    group.finish();
}

fn bench_direction(c: &mut Criterion) {
    let mut group = c.benchmark_group("direction");
    let mut rng = StdRng::seed_from_u64(11);
    let stream: Vec<(Addr, bool)> = (0..8192)
        .map(|_| {
            let pc = Addr::new(0x1000 + rng.random_range(0..2000u64) * 4);
            (pc, rng.random_bool(0.85))
        })
        .collect();
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (name, kind) in [
        ("gshare14", DirectionPredictorKind::Gshare { table_bits: 14 }),
        ("tage-lite", DirectionPredictorKind::TageLite),
        ("perceptron12", DirectionPredictorKind::Perceptron { table_bits: 12 }),
    ] {
        group.bench_function(name, |b| {
            let mut p = build_predictor(kind);
            b.iter(|| {
                let mut correct = 0u32;
                for &(pc, taken) in &stream {
                    correct += u32::from(p.predict(pc) == taken);
                    p.update(pc, taken);
                }
                correct
            });
        });
    }
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_hierarchy");
    let lines: Vec<CacheLineAddr> = (0..4096u64)
        .map(|i| CacheLineAddr::from_line_number(0x1_0000 + (i * 37) % 20_000))
        .collect();
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("demand_stream", |b| {
        b.iter(|| {
            let mut mem = MemoryHierarchy::new(&SimConfig::default());
            let mut cycle = 0;
            for &line in &lines {
                let r = mem.demand(line, cycle);
                cycle = r.ready_at;
            }
            cycle
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_btb,
    bench_prefetch_buffer,
    bench_direction,
    bench_memory
);
criterion_main!(benches);
