//! Microbenchmarks of the workload substrate: program generation, walking,
//! trace encode/decode, and full frontend simulation throughput.

use twig_criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use twig_sim::{PlainBtb, SimConfig, Simulator};
use twig_workload::{
    decode_trace, encode_trace, InputConfig, ProgramGenerator, Walker, WorkloadSpec,
};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    for (name, spec) in [
        ("tiny", WorkloadSpec::tiny_test()),
        ("kafka", WorkloadSpec::preset(twig_workload::AppId::Kafka)),
    ] {
        group.bench_with_input(BenchmarkId::new("generate", name), &spec, |b, spec| {
            b.iter(|| ProgramGenerator::new(spec.clone()).generate().num_blocks());
        });
    }
    group.finish();
}

fn bench_walker(c: &mut Criterion) {
    let mut group = c.benchmark_group("walker");
    let program = ProgramGenerator::new(WorkloadSpec::preset(twig_workload::AppId::Kafka))
        .generate();
    const INSTRS: u64 = 200_000;
    group.throughput(Throughput::Elements(INSTRS));
    group.bench_function("run_instructions", |b| {
        b.iter(|| {
            Walker::new(&program, InputConfig::numbered(0))
                .run_instructions(INSTRS)
                .len()
        });
    });
    group.finish();
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
    let events: Vec<_> = Walker::new(&program, InputConfig::numbered(0))
        .take(100_000)
        .collect();
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| encode_trace(&events).len());
    });
    let bytes = encode_trace(&events);
    group.bench_function("decode", |b| {
        b.iter(|| decode_trace(&bytes).expect("valid").len());
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let program = ProgramGenerator::new(WorkloadSpec::preset(twig_workload::AppId::Kafka))
        .generate();
    const INSTRS: u64 = 200_000;
    let events: Vec<_> =
        Walker::new(&program, InputConfig::numbered(0)).run_instructions(INSTRS);
    group.throughput(Throughput::Elements(INSTRS));
    group.bench_function("frontend_200k_instrs", |b| {
        let config = SimConfig::default();
        b.iter(|| {
            let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
            sim.run(events.iter().copied(), INSTRS).cycles
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_walker,
    bench_trace,
    bench_simulation
);
criterion_main!(benches);
