//! Checkpoint store: versioned, checksummed per-cell records under
//! `<results-dir>/.checkpoints/`.
//!
//! Each completed matrix cell (one `(app × system × budget)` simulation,
//! or one app's rewrite metadata) is persisted as soon as it finishes, so
//! a crashed or killed run resumes from completed cells instead of
//! recomputing the whole matrix. Records are written atomically (temp
//! file + rename) and every load re-verifies a CRC-32 over the key and
//! payload — a torn, truncated, or bit-flipped record is evicted and the
//! cell recomputed, never silently served.
//!
//! Record layout (little-endian):
//!
//! ```text
//! magic   "TWCK"        4 bytes
//! version u8            currently 1
//! keylen  u32           length of the cell key
//! key     keylen bytes  e.g. "sim-kafka-twig-i2000000"
//! paylen  u32           length of the payload
//! payload paylen bytes  JSON (integer-only fields => bit-exact round-trip)
//! crc     u32           CRC-32/ISO-HDLC over key + payload
//! ```
//!
//! Cold runs (no `--resume`) wipe the directory first, which both keeps
//! "clean run ≡ cold run" trivially true and invalidates records from
//! older code or different budgets.

use std::path::{Path, PathBuf};

/// On-disk record format version; bump on any layout or semantic change.
pub const CHECKPOINT_VERSION: u8 = 1;

const MAGIC: &[u8; 4] = b"TWCK";

/// CRC-32 (ISO-HDLC), shared with the durability layer's journal frames.
pub use twig_sched::durable::crc32;

/// Serializes one record.
fn encode_record(key: &str, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 4 + key.len() + 4 + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.push(CHECKPOINT_VERSION);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let mut sum_input = Vec::with_capacity(key.len() + payload.len());
    sum_input.extend_from_slice(key.as_bytes());
    sum_input.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&sum_input).to_le_bytes());
    out
}

/// Parses and verifies one record; the payload is returned only if the
/// magic, version, embedded key, lengths, and checksum all match.
fn decode_record(bytes: &[u8], expected_key: &str) -> Option<Vec<u8>> {
    let rest = bytes.strip_prefix(MAGIC)?;
    let (&version, rest) = rest.split_first()?;
    if version != CHECKPOINT_VERSION {
        return None;
    }
    if rest.len() < 4 {
        return None;
    }
    let (keylen_bytes, rest) = rest.split_at(4);
    let keylen = u32::from_le_bytes(keylen_bytes.try_into().ok()?) as usize;
    if rest.len() < keylen {
        return None;
    }
    let (key, rest) = rest.split_at(keylen);
    if key != expected_key.as_bytes() {
        return None;
    }
    if rest.len() < 4 {
        return None;
    }
    let (paylen_bytes, rest) = rest.split_at(4);
    let paylen = u32::from_le_bytes(paylen_bytes.try_into().ok()?) as usize;
    if rest.len() != paylen + 4 {
        return None;
    }
    let (payload, crc_bytes) = rest.split_at(paylen);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    let mut sum_input = Vec::with_capacity(key.len() + payload.len());
    sum_input.extend_from_slice(key);
    sum_input.extend_from_slice(payload);
    if crc32(&sum_input) != stored_crc {
        return None;
    }
    Some(payload.to_vec())
}

/// The per-run checkpoint directory, or a disabled stub (unit tests and
/// library consumers that did not opt in).
#[derive(Debug)]
pub struct CheckpointStore {
    dir: Option<PathBuf>,
}

impl CheckpointStore {
    /// Opens (and creates) `dir`. When `resume` is false the directory is
    /// wiped first, so only records written by this run can be loaded.
    pub fn open(dir: &Path, resume: bool) -> CheckpointStore {
        if !resume {
            // Remove stale records one by one (never the directory's other
            // content, in case the user pointed this at something odd).
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if path.extension().is_some_and(|e| e == "ckpt")
                        || name.ends_with(twig_sched::durable::TMP_SUFFIX)
                    {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "warning: cannot create checkpoint dir {}: {e}; checkpointing disabled",
                dir.display()
            );
            return CheckpointStore { dir: None };
        }
        CheckpointStore {
            dir: Some(dir.to_path_buf()),
        }
    }

    /// A store that never persists nor loads anything.
    pub fn disabled() -> CheckpointStore {
        CheckpointStore { dir: None }
    }

    /// Whether records are being persisted.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    fn path_for(&self, key: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let safe: String = key
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        Some(dir.join(format!("{safe}.ckpt")))
    }

    /// Loads and verifies the record for `key`. Corrupt or mismatched
    /// records are deleted (evicted) and reported as missing.
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        let path = self.path_for(key)?;
        let bytes = std::fs::read(&path).ok()?;
        match decode_record(&bytes, key) {
            Some(payload) => Some(payload),
            None => {
                eprintln!(
                    "warning: evicting corrupt checkpoint {} (bad checksum/version/key)",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Atomically persists `payload` for `key` (temp file + rename). A
    /// failure to persist is a warning, not an error: the run's results
    /// are unaffected, only a future resume loses this cell.
    pub fn store(&self, key: &str, payload: &[u8]) {
        self.store_with_faults(key, payload, twig_sched::fault::global());
    }

    /// [`Self::store`] with an explicit fault spec — the injection seam
    /// the crash-consistency tests drive directly. A matching `disk-full`
    /// clause (label `ckpt:<key>`) tears the record mid-payload before it
    /// reaches disk: the deterministic stand-in for `ENOSPC` or a crash
    /// between `write` and `fsync`. The CRC layer guarantees such a
    /// record is evicted on load, never parsed as truth.
    pub fn store_with_faults(&self, key: &str, payload: &[u8], faults: &twig_sched::FaultSpec) {
        let Some(path) = self.path_for(key) else {
            return;
        };
        let record = encode_record(key, payload);
        let record = match faults.apply_write_fault(&format!("ckpt:{key}"), &record) {
            Some(torn) => {
                eprintln!(
                    "warning: injected disk-full tore checkpoint {key} \
                     ({} of {} bytes written)",
                    torn.len(),
                    record.len()
                );
                torn
            }
            None => record,
        };
        let write = twig_sched::durable::publish_atomic(
            &path,
            &record,
            Some("ckpt-tmp"),
            Some("ckpt-published"),
        );
        if let Err(e) = write {
            eprintln!("warning: cannot persist checkpoint {}: {e}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "twig-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_store_and_load() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir, false);
        assert!(store.is_enabled());
        store.store("sim-kafka-twig-i1000", br#"{"cycles":42}"#);
        let loaded = store.load("sim-kafka-twig-i1000").expect("record exists");
        assert_eq!(loaded, br#"{"cycles":42}"#);
        assert_eq!(store.load("sim-kafka-ideal-i1000"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_are_detected_and_evicted() {
        let dir = temp_dir("bitflip");
        let store = CheckpointStore::open(&dir, false);
        store.store("cell", b"payload-bytes-here");
        let path = dir.join("cell.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit and every record byte in turn; a flip must
        // never yield a successful load of wrong data.
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x10;
            std::fs::write(&path, &mutated).unwrap();
            if let Some(payload) = store.load("cell") {
                assert_eq!(payload, b"payload-bytes-here", "flip at byte {i}");
            }
            // load() evicts on corruption; restore for the next iteration.
            std::fs::write(&path, &bytes).unwrap();
        }
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load("cell"), None, "truncated record rejected");
        assert!(!path.exists(), "corrupt record evicted from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_evicted_on_load_never_parsed() {
        let dir = temp_dir("torn");
        let store = CheckpointStore::open(&dir, false);
        let spec =
            twig_sched::FaultSpec::parse("disk-full:label=ckpt:victim,times=1").unwrap();
        // The injected tear truncates the record mid-payload; the write
        // itself "succeeds" (rename lands), exactly like ENOSPC after a
        // partial write or a crash before fsync.
        store.store_with_faults("victim", br#"{"cycles":42,"ipc":9000}"#, &spec);
        let path = dir.join("victim.ckpt");
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.len() < encode_record("victim", br#"{"cycles":42,"ipc":9000}"#).len());
        // Load must reject and evict — a torn record is never truth.
        assert_eq!(store.load("victim"), None);
        assert!(!path.exists(), "torn record must be evicted from disk");
        // The budget-exhausted retry persists cleanly and round-trips.
        store.store_with_faults("victim", br#"{"cycles":42,"ipc":9000}"#, &spec);
        assert_eq!(
            store.load("victim").expect("clean retry persists"),
            br#"{"cycles":42,"ipc":9000}"#
        );
        // Unmatched keys are never torn.
        store.store_with_faults("bystander", b"ok", &spec);
        assert_eq!(store.load("bystander").unwrap(), b"ok");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_open_wipes_previous_records() {
        let dir = temp_dir("wipe");
        let store = CheckpointStore::open(&dir, false);
        store.store("old-cell", b"stale");
        // Resume keeps records…
        let resumed = CheckpointStore::open(&dir, true);
        assert!(resumed.load("old-cell").is_some());
        // …a cold open drops them.
        let cold = CheckpointStore::open(&dir, false);
        assert_eq!(cold.load("old-cell"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = CheckpointStore::disabled();
        store.store("anything", b"x");
        assert_eq!(store.load("anything"), None);
        assert!(!store.is_enabled());
    }

    #[test]
    fn keys_with_path_hostile_characters_are_sanitized() {
        let dir = temp_dir("sanitize");
        let store = CheckpointStore::open(&dir, false);
        store.store("sim:kafka/twig ../..", b"v");
        assert_eq!(store.load("sim:kafka/twig ../..").unwrap(), b"v");
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            assert!(!name.contains('/') && !name.contains(':'), "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
