//! Minimal ASCII chart rendering for the regenerated figures.
//!
//! The paper's artifacts are bar charts and line plots; the harness prints
//! exact numbers in tables, and these helpers add a visual rendering so a
//! `results/*.txt` file reads like the figure it reproduces.

/// Renders a horizontal bar chart: one labelled bar per `(label, value)`.
///
/// Values may be negative (drawn to the left of the axis). Bars are scaled
/// to `width` characters for the largest magnitude.
///
/// # Examples
///
/// ```
/// use twig_bench::chart::bar_chart;
///
/// let out = bar_chart(&[("a".into(), 10.0), ("b".into(), -5.0)], 20, "%");
/// assert!(out.contains('█'));
/// assert!(out.lines().count() >= 2);
/// ```
pub fn bar_chart(rows: &[(String, f64)], width: usize, unit: &str) -> String {
    let max_mag = rows
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let chars = ((value.abs() / max_mag) * width as f64).round() as usize;
        let bar: String = std::iter::repeat_n('█', chars).collect();
        if *value < 0.0 {
            out.push_str(&format!(
                "{label:<label_width$} {bar:>width$}▏{value:>8.2}{unit}\n",
            ));
        } else {
            out.push_str(&format!(
                "{label:<label_width$} {empty:>width$}▕{bar} {value:.2}{unit}\n",
                empty = ""
            ));
        }
    }
    out
}

/// Renders grouped bars: for each row, one bar per series, prefixed with
/// the series name. A compact textual stand-in for the paper's grouped bar
/// figures.
pub fn grouped_bar_chart(
    series: &[&str],
    rows: &[(String, Vec<f64>)],
    width: usize,
    unit: &str,
) -> String {
    let mut flat = Vec::new();
    for (label, values) in rows {
        for (s, v) in series.iter().zip(values) {
            flat.push((format!("{label} · {s}"), *v));
        }
    }
    bar_chart(&flat, width, unit)
}

/// Renders a simple line plot of `(x, y)` points on a character grid.
///
/// X positions are spread evenly (categorical axis, like the paper's
/// parameter sweeps); Y is scaled to the value range.
///
/// # Examples
///
/// ```
/// use twig_bench::chart::line_plot;
///
/// let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)];
/// let out = line_plot(&pts, 30, 8);
/// assert!(out.contains('●'));
/// ```
pub fn line_plot(points: &[(f64, f64)], width: usize, height: usize) -> String {
    if points.is_empty() {
        return String::new();
    }
    let (y_min, y_max) = points.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
        (lo.min(y), hi.max(y))
    });
    let span = (y_max - y_min).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; width]; height];
    for (i, &(_, y)) in points.iter().enumerate() {
        let col = if points.len() == 1 {
            0
        } else {
            i * (width - 1) / (points.len() - 1)
        };
        let row = ((y - y_min) / span * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = '●';
    }
    let mut out = String::new();
    out.push_str(&format!("{y_max:>9.1} ┐\n"));
    for line in &grid {
        out.push_str("          │");
        out.extend(line.iter());
        out.push('\n');
    }
    out.push_str(&format!("{y_min:>9.1} ┴{}\n", "─".repeat(width)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_the_maximum() {
        let out = bar_chart(
            &[("big".into(), 100.0), ("half".into(), 50.0)],
            40,
            "",
        );
        let lines: Vec<&str> = out.lines().collect();
        let count = |s: &str| s.matches('█').count();
        assert_eq!(count(lines[0]), 40);
        assert_eq!(count(lines[1]), 20);
    }

    #[test]
    fn negative_bars_point_left() {
        let out = bar_chart(&[("neg".into(), -10.0), ("pos".into(), 10.0)], 10, "%");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains('▏'));
        assert!(lines[1].contains('▕'));
    }

    #[test]
    fn grouped_chart_has_one_bar_per_cell() {
        let out = grouped_bar_chart(
            &["twig", "shotgun"],
            &[("app1".into(), vec![5.0, 1.0]), ("app2".into(), vec![4.0, 2.0])],
            10,
            "%",
        );
        assert_eq!(out.lines().count(), 4);
        assert!(out.contains("app1 · twig"));
        assert!(out.contains("app2 · shotgun"));
    }

    #[test]
    fn line_plot_spans_the_range() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (i * i) as f64)).collect();
        let out = line_plot(&pts, 40, 10);
        assert_eq!(out.matches('●').count(), 10);
        assert!(out.contains("81.0"));
        assert!(out.contains("0.0"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert_eq!(line_plot(&[], 10, 5), "");
        let _ = line_plot(&[(0.0, 3.0)], 10, 5);
        let _ = bar_chart(&[("zero".into(), 0.0)], 10, "");
    }
}
