//! Shared experiment plumbing: per-app setup, parallel execution, and the
//! lazily computed headline result matrix reused by Figs. 16–22 and
//! Tables 2–3.
//!
//! Execution model: work is flattened into fine-grained tasks and run on
//! [`twig_sched::parallel_map`], which caps concurrency at the core count
//! (`TWIG_NUM_THREADS` / `RAYON_NUM_THREADS` override) instead of the
//! seed's one-unbounded-thread-per-app scope. Shared inputs (programs,
//! walker traces, profiles) come from the process-wide
//! [`crate::cache::ArtifactCache`], so each is generated exactly once no
//! matter how many figures or tasks consume it.

use std::sync::{Arc, OnceLock};

use twig::{TwigConfig, TwigOptimizer};
use twig_prefetchers::{Confluence, Shotgun};
use twig_sim::{
    speedup_percent, BtbSystem, PlainBtb, SimConfig, SimStats, Simulator,
};
use twig_workload::{
    AppId, BlockEvent, InputConfig, Program, ProgramGenerator, Walker, WorkingSet, WorkloadSpec,
};

use crate::cache;

/// Experiment context: instruction budget and output directory.
#[derive(Clone, Debug)]
pub struct ExpContext {
    /// Instructions simulated per run for the main results.
    pub instructions: u64,
    /// Instructions for parameter sweeps (many configurations).
    pub sweep_instructions: u64,
    /// Output directory for report files.
    pub results_dir: std::path::PathBuf,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            instructions: 2_000_000,
            sweep_instructions: 1_000_000,
            results_dir: "results".into(),
        }
    }
}

/// One application's prepared workload.
pub struct AppSetup {
    /// The application id (the cache key for shared artifacts).
    pub app: AppId,
    /// The workload spec.
    pub spec: WorkloadSpec,
    /// The generator (needed for re-layout during rewriting).
    pub generator: ProgramGenerator,
    /// The generated (original) binary.
    pub program: Program,
    /// The paper's Table 1 baseline config with this app's backend factor.
    pub sim_config: SimConfig,
}

impl AppSetup {
    /// Generates one application from scratch (uncached; prefer
    /// [`Self::shared`] in experiment code).
    pub fn new(app: AppId) -> Self {
        let spec = WorkloadSpec::preset(app);
        let generator = ProgramGenerator::new(spec.clone());
        let program = generator.generate();
        let sim_config = SimConfig::paper_baseline(spec.backend_extra_cpki);
        AppSetup {
            app,
            spec,
            generator,
            program,
            sim_config,
        }
    }

    /// The process-wide shared setup for `app` (generated at most once).
    pub fn shared(app: AppId) -> Arc<AppSetup> {
        cache::global().setup(app)
    }

    /// The walker's event stream for `input`, bounded by `instructions`,
    /// shared through the artifact cache.
    pub fn events(&self, input: u32, instructions: u64) -> Arc<[BlockEvent]> {
        cache::global().events(self.app, input, instructions)
    }

    /// Walks a fresh (uncached) event stream; test code uses this to check
    /// the cache returns bit-identical data.
    pub fn fresh_events(&self, input: u32, instructions: u64) -> Vec<BlockEvent> {
        Walker::new(&self.program, InputConfig::numbered(input)).run_instructions(instructions)
    }

    /// Runs one simulation with an arbitrary BTB system over given events.
    pub fn run_system(
        &self,
        system: Box<dyn BtbSystem>,
        config: SimConfig,
        events: &[BlockEvent],
        instructions: u64,
    ) -> SimStats {
        let mut sim = Simulator::new(&self.program, config, system);
        sim.run(events.iter().copied(), instructions)
    }
}

/// Runs `f` over all nine applications, preserving order. Scheduling goes
/// through [`twig_sched::parallel_map`]: bounded worker count, and nested
/// parallelism inside `f` degrades gracefully instead of deadlocking.
pub fn for_all_apps<T: Send>(f: impl Fn(AppId) -> T + Sync) -> Vec<(AppId, T)> {
    twig_sched::parallel_map(AppId::ALL.to_vec(), |app| (app, f(app)))
}

/// The per-application headline result matrix shared by Figs. 16–22 and
/// Tables 2–3: baseline / ideal / 32K BTB / Shotgun / Confluence / Twig
/// (trained on input #0, tested on input #1), plus rewrite metadata.
pub struct HeadlineRow {
    /// The application.
    pub app: AppId,
    /// FDIP baseline.
    pub baseline: SimStats,
    /// Ideal BTB.
    pub ideal: SimStats,
    /// 32K-entry BTB (4-way), no prefetching.
    pub btb32k: SimStats,
    /// Shotgun.
    pub shotgun: SimStats,
    /// Confluence.
    pub confluence: SimStats,
    /// Twig (full).
    pub twig: SimStats,
    /// Twig without coalescing (Fig. 18 ablation).
    pub twig_sw_only: SimStats,
    /// Rewrite outcome of the full Twig binary.
    pub rewrite: twig::RewriteOutcome,
    /// Rewrite outcome of the software-only binary.
    pub rewrite_sw_only: twig::RewriteOutcome,
    /// Instruction working set (test input) of the original binary, bytes.
    pub working_set_bytes: u64,
    /// Instruction working set of the Twig binary, bytes.
    pub working_set_bytes_twig: u64,
}

impl HeadlineRow {
    /// Twig speedup over baseline, percent.
    pub fn twig_speedup(&self) -> f64 {
        speedup_percent(&self.baseline, &self.twig)
    }

    /// Ideal-BTB speedup over baseline, percent.
    pub fn ideal_speedup(&self) -> f64 {
        speedup_percent(&self.baseline, &self.ideal)
    }

    /// Baseline-relative miss coverage of a system run.
    pub fn coverage(&self, system: &SimStats) -> f64 {
        twig::baseline_relative_coverage(&self.baseline, system)
    }
}

/// Everything per-app the headline simulations need, produced by the
/// parallel prepare phase.
struct PreparedApp {
    setup: Arc<AppSetup>,
    optimized: twig::OptimizedBinary,
    optimized_sw: twig::OptimizedBinary,
    events: Arc<[BlockEvent]>,
    working_set_bytes: u64,
    working_set_bytes_twig: u64,
}

fn prepare_app(app: AppId, budget: u64) -> PreparedApp {
    let setup = AppSetup::shared(app);
    let config = setup.sim_config;
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let sw_only = TwigOptimizer::new(TwigConfig::software_prefetch_only());

    // Profile on input #0, evaluate everything on input #1.
    let profile = cache::global().profile(app, 0, budget, &config);
    let plans = optimizer.analyze_for(&profile, &setup.program);
    let optimized = optimizer.rewrite(&setup.generator, &plans);
    let optimized_sw = sw_only.rewrite(&setup.generator, &plans);
    let events = setup.events(1, budget);

    // Working sets on the test input (Table 3).
    let mut ws = WorkingSet::new();
    let mut ws_twig = WorkingSet::new();
    for ev in events.iter() {
        ws.observe(&setup.program, ev);
        ws_twig.observe(&optimized.program, ev);
    }
    PreparedApp {
        working_set_bytes: ws.instruction_bytes(&setup.program),
        working_set_bytes_twig: ws_twig.instruction_bytes(&optimized.program),
        setup,
        optimized,
        optimized_sw,
        events,
    }
}

/// One cell of the headline matrix; each variant names the system whose
/// `SimStats` lands in the matching [`HeadlineRow`] field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SimSlot {
    Baseline,
    Ideal,
    Btb32k,
    Shotgun,
    Confluence,
    Twig,
    TwigSwOnly,
}

const SLOTS: [SimSlot; 7] = [
    SimSlot::Baseline,
    SimSlot::Ideal,
    SimSlot::Btb32k,
    SimSlot::Shotgun,
    SimSlot::Confluence,
    SimSlot::Twig,
    SimSlot::TwigSwOnly,
];

/// Runs one simulation with the concrete system type visible to the event
/// loop (monomorphized — no `Box<dyn>` indirection per branch).
fn run_mono<B: BtbSystem>(
    program: &Program,
    config: SimConfig,
    system: B,
    events: &[BlockEvent],
    budget: u64,
) -> SimStats {
    let mut sim = Simulator::new(program, config, system);
    sim.run(events.iter().copied(), budget)
}

fn run_slot(p: &PreparedApp, slot: SimSlot, budget: u64) -> SimStats {
    let config = p.setup.sim_config;
    let program = &p.setup.program;
    let events = &p.events;
    match slot {
        SimSlot::Baseline => run_mono(program, config, PlainBtb::new(&config), events, budget),
        SimSlot::Ideal => {
            let cfg = SimConfig {
                ideal_btb: true,
                ..config
            };
            run_mono(program, cfg, PlainBtb::new(&cfg), events, budget)
        }
        SimSlot::Btb32k => {
            let cfg = config.with_btb_entries(32 * 1024);
            run_mono(program, cfg, PlainBtb::new(&cfg), events, budget)
        }
        SimSlot::Shotgun => run_mono(program, config, Shotgun::new(&config), events, budget),
        SimSlot::Confluence => {
            run_mono(program, config, Confluence::new(&config), events, budget)
        }
        SimSlot::Twig => run_mono(
            &p.optimized.program,
            config,
            PlainBtb::new(&config),
            events,
            budget,
        ),
        SimSlot::TwigSwOnly => run_mono(
            &p.optimized_sw.program,
            config,
            PlainBtb::new(&config),
            events,
            budget,
        ),
    }
}

static HEADLINE: OnceLock<Vec<HeadlineRow>> = OnceLock::new();

/// Computes (once per process) the headline matrix at the context's budget.
///
/// Three phases, each a flat task list over the scheduler:
/// 1. per-app prepare (profile → analyze → rewrite ×2 → trace → working
///    sets) — 9 tasks;
/// 2. the full `(app × system)` simulation matrix — 63 independent tasks,
///    so a slow app no longer serializes the six other systems behind its
///    own; each task dispatches on the concrete BTB system type;
/// 3. serial assembly of the rows.
pub fn headline(ctx: &ExpContext) -> &'static [HeadlineRow] {
    HEADLINE.get_or_init(|| {
        let budget = ctx.instructions;
        let prepared = twig_sched::parallel_map(AppId::ALL.to_vec(), |app| {
            prepare_app(app, budget)
        });

        let tasks: Vec<(usize, SimSlot)> = (0..prepared.len())
            .flat_map(|i| SLOTS.iter().map(move |&slot| (i, slot)))
            .collect();
        let stats =
            twig_sched::parallel_map(tasks, |(i, slot)| run_slot(&prepared[i], slot, budget));
        let mut stats: Vec<Option<SimStats>> = stats.into_iter().map(Some).collect();

        prepared
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let mut take =
                    |slot: usize| stats[i * SLOTS.len() + slot].take().expect("slot filled");
                HeadlineRow {
                    app: p.setup.app,
                    baseline: take(0),
                    ideal: take(1),
                    btb32k: take(2),
                    shotgun: take(3),
                    confluence: take(4),
                    twig: take(5),
                    twig_sw_only: take(6),
                    rewrite: p.optimized.rewrite,
                    rewrite_sw_only: p.optimized_sw.rewrite,
                    working_set_bytes: p.working_set_bytes,
                    working_set_bytes_twig: p.working_set_bytes_twig,
                }
            })
            .collect()
    })
}

/// Formats a per-app table: header, one row per app, and a mean line
/// computed over the numeric columns.
pub fn table(header: &[&str], rows: &[(AppId, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16}", "app"));
    for h in header {
        out.push_str(&format!(" {h:>12}"));
    }
    out.push('\n');
    let n = header.len();
    let mut sums = vec![0.0; n];
    for (app, values) in rows {
        out.push_str(&format!("{:<16}", app.name()));
        for (i, v) in values.iter().enumerate() {
            out.push_str(&format!(" {v:>12.2}"));
            sums[i] += v;
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "MEAN"));
    for s in &sums {
        out.push_str(&format!(" {:>12.2}", s / rows.len().max(1) as f64));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_includes_mean_row() {
        let rows = vec![
            (AppId::Kafka, vec![10.0, 2.0]),
            (AppId::Tomcat, vec![20.0, 4.0]),
        ];
        let out = table(&["a", "b"], &rows);
        assert!(out.contains("kafka"));
        assert!(out.contains("tomcat"));
        let mean_line = out.lines().last().unwrap();
        assert!(mean_line.starts_with("MEAN"));
        assert!(mean_line.contains("15.00"));
        assert!(mean_line.contains("3.00"));
    }

    #[test]
    fn for_all_apps_preserves_order() {
        let results = for_all_apps(|app| app.name().len());
        let apps: Vec<AppId> = results.iter().map(|(a, _)| *a).collect();
        assert_eq!(apps, AppId::ALL.to_vec());
        for (app, len) in results {
            assert_eq!(len, app.name().len());
        }
    }

    #[test]
    fn app_setup_is_deterministic() {
        let a = AppSetup::new(AppId::Tomcat);
        let b = AppSetup::new(AppId::Tomcat);
        assert_eq!(a.program, b.program);
        let ea = a.fresh_events(2, 5_000);
        let eb = b.fresh_events(2, 5_000);
        assert_eq!(ea, eb);
    }

    #[test]
    fn cached_events_match_fresh_walk() {
        let setup = AppSetup::shared(AppId::Kafka);
        let cached = setup.events(3, 4_000);
        let fresh = setup.fresh_events(3, 4_000);
        assert_eq!(&cached[..], &fresh[..]);
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        // The flat (app × slot) scheduling must not perturb results: the
        // same simulation run serially is bit-identical (SimStats derives
        // PartialEq over every counter).
        let budget = 20_000;
        let apps = [AppId::Kafka, AppId::Tomcat, AppId::Cassandra];
        let slots = [SimSlot::Baseline, SimSlot::Ideal, SimSlot::Shotgun];
        let prepared: Vec<Arc<AppSetup>> =
            apps.iter().map(|&a| AppSetup::shared(a)).collect();
        let run = |app_idx: usize, slot: SimSlot| {
            let setup = &prepared[app_idx];
            let config = match slot {
                SimSlot::Ideal => SimConfig {
                    ideal_btb: true,
                    ..setup.sim_config
                },
                _ => setup.sim_config,
            };
            let events = setup.events(1, budget);
            match slot {
                SimSlot::Shotgun => {
                    run_mono(&setup.program, config, Shotgun::new(&config), &events, budget)
                }
                _ => run_mono(&setup.program, config, PlainBtb::new(&config), &events, budget),
            }
        };
        let tasks: Vec<(usize, SimSlot)> = (0..apps.len())
            .flat_map(|i| slots.iter().map(move |&s| (i, s)))
            .collect();
        let parallel = twig_sched::parallel_map(tasks.clone(), |(i, s)| run(i, s));
        let serial: Vec<SimStats> = tasks.iter().map(|&(i, s)| run(i, s)).collect();
        assert_eq!(parallel, serial);
    }
}
