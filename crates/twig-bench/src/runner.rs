//! Shared experiment plumbing: per-app setup, parallel execution, and the
//! lazily computed headline result matrix reused by Figs. 16–22 and
//! Tables 2–3.
//!
//! Execution model: work is flattened into fine-grained tasks and run on
//! [`twig_sched::parallel_map`], which caps concurrency at the core count
//! (`TWIG_NUM_THREADS` / `RAYON_NUM_THREADS` override) instead of the
//! seed's one-unbounded-thread-per-app scope. Shared inputs (programs,
//! walker traces, profiles) come from the process-wide
//! [`crate::cache::ArtifactCache`], so each is generated exactly once no
//! matter how many figures or tasks consume it.
//!
//! Fault tolerance: every headline cell runs under
//! [`twig_sched::run_supervised`] — a panicking or hung cell is
//! quarantined as [`Cell::Failed`] instead of aborting the run, figures
//! render such cells as `FAILED(<reason>)`, and completed cells are
//! persisted through [`crate::checkpoint::CheckpointStore`] so a killed
//! run resumes from where it stopped (see `docs/ROBUSTNESS.md`).

use std::sync::{Arc, OnceLock};

use twig::{TwigConfig, TwigOptimizer};
use twig_prefetchers::{Confluence, Shotgun};
use twig_sched::{CancelToken, TaskPolicy};
use twig_serde::{Deserialize, Serialize};
use twig_sim::{
    speedup_percent, BtbSystem, IntegrityViolation, PlainBtb, SimConfig, SimStats, Simulator,
};
use twig_workload::{
    AnySource, AppId, BlockEvent, InputConfig, Program, ProgramGenerator, Walker, WorkingSet,
    WorkloadSpec,
};

use crate::cache;
use crate::trace_handle::TraceHandle;
use crate::checkpoint::CheckpointStore;
use crate::manifest::{self, CellStatus};

/// Experiment context: instruction budget and output directory.
#[derive(Clone, Debug)]
pub struct ExpContext {
    /// Instructions simulated per run for the main results.
    pub instructions: u64,
    /// Instructions for parameter sweeps (many configurations).
    pub sweep_instructions: u64,
    /// Output directory for report files.
    pub results_dir: std::path::PathBuf,
    /// Persist completed headline cells under
    /// `<results_dir>/.checkpoints/` (the `experiments` binary turns this
    /// on; library/unit-test use leaves it off).
    pub checkpoints: bool,
    /// Load cells persisted by a previous run instead of recomputing
    /// them (`experiments --resume`).
    pub resume: bool,
    /// Set in worker processes spawned by multi-process sharding
    /// (`experiments --shard i/N`): this process computes only the
    /// headline tasks its shard owns, then exits. `None` everywhere else.
    pub shard: Option<twig_sched::ShardSpec>,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            instructions: 2_000_000,
            sweep_instructions: 1_000_000,
            results_dir: "results".into(),
            checkpoints: false,
            resume: false,
            shard: None,
        }
    }
}

/// One application's prepared workload.
pub struct AppSetup {
    /// The application id (the cache key for shared artifacts).
    pub app: AppId,
    /// The workload spec.
    pub spec: WorkloadSpec,
    /// The generator (needed for re-layout during rewriting).
    pub generator: ProgramGenerator,
    /// The generated (original) binary.
    pub program: Program,
    /// The paper's Table 1 baseline config with this app's backend factor.
    pub sim_config: SimConfig,
}

impl AppSetup {
    /// Generates one application from scratch (uncached; prefer
    /// [`Self::shared`] in experiment code).
    pub fn new(app: AppId) -> Self {
        let spec = WorkloadSpec::preset(app);
        let generator = ProgramGenerator::new(spec.clone());
        let program = generator.generate();
        let sim_config = SimConfig::paper_baseline(spec.backend_extra_cpki);
        AppSetup {
            app,
            spec,
            generator,
            program,
            sim_config,
        }
    }

    /// The process-wide shared setup for `app` (generated at most once).
    pub fn shared(app: AppId) -> Arc<AppSetup> {
        cache::global().setup(app)
    }

    /// The walker's event stream for `input`, bounded by `instructions`,
    /// shared through the artifact cache as a spillable [`TraceHandle`]
    /// (in memory below `TWIG_TRACE_SPILL_EVENTS`, streamed from a
    /// `.twgc` file above it).
    pub fn events(&self, input: u32, instructions: u64) -> TraceHandle {
        cache::global().events(self.app, input, instructions)
    }

    /// Walks a fresh (uncached) event stream; test code uses this to check
    /// the cache returns bit-identical data.
    pub fn fresh_events(&self, input: u32, instructions: u64) -> Vec<BlockEvent> {
        Walker::new(&self.program, InputConfig::numbered(input)).run_instructions(instructions)
    }

    /// Runs one simulation with an arbitrary BTB system over the given
    /// trace, whichever backing it has.
    pub fn run_system(
        &self,
        system: Box<dyn BtbSystem>,
        config: SimConfig,
        events: &TraceHandle,
        instructions: u64,
    ) -> SimStats {
        let mut sim = Simulator::new(&self.program, config, system);
        sim.run(events.source(), instructions)
    }
}

/// Runs `f` over all nine applications, preserving order. Scheduling goes
/// through [`twig_sched::parallel_map`]: bounded worker count, and nested
/// parallelism inside `f` degrades gracefully instead of deadlocking.
pub fn for_all_apps<T: Send>(f: impl Fn(AppId) -> T + Sync) -> Vec<(AppId, T)> {
    twig_sched::parallel_map(AppId::ALL.to_vec(), |app| (app, f(app)))
}

/// One value destined for a report table: a number, or an explicit
/// failure marker rendered as `FAILED(<reason>)`.
#[derive(Clone, Debug, PartialEq)]
pub enum CellValue {
    /// A healthy numeric value.
    Num(f64),
    /// The cell (or one of its inputs) failed; the short reason tag.
    Failed(String),
}

impl From<f64> for CellValue {
    fn from(v: f64) -> Self {
        CellValue::Num(v)
    }
}

impl CellValue {
    /// The number, if healthy.
    pub fn num(&self) -> Option<f64> {
        match self {
            CellValue::Num(v) => Some(*v),
            CellValue::Failed(_) => None,
        }
    }

    /// Applies `f` to a healthy value; failures pass through.
    pub fn map(&self, f: impl FnOnce(f64) -> f64) -> CellValue {
        match self {
            CellValue::Num(v) => CellValue::Num(f(*v)),
            CellValue::Failed(r) => CellValue::Failed(r.clone()),
        }
    }

    /// Combines two values; any failure wins (first one's reason).
    pub fn zip_with(&self, other: &CellValue, f: impl FnOnce(f64, f64) -> f64) -> CellValue {
        match (self, other) {
            (CellValue::Num(a), CellValue::Num(b)) => CellValue::Num(f(*a, *b)),
            (CellValue::Failed(r), _) | (_, CellValue::Failed(r)) => {
                CellValue::Failed(r.clone())
            }
        }
    }
}

/// One headline matrix cell: the simulation's statistics, or a
/// quarantined failure.
// `Ok(SimStats)` is the overwhelmingly common variant — boxing it to
// shrink the rare `Failed` case would add a pointer chase to every
// healthy-cell read.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum Cell {
    /// The simulation completed.
    Ok(SimStats),
    /// The cell failed after all retries; short reason tag
    /// (`panic` / `timeout` / `cancelled` / `prepare`).
    Failed(String),
}

impl Cell {
    /// The stats, if the cell is healthy.
    pub fn stats(&self) -> Option<&SimStats> {
        match self {
            Cell::Ok(stats) => Some(stats),
            Cell::Failed(_) => None,
        }
    }

    /// The failure reason, if any.
    pub fn failure(&self) -> Option<&str> {
        match self {
            Cell::Ok(_) => None,
            Cell::Failed(reason) => Some(reason),
        }
    }

    /// Projects one number out of a healthy cell, else the failure.
    pub fn value(&self, f: impl FnOnce(&SimStats) -> f64) -> CellValue {
        match self {
            Cell::Ok(stats) => CellValue::Num(f(stats)),
            Cell::Failed(reason) => CellValue::Failed(reason.clone()),
        }
    }

    /// Projects several numbers out of a healthy cell; a failed cell
    /// yields `n` copies of the failure marker (one per table column).
    pub fn values(&self, n: usize, f: impl FnOnce(&SimStats) -> Vec<f64>) -> Vec<CellValue> {
        match self {
            Cell::Ok(stats) => f(stats).into_iter().map(CellValue::Num).collect(),
            Cell::Failed(reason) => vec![CellValue::Failed(reason.clone()); n],
        }
    }
}

/// Combines two cells into one number; either failure wins.
pub fn cell2(a: &Cell, b: &Cell, f: impl FnOnce(&SimStats, &SimStats) -> f64) -> CellValue {
    match (a, b) {
        (Cell::Ok(sa), Cell::Ok(sb)) => CellValue::Num(f(sa, sb)),
        (Cell::Failed(r), _) | (_, Cell::Failed(r)) => CellValue::Failed(r.clone()),
    }
}

/// Rewrite metadata of one app's prepare phase (Figs. 21–22, Table 3);
/// integer-only fields, so its JSON checkpoint round-trips bit-exactly.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RowMeta {
    /// Rewrite outcome of the full Twig binary.
    pub rewrite: twig::RewriteOutcome,
    /// Rewrite outcome of the software-only binary.
    pub rewrite_sw_only: twig::RewriteOutcome,
    /// Instruction working set (test input) of the original binary, bytes.
    pub working_set_bytes: u64,
    /// Instruction working set of the Twig binary, bytes.
    pub working_set_bytes_twig: u64,
}

/// The per-application headline result matrix shared by Figs. 16–22 and
/// Tables 2–3: baseline / ideal / 32K BTB / Shotgun / Confluence / Twig
/// (trained on input #0, tested on input #1), plus rewrite metadata.
/// Every field is a quarantine-aware [`Cell`]: a failed simulation marks
/// only its own column, not the whole run.
pub struct HeadlineRow {
    /// The application.
    pub app: AppId,
    /// FDIP baseline.
    pub baseline: Cell,
    /// Ideal BTB.
    pub ideal: Cell,
    /// 32K-entry BTB (4-way), no prefetching.
    pub btb32k: Cell,
    /// Shotgun.
    pub shotgun: Cell,
    /// Confluence.
    pub confluence: Cell,
    /// Twig (full).
    pub twig: Cell,
    /// Twig without coalescing (Fig. 18 ablation).
    pub twig_sw_only: Cell,
    /// Rewrite/working-set metadata, or the prepare failure reason.
    pub meta: Result<RowMeta, String>,
}

impl HeadlineRow {
    /// Twig speedup over baseline, percent.
    pub fn twig_speedup(&self) -> CellValue {
        cell2(&self.baseline, &self.twig, speedup_percent)
    }

    /// Ideal-BTB speedup over baseline, percent.
    pub fn ideal_speedup(&self) -> CellValue {
        cell2(&self.baseline, &self.ideal, speedup_percent)
    }

    /// Speedup of an arbitrary system cell over baseline, percent.
    pub fn speedup_of(&self, system: &Cell) -> CellValue {
        cell2(&self.baseline, system, speedup_percent)
    }

    /// Baseline-relative miss coverage of a system cell.
    pub fn coverage(&self, system: &Cell) -> CellValue {
        cell2(&self.baseline, system, |base, sys| {
            twig::baseline_relative_coverage(base, sys)
        })
    }

    /// Projects one number out of the rewrite metadata.
    pub fn meta_value(&self, f: impl FnOnce(&RowMeta) -> f64) -> CellValue {
        match &self.meta {
            Ok(meta) => CellValue::Num(f(meta)),
            Err(reason) => CellValue::Failed(reason.clone()),
        }
    }
}

/// Everything per-app the headline simulations need, produced by the
/// (lazy, cached, exactly-once) prepare phase.
pub(crate) struct PreparedApp {
    pub(crate) setup: Arc<AppSetup>,
    pub(crate) optimized: twig::OptimizedBinary,
    pub(crate) optimized_sw: twig::OptimizedBinary,
    pub(crate) events: TraceHandle,
    pub(crate) working_set_bytes: u64,
    pub(crate) working_set_bytes_twig: u64,
}

impl PreparedApp {
    /// The metadata checkpointed per app.
    fn meta(&self) -> RowMeta {
        RowMeta {
            rewrite: self.optimized.rewrite,
            rewrite_sw_only: self.optimized_sw.rewrite,
            working_set_bytes: self.working_set_bytes,
            working_set_bytes_twig: self.working_set_bytes_twig,
        }
    }
}

pub(crate) fn prepare_app(app: AppId, budget: u64) -> PreparedApp {
    let setup = AppSetup::shared(app);
    let config = setup.sim_config;
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let sw_only = TwigOptimizer::new(TwigConfig::software_prefetch_only());

    // Profile on input #0, evaluate everything on input #1.
    let profile = cache::global().profile(app, 0, budget, &config);
    let plans = optimizer.analyze_for(&profile, &setup.program);
    let layout = setup.generator.layout_options();
    let optimized = optimizer.rewrite_of(&setup.program, &layout, &plans);
    let optimized_sw = sw_only.rewrite_of(&setup.program, &layout, &plans);
    let events = setup.events(1, budget);

    // Working sets on the test input (Table 3): one streaming pass over
    // the trace feeds both measurements, never materializing a spilled
    // trace.
    let mut ws = WorkingSet::new();
    let mut ws_twig = WorkingSet::new();
    for ev in events.source() {
        ws.observe(&setup.program, ev);
        ws_twig.observe(&optimized.program, ev);
    }
    PreparedApp {
        working_set_bytes: ws.instruction_bytes(&setup.program),
        working_set_bytes_twig: ws_twig.instruction_bytes(&optimized.program),
        setup,
        optimized,
        optimized_sw,
        events,
    }
}

/// One cell of the headline matrix; each variant names the system whose
/// `SimStats` lands in the matching [`HeadlineRow`] field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SimSlot {
    Baseline,
    Ideal,
    Btb32k,
    Shotgun,
    Confluence,
    Twig,
    TwigSwOnly,
}

impl SimSlot {
    /// Stable name used in cell ids, checkpoint keys, and fault specs.
    fn name(self) -> &'static str {
        match self {
            SimSlot::Baseline => "baseline",
            SimSlot::Ideal => "ideal",
            SimSlot::Btb32k => "btb32k",
            SimSlot::Shotgun => "shotgun",
            SimSlot::Confluence => "confluence",
            SimSlot::Twig => "twig",
            SimSlot::TwigSwOnly => "twig-sw",
        }
    }
}

const SLOTS: [SimSlot; 7] = [
    SimSlot::Baseline,
    SimSlot::Ideal,
    SimSlot::Btb32k,
    SimSlot::Shotgun,
    SimSlot::Confluence,
    SimSlot::Twig,
    SimSlot::TwigSwOnly,
];

/// Runs one simulation with the concrete system type visible to the event
/// loop (monomorphized — no `Box<dyn>` indirection per branch).
///
/// `label` stamps integrity violations and forensic dumps with the cell
/// identity (e.g. `sim:kafka/twig`); a violation surfaces as a typed
/// error, not a panic, so the supervisor can degrade the cell.
fn run_mono<B: BtbSystem>(
    program: &Program,
    config: SimConfig,
    system: B,
    events: &TraceHandle,
    budget: u64,
    label: &str,
) -> Result<SimStats, Box<IntegrityViolation>> {
    let mut sim = Simulator::new(program, config, system);
    sim.set_integrity_label(label);
    // Match the backing out so the event loop monomorphizes per source
    // (no per-event enum dispatch in the headline hot path).
    let stats = match events.source() {
        AnySource::Mem(source) => sim.try_run(source, budget)?,
        AnySource::Walker(source) => sim.try_run(source, budget)?,
        AnySource::Columnar(source) => sim.try_run(source, budget)?,
    };
    if let Some(snapshot) = sim.metrics_snapshot() {
        crate::telemetry::record_cell_metrics(label, &snapshot);
        if let Ok(Some(trace)) = sim.chrome_trace() {
            crate::telemetry::record_cell_trace(label, &trace);
        }
    }
    // Windowing is orthogonal to the recording tiers: export whenever the
    // window knob produced a timeline, even at the `off` tier.
    if let Some(timeline) = sim.timeline_snapshot() {
        crate::telemetry::record_cell_timeline(label, &timeline);
    }
    // Folded stacks use the bare `<app>/<slot>` cell name as the root
    // frame (the `sim:` namespace prefix is a harness detail).
    let folded_label = label.split_once(':').map_or(label, |(_, tail)| tail);
    if let (Some(attr), Some(folded)) =
        (sim.attribution_snapshot(), sim.attribution_folded(folded_label))
    {
        crate::telemetry::record_cell_attribution(label, &attr, &folded);
    }
    Ok(stats)
}

fn run_slot(
    p: &PreparedApp,
    slot: SimSlot,
    budget: u64,
    label: &str,
) -> Result<SimStats, Box<IntegrityViolation>> {
    let config = p.setup.sim_config;
    let program = &p.setup.program;
    let events = &p.events;
    // Slots simulating the canonical (unrewritten) binary share results
    // with other figures through the sim-result shard — keyed by the slot
    // name and the exact config, on the headline's test input (#1). The
    // Twig slots run rewritten binaries and are never cached. With
    // integrity or observability tiers enabled the cache steps aside
    // (`sim_cacheable`), so `run_mono`'s violation and telemetry paths
    // stay intact; under a cacheable config `run_mono` cannot fail.
    let cached = |slot_cfg: SimConfig,
                  run: &dyn Fn() -> Result<SimStats, Box<IntegrityViolation>>|
     -> Result<SimStats, Box<IntegrityViolation>> {
        if !crate::cache::ArtifactCache::sim_cacheable(&slot_cfg) {
            return run();
        }
        let app = p.setup.app;
        let stats = cache::global().sim_stats(app, 1, budget, slot.name(), &slot_cfg, || {
            run().expect("integrity violations impossible with checking off")
        });
        Ok((*stats).clone())
    };
    match slot {
        SimSlot::Baseline => cached(config, &|| {
            run_mono(program, config, PlainBtb::new(&config), events, budget, label)
        }),
        SimSlot::Ideal => {
            let cfg = SimConfig {
                ideal_btb: true,
                ..config
            };
            cached(cfg, &|| {
                run_mono(program, cfg, PlainBtb::new(&cfg), events, budget, label)
            })
        }
        SimSlot::Btb32k => {
            let cfg = config.with_btb_entries(32 * 1024);
            cached(cfg, &|| {
                run_mono(program, cfg, PlainBtb::new(&cfg), events, budget, label)
            })
        }
        SimSlot::Shotgun => cached(config, &|| {
            run_mono(program, config, Shotgun::new(&config), events, budget, label)
        }),
        SimSlot::Confluence => cached(config, &|| {
            run_mono(program, config, Confluence::new(&config), events, budget, label)
        }),
        SimSlot::Twig => run_mono(
            &p.optimized.program,
            config,
            PlainBtb::new(&config),
            events,
            budget,
            label,
        ),
        SimSlot::TwigSwOnly => run_mono(
            &p.optimized_sw.program,
            config,
            PlainBtb::new(&config),
            events,
            budget,
            label,
        ),
    }
}

/// Outcome of one flat headline task (a simulation cell or an app's
/// metadata cell).
enum MatrixOutcome {
    Sim(Cell),
    Meta(Result<RowMeta, String>),
}

/// One flat headline task.
#[derive(Clone, Copy)]
enum MatrixTask {
    Sim(usize, SimSlot),
    Meta(usize),
}

/// Loads a cell from the checkpoint store, verifying that the payload
/// still parses (the CRC layer already rejected torn records).
fn load_checkpointed<T: twig_serde::de::DeserializeOwned>(
    store: &CheckpointStore,
    key: &str,
    id: &str,
) -> Option<T> {
    let payload = store.load(key)?;
    let text = String::from_utf8(payload).ok()?;
    match twig_serde_json::from_str::<T>(&text) {
        Ok(value) => {
            manifest::record_cell(id, CellStatus::Checkpointed, 0, 0, None);
            Some(value)
        }
        Err(_) => None,
    }
}

/// Runs one supervised + checkpointed cell computation.
fn run_cell<T, F>(
    store: &CheckpointStore,
    policy: &TaskPolicy,
    key: &str,
    id: &str,
    index: usize,
    compute: F,
) -> Result<T, String>
where
    T: Serialize + twig_serde::de::DeserializeOwned + Send,
    F: Fn(&CancelToken) -> Result<T, twig_sched::TaskError>,
{
    if let Some(value) = load_checkpointed::<T>(store, key, id) {
        return Ok(value);
    }
    let report = twig_sched::run_supervised(id, index, policy, compute);
    match report.result {
        Ok(value) => {
            if let Ok(json) = twig_serde_json::to_string(&value) {
                store.store(key, json.as_bytes());
            }
            manifest::record_cell(id, CellStatus::Ok, report.attempts, report.wall_ms, None);
            Ok(value)
        }
        Err(error) => {
            manifest::record_cell(
                id,
                CellStatus::Failed,
                report.attempts,
                report.wall_ms,
                Some(error.to_string()),
            );
            Err(error.kind().to_string())
        }
    }
}

static HEADLINE: OnceLock<Vec<HeadlineRow>> = OnceLock::new();

/// The fixed headline task list: apps × slots, then one metadata task
/// per app. The order never changes, so `task=N` fault selectors hit the
/// same cell on every run and multi-process shards partition identically
/// in every worker.
fn matrix_tasks() -> Vec<MatrixTask> {
    let mut tasks: Vec<MatrixTask> = Vec::with_capacity(AppId::ALL.len() * (SLOTS.len() + 1));
    for i in 0..AppId::ALL.len() {
        for slot in SLOTS {
            tasks.push(MatrixTask::Sim(i, slot));
        }
    }
    for i in 0..AppId::ALL.len() {
        tasks.push(MatrixTask::Meta(i));
    }
    tasks
}

/// The supervision id of one headline task (also the label fault
/// selectors match against).
fn matrix_task_id(task: MatrixTask) -> String {
    match task {
        MatrixTask::Sim(i, slot) => {
            format!("sim:{}/{}", AppId::ALL[i].name(), slot.name())
        }
        MatrixTask::Meta(i) => format!("meta:{}", AppId::ALL[i].name()),
    }
}

/// The checkpoint key of one headline task at `budget`.
fn matrix_task_key(task: MatrixTask, budget: u64) -> String {
    match task {
        MatrixTask::Sim(i, slot) => {
            format!("sim-{}-{}-i{}", AppId::ALL[i].name(), slot.name(), budget)
        }
        MatrixTask::Meta(i) => format!("meta-{}-i{}", AppId::ALL[i].name(), budget),
    }
}

/// Runs (or loads from checkpoint) one headline task, supervised.
fn run_matrix_task(
    store: &CheckpointStore,
    policy: &TaskPolicy,
    budget: u64,
    index: usize,
    task: MatrixTask,
) -> MatrixOutcome {
    let id = matrix_task_id(task);
    let key = matrix_task_key(task, budget);
    match task {
        MatrixTask::Sim(i, slot) => {
            let app = AppId::ALL[i];
            let cell = match run_cell::<SimStats, _>(store, policy, &key, &id, index, |_| {
                let prepared = cache::global().prepared(app, budget);
                run_slot(&prepared, slot, budget, &id).map_err(|violation| {
                    twig_sched::TaskError::Domain {
                        kind: format!("integrity: {}", violation.kind.as_str()),
                        detail: violation.to_string(),
                    }
                })
            }) {
                Ok(stats) => Cell::Ok(stats),
                Err(reason) => Cell::Failed(reason),
            };
            MatrixOutcome::Sim(cell)
        }
        MatrixTask::Meta(i) => {
            let app = AppId::ALL[i];
            let meta = run_cell::<RowMeta, _>(store, policy, &key, &id, index, |_| {
                Ok(cache::global().prepared(app, budget).meta())
            });
            MatrixOutcome::Meta(meta)
        }
    }
}

/// Worker-mode entry point (`experiments --shard i/N`): computes the
/// headline tasks this shard owns, persisting each completed cell to the
/// shared checkpoint store, and returns how many tasks it ran. The
/// worker never assembles rows or writes reports — its only output is
/// checkpoint records for the parent to merge.
///
/// The store is always opened in resume mode: the parent owns the
/// directory's lifecycle (it wiped it on a cold run before spawning),
/// and on `--resume` the worker must skip already-completed cells rather
/// than redo them.
pub fn shard_worker(ctx: &ExpContext) -> usize {
    let shard = ctx.shard.expect("shard_worker requires ctx.shard");
    let budget = ctx.instructions;
    let store = CheckpointStore::open(&ctx.results_dir.join(".checkpoints"), true);
    let policy = TaskPolicy::from_env();
    let owned: Vec<(usize, MatrixTask)> = matrix_tasks()
        .into_iter()
        .enumerate()
        .filter(|(index, _)| shard.owns(*index))
        .collect();
    let count = owned.len();
    twig_sched::parallel_map(owned, |(index, task)| {
        run_matrix_task(&store, &policy, budget, index, task)
    });
    count
}

/// Parent-mode sharded execution: spawn one worker process per shard,
/// wait for all of them, then assemble the matrix purely from the
/// checkpoints they wrote. Cells a dead worker never persisted degrade
/// to [`Cell::Failed`] (naming the worker and its exit status) — the
/// figures render `FAILED(...)` markers and a later `--resume` run
/// completes exactly the missing cells.
fn headline_sharded(
    ctx: &ExpContext,
    store: &CheckpointStore,
    budget: u64,
    procs: usize,
) -> Vec<MatrixOutcome> {
    let results_dir = ctx.results_dir.display().to_string();
    let outcomes = twig_sched::procs::run_sharded(procs, |shard| {
        let mut args = vec![
            "--shard".to_string(),
            shard.to_arg(),
            "--instructions".to_string(),
            budget.to_string(),
            "--results-dir".to_string(),
            results_dir.clone(),
        ];
        if ctx.resume {
            args.push("--resume".to_string());
        }
        args
    });
    for outcome in &outcomes {
        if !outcome.success() {
            eprintln!(
                "warning: matrix worker shard {} failed ({}); its cells degrade to FAILED",
                outcome.shard.to_arg(),
                outcome.describe(),
            );
        }
    }
    matrix_tasks()
        .into_iter()
        .enumerate()
        .map(|(index, task)| {
            let id = matrix_task_id(task);
            let key = matrix_task_key(task, budget);
            let loaded = match task {
                MatrixTask::Sim(..) => load_checkpointed::<SimStats>(store, &key, &id)
                    .map(|stats| MatrixOutcome::Sim(Cell::Ok(stats))),
                MatrixTask::Meta(..) => load_checkpointed::<RowMeta>(store, &key, &id)
                    .map(|meta| MatrixOutcome::Meta(Ok(meta))),
            };
            loaded.unwrap_or_else(|| {
                let owner = &outcomes[index % procs];
                let reason = format!(
                    "worker shard {}: {}",
                    owner.shard.to_arg(),
                    owner.describe()
                );
                manifest::record_cell(&id, CellStatus::Failed, 0, 0, Some(reason.clone()));
                match task {
                    MatrixTask::Sim(..) => MatrixOutcome::Sim(Cell::Failed(reason)),
                    MatrixTask::Meta(..) => MatrixOutcome::Meta(Err(reason)),
                }
            })
        })
        .collect()
}

/// Computes (once per process) the headline matrix at the context's budget.
///
/// The work is one flat task list over the scheduler: the full
/// `(app × system)` simulation matrix (63 tasks) plus one metadata task
/// per app (9 tasks). Each task is supervised (panic isolation, watchdog,
/// retry) and checkpointed; per-app preparation (profile → analyze →
/// rewrite ×2 → trace → working sets) happens lazily through the artifact
/// cache, exactly once per app, and only when some cell actually needs it
/// — an app whose every cell was checkpointed is never re-prepared.
///
/// With `TWIG_NUM_PROCS=N` (N > 1) and checkpoints enabled, the matrix
/// is instead sharded over N worker *processes* (see [`shard_worker`]
/// and [`headline_sharded`]); the in-process scheduler still parallelizes
/// within each worker.
pub fn headline(ctx: &ExpContext) -> &'static [HeadlineRow] {
    HEADLINE.get_or_init(|| {
        let budget = ctx.instructions;
        let store = if ctx.checkpoints {
            CheckpointStore::open(&ctx.results_dir.join(".checkpoints"), ctx.resume)
        } else {
            CheckpointStore::disabled()
        };
        let policy = TaskPolicy::from_env();

        let procs = twig_sched::num_procs();
        let outcomes = if procs > 1 && ctx.shard.is_none() && store.is_enabled() {
            headline_sharded(ctx, &store, budget, procs)
        } else {
            let tagged: Vec<(usize, MatrixTask)> =
                matrix_tasks().into_iter().enumerate().collect();
            twig_sched::parallel_map(tagged, |(index, task)| {
                run_matrix_task(&store, &policy, budget, index, task)
            })
        };

        let mut outcomes = outcomes.into_iter();
        let mut sim_cells: Vec<Vec<Cell>> = Vec::with_capacity(AppId::ALL.len());
        for _ in 0..AppId::ALL.len() {
            let mut row = Vec::with_capacity(SLOTS.len());
            for _ in 0..SLOTS.len() {
                match outcomes.next() {
                    Some(MatrixOutcome::Sim(cell)) => row.push(cell),
                    _ => row.push(Cell::Failed("lost".to_string())),
                }
            }
            sim_cells.push(row);
        }
        let metas: Vec<Result<RowMeta, String>> = outcomes
            .map(|o| match o {
                MatrixOutcome::Meta(meta) => meta,
                MatrixOutcome::Sim(_) => Err("lost".to_string()),
            })
            .collect();

        sim_cells
            .into_iter()
            .zip(metas)
            .enumerate()
            .map(|(i, (cells, meta))| {
                let mut cells = cells.into_iter();
                let mut take =
                    |_slot: usize| cells.next().unwrap_or_else(|| Cell::Failed("lost".to_string()));
                HeadlineRow {
                    app: AppId::ALL[i],
                    baseline: take(0),
                    ideal: take(1),
                    btb32k: take(2),
                    shotgun: take(3),
                    confluence: take(4),
                    twig: take(5),
                    twig_sw_only: take(6),
                    meta,
                }
            })
            .collect()
    })
}

/// Formats a per-app table: header, one row per app, and a mean line
/// computed over the numeric columns. Failed cells render as
/// `FAILED(<reason>)` and are excluded from the mean (which then divides
/// by the number of healthy values in that column).
pub fn table<V>(header: &[&str], rows: &[(AppId, Vec<V>)]) -> String
where
    V: Clone + Into<CellValue>,
{
    let mut out = String::new();
    out.push_str(&format!("{:<16}", "app"));
    for h in header {
        out.push_str(&format!(" {h:>12}"));
    }
    out.push('\n');
    let n = header.len();
    let mut sums = vec![0.0; n];
    let mut counts = vec![0usize; n];
    for (app, values) in rows {
        out.push_str(&format!("{:<16}", app.name()));
        for (i, v) in values.iter().enumerate() {
            match v.clone().into() {
                CellValue::Num(v) => {
                    out.push_str(&format!(" {v:>12.2}"));
                    sums[i] += v;
                    counts[i] += 1;
                }
                CellValue::Failed(reason) => {
                    out.push_str(&format!(" {:>12}", format!("FAILED({reason})")));
                }
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "MEAN"));
    for (i, s) in sums.iter().enumerate() {
        // All-healthy columns divide by the row count (the historical
        // behavior, byte-identical on green runs); degraded columns
        // average whatever survived.
        let divisor = if counts[i] == rows.len() {
            rows.len().max(1)
        } else {
            counts[i].max(1)
        };
        out.push_str(&format!(" {:>12.2}", s / divisor as f64));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_includes_mean_row() {
        let rows = vec![
            (AppId::Kafka, vec![10.0, 2.0]),
            (AppId::Tomcat, vec![20.0, 4.0]),
        ];
        let out = table(&["a", "b"], &rows);
        assert!(out.contains("kafka"));
        assert!(out.contains("tomcat"));
        let mean_line = out.lines().last().unwrap();
        assert!(mean_line.starts_with("MEAN"));
        assert!(mean_line.contains("15.00"));
        assert!(mean_line.contains("3.00"));
    }

    #[test]
    fn table_marks_failed_cells_and_means_over_survivors() {
        let rows = vec![
            (AppId::Kafka, vec![CellValue::Num(10.0), CellValue::Num(2.0)]),
            (
                AppId::Tomcat,
                vec![CellValue::Failed("panic".into()), CellValue::Num(4.0)],
            ),
        ];
        let out = table(&["a", "b"], &rows);
        assert!(out.contains("FAILED(panic)"), "{out}");
        let mean_line = out.lines().last().unwrap();
        // Column a: only kafka survived -> mean 10.00; column b: 3.00.
        assert!(mean_line.contains("10.00"), "{mean_line}");
        assert!(mean_line.contains("3.00"), "{mean_line}");
    }

    #[test]
    fn cell_combinators_propagate_failures() {
        let ok = Cell::Ok(SimStats {
            cycles: 100,
            retired_instructions: 200,
            ..SimStats::default()
        });
        let bad = Cell::Failed("timeout".into());
        assert_eq!(ok.value(|s| s.ipc()), CellValue::Num(2.0));
        assert_eq!(bad.value(|s| s.ipc()), CellValue::Failed("timeout".into()));
        assert_eq!(
            cell2(&ok, &bad, |a, b| a.ipc() + b.ipc()),
            CellValue::Failed("timeout".into())
        );
        assert_eq!(
            bad.values(3, |_| vec![1.0, 2.0, 3.0]),
            vec![CellValue::Failed("timeout".into()); 3]
        );
        assert_eq!(
            CellValue::Num(4.0).zip_with(&CellValue::Num(2.0), |a, b| a / b),
            CellValue::Num(2.0)
        );
    }

    #[test]
    fn row_meta_checkpoint_payload_roundtrips_bit_exactly() {
        let meta = RowMeta {
            rewrite: twig::RewriteOutcome {
                brprefetch_ops: 123,
                brcoalesce_ops: 45,
                coalesce_entries: 6,
                injection_sites: 78,
                dropped_pairs: 9,
                text_bytes_before: 1_000_000,
                text_bytes_after: 1_060_000,
            },
            rewrite_sw_only: twig::RewriteOutcome::default(),
            working_set_bytes: 42,
            working_set_bytes_twig: 43,
        };
        let json = twig_serde_json::to_string(&meta).unwrap();
        let back: RowMeta = twig_serde_json::from_str(&json).unwrap();
        assert_eq!(back, meta);
    }

    #[test]
    fn sim_stats_checkpoint_payload_roundtrips_bit_exactly() {
        let setup = AppSetup::shared(AppId::Tomcat);
        let events = setup.events(1, 20_000);
        let stats = run_mono(
            &setup.program,
            setup.sim_config,
            PlainBtb::new(&setup.sim_config),
            &events,
            20_000,
            "test:checkpoint-roundtrip",
        )
        .expect("no integrity violation");
        let json = twig_serde_json::to_string(&stats).unwrap();
        let back: SimStats = twig_serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats, "SimStats is integer-only; JSON must be exact");
    }

    #[test]
    fn for_all_apps_preserves_order() {
        let results = for_all_apps(|app| app.name().len());
        let apps: Vec<AppId> = results.iter().map(|(a, _)| *a).collect();
        assert_eq!(apps, AppId::ALL.to_vec());
        for (app, len) in results {
            assert_eq!(len, app.name().len());
        }
    }

    #[test]
    fn app_setup_is_deterministic() {
        let a = AppSetup::new(AppId::Tomcat);
        let b = AppSetup::new(AppId::Tomcat);
        assert_eq!(a.program, b.program);
        let ea = a.fresh_events(2, 5_000);
        let eb = b.fresh_events(2, 5_000);
        assert_eq!(ea, eb);
    }

    #[test]
    fn cached_events_match_fresh_walk() {
        let setup = AppSetup::shared(AppId::Kafka);
        let cached = setup.events(3, 4_000);
        let fresh = setup.fresh_events(3, 4_000);
        assert_eq!(&cached.materialize()[..], &fresh[..]);
    }

    #[test]
    fn supervised_checkpointed_cell_roundtrip() {
        let dir = std::env::temp_dir().join(format!("twig-runner-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, false);
        let policy = TaskPolicy {
            attempts: 1,
            backoff_ms: 0,
            timeout_ms: None,
        };
        // First computation runs and persists…
        let first = run_cell::<RowMeta, _>(&store, &policy, "meta-x-i1", "meta:x", 0, |_| {
            Ok(RowMeta {
                rewrite: twig::RewriteOutcome::default(),
                rewrite_sw_only: twig::RewriteOutcome::default(),
                working_set_bytes: 7,
                working_set_bytes_twig: 8,
            })
        })
        .unwrap();
        // …a resume-style store then serves it without running the task.
        let resumed = CheckpointStore::open(&dir, true);
        let second = run_cell::<RowMeta, _>(&resumed, &policy, "meta-x-i1", "meta:x", 0, |_| {
            panic!("must not recompute a checkpointed cell");
        })
        .unwrap();
        assert_eq!(second, first);
        // A failing cell is quarantined with the panic's kind as reason.
        let failed = run_cell::<RowMeta, _>(&resumed, &policy, "meta-y-i1", "meta:y", 0, |_| {
            panic!("no checkpoint for this one");
        });
        assert_eq!(failed.unwrap_err(), "panic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        // The flat (app × slot) scheduling must not perturb results: the
        // same simulation run serially is bit-identical (SimStats derives
        // PartialEq over every counter).
        let budget = 20_000;
        let apps = [AppId::Kafka, AppId::Tomcat, AppId::Cassandra];
        let slots = [SimSlot::Baseline, SimSlot::Ideal, SimSlot::Shotgun];
        let prepared: Vec<Arc<AppSetup>> =
            apps.iter().map(|&a| AppSetup::shared(a)).collect();
        let run = |app_idx: usize, slot: SimSlot| {
            let setup = &prepared[app_idx];
            let config = match slot {
                SimSlot::Ideal => SimConfig {
                    ideal_btb: true,
                    ..setup.sim_config
                },
                _ => setup.sim_config,
            };
            let events = setup.events(1, budget);
            match slot {
                SimSlot::Shotgun => run_mono(
                    &setup.program,
                    config,
                    Shotgun::new(&config),
                    &events,
                    budget,
                    "test:matrix",
                ),
                _ => run_mono(
                    &setup.program,
                    config,
                    PlainBtb::new(&config),
                    &events,
                    budget,
                    "test:matrix",
                ),
            }
            .expect("no integrity violation")
        };
        let tasks: Vec<(usize, SimSlot)> = (0..apps.len())
            .flat_map(|i| slots.iter().map(move |&s| (i, s)))
            .collect();
        let parallel = twig_sched::parallel_map(tasks.clone(), |(i, s)| run(i, s));
        let serial: Vec<SimStats> = tasks.iter().map(|&(i, s)| run(i, s)).collect();
        assert_eq!(parallel, serial);
    }
}
