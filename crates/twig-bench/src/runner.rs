//! Shared experiment plumbing: per-app setup, parallel execution, and the
//! lazily computed headline result matrix reused by Figs. 16–22 and
//! Tables 2–3.

use std::sync::OnceLock;

use parking_lot::Mutex;
use twig::{TwigConfig, TwigOptimizer};
use twig_prefetchers::{Confluence, Shotgun};
use twig_sim::{
    speedup_percent, BtbSystem, PlainBtb, SimConfig, SimStats, Simulator,
};
use twig_workload::{
    AppId, BlockEvent, InputConfig, Program, ProgramGenerator, Walker, WorkingSet, WorkloadSpec,
};

/// Experiment context: instruction budget and output directory.
#[derive(Clone, Debug)]
pub struct ExpContext {
    /// Instructions simulated per run for the main results.
    pub instructions: u64,
    /// Instructions for parameter sweeps (many configurations).
    pub sweep_instructions: u64,
    /// Output directory for report files.
    pub results_dir: std::path::PathBuf,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            instructions: 2_000_000,
            sweep_instructions: 1_000_000,
            results_dir: "results".into(),
        }
    }
}

/// One application's prepared workload.
pub struct AppSetup {
    /// The workload spec.
    pub spec: WorkloadSpec,
    /// The generator (needed for re-layout during rewriting).
    pub generator: ProgramGenerator,
    /// The generated (original) binary.
    pub program: Program,
    /// The paper's Table 1 baseline config with this app's backend factor.
    pub sim_config: SimConfig,
}

impl AppSetup {
    /// Generates one application.
    pub fn new(app: AppId) -> Self {
        let spec = WorkloadSpec::preset(app);
        let generator = ProgramGenerator::new(spec.clone());
        let program = generator.generate();
        let sim_config = SimConfig::paper_baseline(spec.backend_extra_cpki);
        AppSetup {
            spec,
            generator,
            program,
            sim_config,
        }
    }

    /// The walker's event stream for `input`, bounded by `instructions`.
    pub fn events(&self, input: u32, instructions: u64) -> Vec<BlockEvent> {
        Walker::new(&self.program, InputConfig::numbered(input)).run_instructions(instructions)
    }

    /// Runs one simulation with an arbitrary BTB system over given events.
    pub fn run_system(
        &self,
        system: Box<dyn BtbSystem>,
        config: SimConfig,
        events: &[BlockEvent],
        instructions: u64,
    ) -> SimStats {
        let mut sim = Simulator::new(&self.program, config, system);
        sim.run(events.iter().copied(), instructions)
    }
}

/// Runs `f` over all nine applications in parallel, preserving order.
pub fn for_all_apps<T: Send>(f: impl Fn(AppId) -> T + Sync) -> Vec<(AppId, T)> {
    let results: Mutex<Vec<(usize, AppId, T)>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for (i, &app) in AppId::ALL.iter().enumerate() {
            let results = &results;
            let f = &f;
            scope.spawn(move |_| {
                let value = f(app);
                results.lock().push((i, app, value));
            });
        }
    })
    .expect("app worker panicked");
    let mut v = results.into_inner();
    v.sort_by_key(|(i, _, _)| *i);
    v.into_iter().map(|(_, app, t)| (app, t)).collect()
}

/// The per-application headline result matrix shared by Figs. 16–22 and
/// Tables 2–3: baseline / ideal / 32K BTB / Shotgun / Confluence / Twig
/// (trained on input #0, tested on input #1), plus rewrite metadata.
pub struct HeadlineRow {
    /// The application.
    pub app: AppId,
    /// FDIP baseline.
    pub baseline: SimStats,
    /// Ideal BTB.
    pub ideal: SimStats,
    /// 32K-entry BTB (4-way), no prefetching.
    pub btb32k: SimStats,
    /// Shotgun.
    pub shotgun: SimStats,
    /// Confluence.
    pub confluence: SimStats,
    /// Twig (full).
    pub twig: SimStats,
    /// Twig without coalescing (Fig. 18 ablation).
    pub twig_sw_only: SimStats,
    /// Rewrite outcome of the full Twig binary.
    pub rewrite: twig::RewriteOutcome,
    /// Rewrite outcome of the software-only binary.
    pub rewrite_sw_only: twig::RewriteOutcome,
    /// Instruction working set (test input) of the original binary, bytes.
    pub working_set_bytes: u64,
    /// Instruction working set of the Twig binary, bytes.
    pub working_set_bytes_twig: u64,
}

impl HeadlineRow {
    /// Twig speedup over baseline, percent.
    pub fn twig_speedup(&self) -> f64 {
        speedup_percent(&self.baseline, &self.twig)
    }

    /// Ideal-BTB speedup over baseline, percent.
    pub fn ideal_speedup(&self) -> f64 {
        speedup_percent(&self.baseline, &self.ideal)
    }

    /// Baseline-relative miss coverage of a system run.
    pub fn coverage(&self, system: &SimStats) -> f64 {
        twig::baseline_relative_coverage(&self.baseline, system)
    }
}

static HEADLINE: OnceLock<Vec<HeadlineRow>> = OnceLock::new();

/// Computes (once per process) the headline matrix at the context's budget.
pub fn headline(ctx: &ExpContext) -> &'static [HeadlineRow] {
    HEADLINE.get_or_init(|| {
        let budget = ctx.instructions;
        for_all_apps(|app| compute_headline_row(app, budget))
            .into_iter()
            .map(|(_, row)| row)
            .collect()
    })
}

fn compute_headline_row(app: AppId, budget: u64) -> HeadlineRow {
    let setup = AppSetup::new(app);
    let config = setup.sim_config;
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let sw_only = TwigOptimizer::new(TwigConfig::software_prefetch_only());

    // Profile on input #0, evaluate everything on input #1.
    let profile =
        optimizer.collect_profile(&setup.program, config, InputConfig::numbered(0), budget);
    let plans = optimizer.analyze_for(&profile, &setup.program);
    let optimized = optimizer.rewrite(&setup.generator, &plans);
    let optimized_sw = sw_only.rewrite(&setup.generator, &plans);

    let events = setup.events(1, budget);
    let run = |system: Box<dyn BtbSystem>, cfg: SimConfig| {
        setup.run_system(system, cfg, &events, budget)
    };
    let baseline = run(Box::new(PlainBtb::new(&config)), config);
    let ideal_cfg = SimConfig {
        ideal_btb: true,
        ..config
    };
    let ideal = run(Box::new(PlainBtb::new(&ideal_cfg)), ideal_cfg);
    let big_cfg = config.with_btb_entries(32 * 1024);
    let btb32k = run(Box::new(PlainBtb::new(&big_cfg)), big_cfg);
    let shotgun = run(Box::new(Shotgun::new(&config)), config);
    let confluence = run(Box::new(Confluence::new(&config)), config);

    let twig_stats = {
        let mut sim = Simulator::new(&optimized.program, config, PlainBtb::new(&config));
        sim.run(events.iter().copied(), budget)
    };
    let twig_sw_stats = {
        let mut sim = Simulator::new(&optimized_sw.program, config, PlainBtb::new(&config));
        sim.run(events.iter().copied(), budget)
    };

    // Working sets on the test input (Table 3).
    let mut ws = WorkingSet::new();
    let mut ws_twig = WorkingSet::new();
    for ev in &events {
        ws.observe(&setup.program, ev);
        ws_twig.observe(&optimized.program, ev);
    }

    HeadlineRow {
        app,
        baseline,
        ideal,
        btb32k,
        shotgun,
        confluence,
        twig: twig_stats,
        twig_sw_only: twig_sw_stats,
        rewrite: optimized.rewrite,
        rewrite_sw_only: optimized_sw.rewrite,
        working_set_bytes: ws.instruction_bytes(&setup.program),
        working_set_bytes_twig: ws_twig.instruction_bytes(&optimized.program),
    }
}

/// Formats a per-app table: header, one row per app, and a mean line
/// computed over the numeric columns.
pub fn table(header: &[&str], rows: &[(AppId, Vec<f64>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16}", "app"));
    for h in header {
        out.push_str(&format!(" {h:>12}"));
    }
    out.push('\n');
    let n = header.len();
    let mut sums = vec![0.0; n];
    for (app, values) in rows {
        out.push_str(&format!("{:<16}", app.name()));
        for (i, v) in values.iter().enumerate() {
            out.push_str(&format!(" {v:>12.2}"));
            sums[i] += v;
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<16}", "MEAN"));
    for s in &sums {
        out.push_str(&format!(" {:>12.2}", s / rows.len().max(1) as f64));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_includes_mean_row() {
        let rows = vec![
            (AppId::Kafka, vec![10.0, 2.0]),
            (AppId::Tomcat, vec![20.0, 4.0]),
        ];
        let out = table(&["a", "b"], &rows);
        assert!(out.contains("kafka"));
        assert!(out.contains("tomcat"));
        let mean_line = out.lines().last().unwrap();
        assert!(mean_line.starts_with("MEAN"));
        assert!(mean_line.contains("15.00"));
        assert!(mean_line.contains("3.00"));
    }

    #[test]
    fn for_all_apps_preserves_order() {
        let results = for_all_apps(|app| app.name().len());
        let apps: Vec<AppId> = results.iter().map(|(a, _)| *a).collect();
        assert_eq!(apps, AppId::ALL.to_vec());
        for (app, len) in results {
            assert_eq!(len, app.name().len());
        }
    }

    #[test]
    fn app_setup_is_deterministic() {
        let a = AppSetup::new(AppId::Tomcat);
        let b = AppSetup::new(AppId::Tomcat);
        assert_eq!(a.program, b.program);
        let ea = a.events(2, 5_000);
        let eb = b.events(2, 5_000);
        assert_eq!(ea, eb);
    }
}
