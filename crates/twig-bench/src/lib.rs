//! Experiment harness for the Twig reproduction: regenerates every table
//! and figure of the paper (see DESIGN.md §4 for the index).
//!
//! Run via the `experiments` binary:
//!
//! ```text
//! cargo run --release -p twig-bench --bin experiments -- fig16
//! cargo run --release -p twig-bench --bin experiments -- all
//! ```

pub mod cache;
pub mod chart;
pub mod checkpoint;
pub mod exp;
pub mod manifest;
pub mod runner;
pub mod shapes;
pub mod telemetry;
pub mod trace_handle;

pub use cache::{ArtifactCache, CacheStats};
pub use checkpoint::CheckpointStore;
pub use runner::{Cell, CellValue, ExpContext, HeadlineRow, RowMeta};
pub use trace_handle::TraceHandle;

/// All experiment identifiers, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "fig27", "fig28", "tab01", "tab02",
    "tab03", "ext01", "ext02",
];

/// Runs one experiment by id, returning its report text.
///
/// # Errors
///
/// Returns an error string for unknown ids.
pub fn run_experiment(id: &str, ctx: &ExpContext) -> Result<String, String> {
    let report = match id {
        "fig01" => exp::characterization::fig01(ctx),
        "fig02" => exp::characterization::fig02(ctx),
        "fig03" => exp::characterization::fig03(ctx),
        "fig04" => exp::characterization::fig04(ctx),
        "fig05" => exp::characterization::fig05(ctx),
        "fig06" => exp::characterization::fig06(ctx),
        "fig07" => exp::characterization::fig07(ctx),
        "fig08" => exp::characterization::fig08(ctx),
        "fig09" => exp::characterization::fig09(ctx),
        "fig10" => exp::characterization::fig10(ctx),
        "fig11" => exp::characterization::fig11(ctx),
        "fig12" => exp::characterization::fig12(ctx),
        "fig13" => exp::twig_results::fig13(ctx),
        "fig14" => exp::twig_results::fig14(ctx),
        "fig15" => exp::twig_results::fig15(ctx),
        "fig16" => exp::twig_results::fig16(ctx),
        "fig17" => exp::twig_results::fig17(ctx),
        "fig18" => exp::twig_results::fig18(ctx),
        "fig19" => exp::twig_results::fig19(ctx),
        "fig20" => exp::twig_results::fig20(ctx),
        "fig21" => exp::twig_results::fig21(ctx),
        "fig22" => exp::twig_results::fig22(ctx),
        "fig23" => exp::sensitivity::fig23(ctx),
        "fig24" => exp::sensitivity::fig24(ctx),
        "fig25" => exp::sensitivity::fig25(ctx),
        "fig26" => exp::sensitivity::fig26(ctx),
        "fig27" => exp::sensitivity::fig27(ctx),
        "fig28" => exp::sensitivity::fig28(ctx),
        "tab01" => exp::sensitivity::tab01(ctx),
        "tab02" => exp::twig_results::tab02(ctx),
        "tab03" => exp::twig_results::tab03(ctx),
        "ext01" => exp::extensions::ext01(ctx),
        "ext02" => exp::extensions::ext02(ctx),
        other => return Err(format!("unknown experiment id: {other}")),
    };
    Ok(report)
}
