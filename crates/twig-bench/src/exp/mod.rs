//! One module per experiment group; see DESIGN.md §4 for the index.

pub mod characterization;
pub mod extensions;
pub mod sensitivity;
pub mod twig_results;
