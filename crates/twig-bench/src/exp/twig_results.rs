//! §4.2 main results: Figs. 13–22 and Tables 2–3.

use std::sync::OnceLock;

use twig::{MeanStd, OffsetCdf, TwigConfig, TwigOptimizer};
use twig_sim::{PlainBtb, SimConfig};
use twig_workload::AppId;

use crate::runner::{for_all_apps, headline, table, AppSetup, ExpContext};

/// Fig. 13: worked example of injection-site selection, on real profile
/// data from the smallest application.
pub fn fig13(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 13 — injection-site selection example (conditional probability)\n",
    );
    let setup = AppSetup::shared(AppId::Tomcat);
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let profile = crate::cache::global().profile(
        AppId::Tomcat,
        0,
        ctx.sweep_instructions,
        &setup.sim_config,
    );
    let plans = optimizer.analyze_for(&profile, &setup.program);
    out.push_str(&format!(
        "profile: {} samples over {} distinct miss branches; {} plans\n\n",
        profile.num_samples(),
        profile.miss_histogram().len(),
        plans.len()
    ));
    out.push_str("hottest planned miss branches (site <- P(miss|site), covered):\n");
    for plan in plans.iter().take(8) {
        out.push_str(&format!(
            "  miss {} ({} samples):",
            plan.branch_block, plan.total_samples
        ));
        for s in &plan.sites {
            out.push_str(&format!(
                "  {} (P={:.2}, covers {})",
                s.site, s.conditional_prob, s.covered_samples
            ));
        }
        out.push('\n');
    }
    out
}

/// Figs. 14–15: CDFs of the two compressed offsets across all planned
/// prefetch pairs, weighted by covered samples.
fn offset_cdfs(ctx: &ExpContext, which: usize) -> String {
    let budget = ctx.sweep_instructions;
    let mut out = String::new();
    let rows = for_all_apps(|app| {
        let setup = AppSetup::shared(app);
        let optimizer = TwigOptimizer::new(TwigConfig::default());
        let profile = crate::cache::global().profile(app, 0, budget, &setup.sim_config);
        let plans = optimizer.analyze_for(&profile, &setup.program);
        let mut cdf = OffsetCdf::new();
        for plan in &plans {
            for site in &plan.sites {
                if let Some(offsets) =
                    twig::offsets(&setup.program, site.site, plan.branch_block)
                {
                    let v = if which == 0 { offsets.0 } else { offsets.1 };
                    cdf.record(v, site.covered_samples);
                }
            }
        }
        [8u32, 12, 16, 20, 24, 32]
            .iter()
            .map(|&b| cdf.coverage_at(b) * 100.0)
            .collect::<Vec<f64>>()
    });
    out.push_str(&table(
        &["<=8b%", "<=12b%", "<=16b%", "<=20b%", "<=24b%", "<=32b%"],
        &rows,
    ));
    out
}

/// Fig. 14: CDF of prefetch-to-branch offsets.
pub fn fig14(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 14 — prefetch-to-branch offset CDF (paper: ~80% within 12 bits)\n",
    );
    out.push_str(&offset_cdfs(ctx, 0));
    out
}

/// Fig. 15: CDF of branch-to-target offsets.
pub fn fig15(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 15 — branch-to-target offset CDF (paper: ~80% within 12 bits,\n\
         verilator needing more)\n",
    );
    out.push_str(&offset_cdfs(ctx, 1));
    out
}

/// Fig. 16: headline speedups — Twig vs ideal BTB vs Shotgun vs 32K BTB.
pub fn fig16(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 16 — speedup over FDIP (paper: Twig +20.86% avg, ideal +31%,\n\
         Shotgun +1%, Twig beats a 32K-entry BTB on average)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| {
            (
                row.app,
                vec![
                    row.twig_speedup(),
                    row.ideal_speedup(),
                    row.speedup_of(&row.shotgun),
                    row.speedup_of(&row.btb32k),
                ],
            )
        })
        .collect::<Vec<_>>();
    out.push_str(&table(&["twig%", "idealBTB%", "shotgun%", "32K-BTB%"], &rows));
    out.push('\n');
    let bars: Vec<(String, f64)> = rows
        .iter()
        .filter_map(|(app, v)| v[0].num().map(|x| (app.name().to_owned(), x)))
        .collect();
    out.push_str("Twig speedup per application:\n");
    out.push_str(&crate::chart::bar_chart(&bars, 48, "%"));
    out
}

/// Fig. 17: baseline-relative BTB miss coverage.
pub fn fig17(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 17 — BTB miss coverage vs baseline (paper: Twig 65.4% avg,\n\
         Twig >> Shotgun > Confluence)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| {
            (
                row.app,
                vec![
                    row.coverage(&row.twig).map(|c| c * 100.0),
                    row.coverage(&row.shotgun).map(|c| c * 100.0),
                    row.coverage(&row.confluence).map(|c| c * 100.0),
                ],
            )
        })
        .collect::<Vec<_>>();
    out.push_str(&table(&["twig%", "shotgun%", "confluence%"], &rows));
    out
}

/// Fig. 18: contribution split — software prefetching vs coalescing.
pub fn fig18(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 18 — contribution of software prefetching vs coalescing\n\
         (paper: ~71% of the benefit from software prefetching alone)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| {
            let full = row.twig_speedup();
            let sw = row.speedup_of(&row.twig_sw_only);
            let coalesce = full.zip_with(&sw, |f, s| f - s);
            let share = sw.zip_with(&full, |s, f| {
                if f > 0.0 {
                    (s / f * 100.0).clamp(0.0, 100.0)
                } else {
                    0.0
                }
            });
            (row.app, vec![sw, coalesce, share])
        })
        .collect::<Vec<_>>();
    out.push_str(&table(&["swOnly%", "+coalesce%", "swShare%"], &rows));
    out
}

/// Fig. 19: prefetch accuracy.
pub fn fig19(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 19 — prefetch accuracy (paper: Twig 31.3% avg, +12.3 over Shotgun)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| {
            (
                row.app,
                vec![
                    row.twig.value(|s| s.prefetch_accuracy() * 100.0),
                    row.shotgun.value(|s| s.prefetch_accuracy() * 100.0),
                    row.confluence.value(|s| s.prefetch_accuracy() * 100.0),
                ],
            )
        })
        .collect::<Vec<_>>();
    out.push_str(&table(&["twig%", "shotgun%", "confluence%"], &rows));
    out
}

/// Shared machinery for Fig. 20 / Table 2: per-input % of ideal-BTB
/// speedup, for training-input profiles and same-input profiles.
///
/// Both consumers need the full matrix, so it is computed once per
/// process. Within one `(app, input)` the trained and same-input
/// evaluations share identical baseline/ideal reference runs — those go
/// through [`TwigOptimizer::reference_stats`] once (memoized in the
/// artifact cache, where input #1 additionally dedups against the
/// headline matrix) instead of twice through `evaluate_with_events`.
/// One app's row: `(app, same-input accuracy %, training-input accuracy %)`
/// across inputs 1..=3.
type CrossInputRow = (AppId, Vec<f64>, Vec<f64>);

fn cross_input_matrix(ctx: &ExpContext) -> &'static [CrossInputRow] {
    static MATRIX: OnceLock<Vec<CrossInputRow>> = OnceLock::new();
    MATRIX.get_or_init(|| {
        let budget = ctx.instructions;
        for_all_apps(|app| {
            let setup = AppSetup::shared(app);
            let cache = crate::cache::global();
            let optimizer = TwigOptimizer::new(TwigConfig::default());
            // Trained once on input #0 — which is precisely the prepared
            // app's default-config rewrite (profile input #0, same
            // budget), already materialized for the headline matrix.
            let prepared = cache.prepared(app, budget);
            let trained = &prepared.optimized;
            let mut training_pct = Vec::new();
            let mut same_pct = Vec::new();
            for input in 1..=3u32 {
                let events = setup.events(input, budget);
                let config = setup.sim_config;
                // The same-input profile (needed for the "own" rewrite
                // below) doubles as the baseline run on this input — fetch
                // it first so the baseline request is a cache hit.
                let profile_i = cache.profile(app, input, budget, &config);
                let baseline = cache.sim_stats(app, input, budget, "baseline", &config, || {
                    setup.run_system(Box::new(PlainBtb::new(&config)), config, &events, budget)
                });
                let ideal_cfg = SimConfig {
                    ideal_btb: true,
                    ..config
                };
                let ideal = cache.sim_stats(app, input, budget, "ideal", &ideal_cfg, || {
                    setup.run_system(Box::new(PlainBtb::new(&ideal_cfg)), ideal_cfg, &events, budget)
                });
                let report = optimizer.evaluate_optimized_from_source(
                    trained,
                    config,
                    &mut events.source(),
                    budget,
                    (*baseline).clone(),
                    (*ideal).clone(),
                );
                training_pct.push(report.pct_of_ideal * 100.0);
                // Same-input rewrite for comparison.
                let own = optimizer.rewrite_of(
                    &setup.program,
                    &setup.generator.layout_options(),
                    &optimizer.analyze_for(&profile_i, &setup.program),
                );
                let own_report = optimizer.evaluate_optimized_from_source(
                    &own,
                    config,
                    &mut events.source(),
                    budget,
                    (*baseline).clone(),
                    (*ideal).clone(),
                );
                same_pct.push(own_report.pct_of_ideal * 100.0);
            }
            (same_pct, training_pct)
        })
        .into_iter()
        .map(|(app, (same, training))| (app, same, training))
        .collect()
    })
}

/// Fig. 20: Twig's speedup across inputs as % of ideal-BTB performance.
pub fn fig20(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 20 — cross-input generalization, % of ideal-BTB speedup\n\
         (training profile = input #0; paper: comparable to same-input)\n",
    );
    let matrix = cross_input_matrix(ctx);
    let rows: Vec<(AppId, Vec<f64>)> = matrix
        .iter()
        .map(|(app, same, training)| {
            let mut v = training.clone();
            v.push(MeanStd::of(same).mean);
            (*app, v)
        })
        .collect();
    out.push_str(&table(&["train->1", "train->2", "train->3", "sameAvg"], &rows));
    out
}

/// Table 2: averages and standard deviations of % of ideal across inputs.
pub fn tab02(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Table 2 — % of ideal-BTB performance across inputs (avg ± std)\n",
    );
    out.push_str(&format!(
        "{:<16} {:>22} {:>22}\n",
        "app", "same-input profile", "training profile"
    ));
    for (app, same, training) in cross_input_matrix(ctx) {
        out.push_str(&format!(
            "{:<16} {:>22} {:>22}\n",
            app.name(),
            MeanStd::of(same).to_string(),
            MeanStd::of(training).to_string(),
        ));
    }
    out
}

/// Fig. 21: static instruction overhead.
pub fn fig21(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 21 — static overhead, % extra bytes in the binary (paper: ~6% avg)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| (row.app, vec![row.meta_value(|m| m.rewrite.static_overhead() * 100.0)]))
        .collect::<Vec<_>>();
    out.push_str(&table(&["static%"], &rows));
    out
}

/// Fig. 22: dynamic instruction overhead.
pub fn fig22(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 22 — dynamic overhead, % extra executed instructions\n\
         (paper: ~3% avg, verilator highest)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| (row.app, vec![row.twig.value(|s| s.dynamic_overhead() * 100.0)]))
        .collect::<Vec<_>>();
    out.push_str(&table(&["dynamic%"], &rows));
    out
}

/// Table 3: instruction working-set sizes and added bytes.
pub fn tab03(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Table 3 — instruction working set and Twig's addition\n",
    );
    out.push_str(&format!(
        "{:<16} {:>14} {:>14} {:>10}\n",
        "app", "workingSetMB", "addedMB", "overhead%"
    ));
    for row in headline(ctx) {
        match &row.meta {
            Ok(meta) => {
                let ws = meta.working_set_bytes as f64 / (1 << 20) as f64;
                let added = (meta.working_set_bytes_twig
                    - meta.working_set_bytes.min(meta.working_set_bytes_twig))
                    as f64
                    / (1 << 20) as f64;
                out.push_str(&format!(
                    "{:<16} {:>14.2} {:>14.3} {:>10.2}\n",
                    row.app.name(),
                    ws,
                    added,
                    added / ws * 100.0,
                ));
            }
            Err(reason) => {
                let failed = format!("FAILED({reason})");
                out.push_str(&format!(
                    "{:<16} {failed:>14} {failed:>14} {failed:>10}\n",
                    row.app.name(),
                ));
            }
        }
    }
    out
}
