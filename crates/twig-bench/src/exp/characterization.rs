//! §2 characterization experiments: Figs. 1–12.

use twig_profile::{classify_streams_windowed, SpatialRangeAnalyzer, ThreeCClassifier, TopDownRow};
use twig_sim::{
    speedup_percent, BtbGeometry, HistoryEntry, MissObserver, PlainBtb, SimConfig, Simulator,
};
use twig_types::{BlockId, BranchKind};
use twig_workload::{AppId, WorkingSet};

use crate::runner::{for_all_apps, headline, table, AppSetup, ExpContext};

/// Fig. 1: Top-Down pipeline-slot breakdown per application.
pub fn fig01(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 1 — Top-Down pipeline slots (paper: 24-78% frontend-bound)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| {
            let values = row.baseline.values(4, |stats| {
                let td = TopDownRow::from_stats(row.app.name(), stats);
                vec![
                    td.frontend_bound * 100.0,
                    td.bad_speculation * 100.0,
                    td.backend_bound * 100.0,
                    td.retiring * 100.0,
                ]
            });
            (row.app, values)
        })
        .collect::<Vec<_>>();
    out.push_str(&table(&["frontend%", "badspec%", "backend%", "retiring%"], &rows));
    out
}

/// Fig. 2: limit study — ideal I-cache vs ideal BTB speedup over FDIP.
pub fn fig02(ctx: &ExpContext) -> String {
    let budget = ctx.instructions;
    let mut out = String::from(
        "Fig. 2 — limit study (paper: ideal I$ +24% avg, ideal BTB +31% avg)\n",
    );
    let rows = for_all_apps(|app| {
        let setup = AppSetup::shared(app);
        let events = setup.events(1, budget);
        // The baseline and ideal-BTB runs are the headline matrix's
        // `baseline`/`ideal` cells; only the ideal-I$ run is unique to
        // this figure. All three share through the sim-result shard.
        let run = |name: &str, cfg: SimConfig| {
            crate::cache::global().sim_stats(app, 1, budget, name, &cfg, || {
                setup.run_system(Box::new(PlainBtb::new(&cfg)), cfg, &events, budget)
            })
        };
        let base = run("baseline", setup.sim_config);
        let ic_cfg = SimConfig {
            ideal_icache: true,
            ..setup.sim_config
        };
        let ic = run("ideal-icache", ic_cfg);
        let ib_cfg = SimConfig {
            ideal_btb: true,
            ..setup.sim_config
        };
        let ib = run("ideal", ib_cfg);
        vec![
            speedup_percent(&base, &ic),
            speedup_percent(&base, &ib),
        ]
    });
    out.push_str(&table(&["idealI$%", "idealBTB%"], &rows));
    out.push_str(
        "note: for the service apps both limits are large and I$ exceeds BTB\n\
         because the synthetic flat-churn footprint thrashes the L1i harder\n\
         than real binaries do (see EXPERIMENTS.md); the BTB-side ordering\n\
         across systems — the paper's subject — is unaffected.\n",
    );
    out
}

/// Fig. 3: BTB MPKI per application.
pub fn fig03(ctx: &ExpContext) -> String {
    let mut out = String::from("Fig. 3 — BTB MPKI (paper: 8-121, avg 29.7)\n");
    let rows = headline(ctx)
        .iter()
        .map(|row| (row.app, vec![row.baseline.value(|s| s.btb_mpki())]))
        .collect::<Vec<_>>();
    out.push_str(&table(&["MPKI"], &rows));
    out
}

fn three_c_rows(
    apps: &[AppId],
    geometry: BtbGeometry,
    budget: u64,
) -> Vec<(AppId, twig_profile::ThreeCBreakdown)> {
    apps.iter()
        .map(|&app| {
            let setup = AppSetup::shared(app);
            let events = setup.events(1, budget);
            let mut classifier = ThreeCClassifier::new(geometry);
            for ev in events.source() {
                if !ev.taken {
                    continue;
                }
                if let Some(rec) = ev.branch_record(&setup.program) {
                    if let Some(target) = rec.outcome.target() {
                        classifier.access(rec.pc, target, rec.kind);
                    }
                }
            }
            (app, classifier.into_breakdown())
        })
        .collect()
}

/// Fig. 4: 3C classification of BTB misses at the 8K-entry baseline.
pub fn fig04(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 4 — 3C breakdown of BTB misses (paper: ~70% capacity, ~24% conflict)\n",
    );
    let rows: Vec<(AppId, Vec<f64>)> =
        three_c_rows(&AppId::ALL, BtbGeometry::new(8192, 4), ctx.instructions)
            .into_iter()
            .map(|(app, b)| {
                let (comp, cap, conf) = b.fractions();
                (app, vec![comp * 100.0, cap * 100.0, conf * 100.0])
            })
            .collect();
    out.push_str(&table(&["compulsory%", "capacity%", "conflict%"], &rows));
    out
}

/// Fig. 5: capacity-miss share vs BTB size, three applications.
pub fn fig05(ctx: &ExpContext) -> String {
    let apps = [AppId::Cassandra, AppId::FinagleHttp, AppId::Verilator];
    let mut out = String::from(
        "Fig. 5 — % capacity misses vs BTB entries (paper: ~32K+ needed)\n",
    );
    out.push_str(&format!("{:<16}", "app"));
    for size in [2048, 4096, 8192, 16384, 32768, 65536] {
        out.push_str(&format!(" {:>9}", format!("{}K", size / 1024)));
    }
    out.push('\n');
    for app in apps {
        out.push_str(&format!("{:<16}", app.name()));
        for size in [2048usize, 4096, 8192, 16384, 32768, 65536] {
            let rows = three_c_rows(&[app], BtbGeometry::new(size, 4), ctx.sweep_instructions);
            let (_, cap, _) = rows[0].1.fractions();
            out.push_str(&format!(" {:>9.1}", cap * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Fig. 6: conflict-miss share vs associativity, three applications.
pub fn fig06(ctx: &ExpContext) -> String {
    let apps = [AppId::Cassandra, AppId::FinagleHttp, AppId::Verilator];
    let mut out = String::from(
        "Fig. 6 — % conflict misses vs associativity (paper: 128-way needed)\n",
    );
    out.push_str(&format!("{:<16}", "app"));
    for ways in [4, 8, 16, 32, 64, 128] {
        out.push_str(&format!(" {:>9}", format!("{ways}w")));
    }
    out.push('\n');
    for app in apps {
        out.push_str(&format!("{:<16}", app.name()));
        for ways in [4usize, 8, 16, 32, 64, 128] {
            let rows = three_c_rows(&[app], BtbGeometry::new(8192, ways), ctx.sweep_instructions);
            let (_, _, conf) = rows[0].1.fractions();
            out.push_str(&format!(" {:>9.2}", conf * 100.0));
        }
        out.push('\n');
    }
    out
}

fn kind_shares(counts: &[u64; 6]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    BranchKind::ALL
        .iter()
        .map(|k| counts[k.index()] as f64 / total.max(1) as f64 * 100.0)
        .collect()
}

/// Fig. 7: BTB accesses by branch type.
pub fn fig07(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 7 — BTB accesses by branch type (paper: conditionals dominate)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| (row.app, row.baseline.values(6, |s| kind_shares(&s.btb_accesses))))
        .collect::<Vec<_>>();
    out.push_str(&table(
        &["cond%", "jmp%", "call%", "ijmp%", "icall%", "ret%"],
        &rows,
    ));
    out
}

/// Fig. 8: BTB misses by branch type.
pub fn fig08(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 8 — BTB misses by branch type (paper: uncond+calls 20.75% of\n\
         dynamic branches but 37.5% of misses)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| (row.app, row.baseline.values(6, |s| kind_shares(&s.btb_misses))))
        .collect::<Vec<_>>();
    out.push_str(&table(
        &["cond%", "jmp%", "call%", "ijmp%", "icall%", "ret%"],
        &rows,
    ));
    // Aggregate: unconditional-direct share of accesses vs misses.
    let (mut acc_u, mut acc_t, mut miss_u, mut miss_t) = (0u64, 0u64, 0u64, 0u64);
    for row in headline(ctx) {
        // Aggregate over the rows whose baseline survived.
        let Some(baseline) = row.baseline.stats() else {
            continue;
        };
        for k in BranchKind::ALL {
            let a = baseline.btb_accesses[k.index()];
            let m = baseline.btb_misses[k.index()];
            acc_t += a;
            miss_t += m;
            if k.is_unconditional() && k.is_direct() {
                acc_u += a;
                miss_u += m;
            }
        }
    }
    out.push_str(&format!(
        "unconditional direct branches: {:.1}% of accesses, {:.1}% of misses\n",
        acc_u as f64 / acc_t.max(1) as f64 * 100.0,
        miss_u as f64 / miss_t.max(1) as f64 * 100.0,
    ));
    out
}

/// Fig. 9: Shotgun and Confluence speedups over the FDIP baseline.
pub fn fig09(ctx: &ExpContext) -> String {
    let mut out = String::from(
        "Fig. 9 — hardware BTB prefetcher speedups (paper: ~1% avg)\n",
    );
    let rows = headline(ctx)
        .iter()
        .map(|row| {
            (
                row.app,
                vec![
                    row.speedup_of(&row.shotgun),
                    row.speedup_of(&row.confluence),
                ],
            )
        })
        .collect::<Vec<_>>();
    out.push_str(&table(&["shotgun%", "confluence%"], &rows));
    out
}

/// Records the sequence of BTB miss sites.
struct MissSequence(Vec<BlockId>);

impl MissObserver for MissSequence {
    fn on_btb_miss(&mut self, block: BlockId, _: BranchKind, _: &[HistoryEntry], _: u64) {
        self.0.push(block);
    }
}

/// Fig. 10: temporal-stream classification of BTB misses.
pub fn fig10(ctx: &ExpContext) -> String {
    let budget = ctx.instructions;
    let mut out = String::from(
        "Fig. 10 — BTB miss temporal streams (paper: ~52% recurring,\n\
         ~36% new, ~12% non-repetitive)\n",
    );
    let rows = for_all_apps(|app| {
        let setup = AppSetup::shared(app);
        let events = setup.events(1, budget);
        let mut seq = MissSequence(Vec::new());
        let mut sim = Simulator::new(
            &setup.program,
            setup.sim_config,
            PlainBtb::new(&setup.sim_config),
        );
        sim.run_observed(events.source(), budget, &mut seq);
        // Window 12, matching the SHIFT replay depth the baselines use.
        let b = classify_streams_windowed(&seq.0, 12);
        let (r, n, x) = b.fractions();
        vec![r * 100.0, n * 100.0, x * 100.0]
    });
    out.push_str(&table(&["recurring%", "new%", "nonrep%"], &rows));
    out
}

/// Fig. 11: unconditional-branch working set vs Shotgun's 5120-entry U-BTB.
pub fn fig11(ctx: &ExpContext) -> String {
    let budget = ctx.instructions;
    let mut out = String::from(
        "Fig. 11 — unconditional-branch working set (Shotgun U-BTB = 5120)\n",
    );
    let rows = for_all_apps(|app| {
        let setup = AppSetup::shared(app);
        let mut ws = WorkingSet::new();
        for ev in setup.events(1, budget).source() {
            ws.observe(&setup.program, ev);
        }
        vec![
            ws.unconditional_branch_sites() as f64,
            ws.unconditional_branch_sites() as f64 / 5120.0,
        ]
    });
    out.push_str(&table(&["uncondWS", "xU-BTB"], &rows));
    out
}

/// Fig. 12: conditional branches outside Shotgun's 8-line spatial range.
pub fn fig12(ctx: &ExpContext) -> String {
    let budget = ctx.instructions;
    let mut out = String::from(
        "Fig. 12 — conditionals outside Shotgun's 8-line range (paper: 26-45%)\n",
    );
    let rows = for_all_apps(|app| {
        let setup = AppSetup::shared(app);
        let mut analyzer = SpatialRangeAnalyzer::new();
        for ev in setup.events(1, budget).source() {
            analyzer.observe(&setup.program, ev);
        }
        vec![analyzer.finish().out_of_range_fraction() * 100.0]
    });
    out.push_str(&table(&["outOfRange%"], &rows));
    out
}
