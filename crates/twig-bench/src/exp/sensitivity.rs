//! §4.3 sensitivity analyses: Figs. 23–28 and Table 1.
//!
//! Each sweep reruns the full profile → rewrite → evaluate pipeline per
//! configuration (the profile legitimately depends on BTB geometry), and
//! reports Twig's speedup as a percentage of the ideal-BTB speedup at the
//! same configuration, averaged across applications — the paper's y-axis.

use twig::{TwigConfig, TwigOptimizer};
use twig_sim::{speedup_percent, PlainBtb, SimConfig, Simulator};
use twig_workload::AppId;

use crate::runner::{AppSetup, ExpContext};

/// Per-configuration result of one sweep point, averaged over apps.
#[derive(Clone, Copy)]
struct SweepPoint {
    twig_pct_of_ideal: f64,
    shotgun_pct_of_ideal: f64,
    confluence_pct_of_ideal: f64,
}

/// The applications used for the expensive sweeps (one small, one mid,
/// one extreme — the paper plots averages over all nine; three keep the
/// regeneration time reasonable while preserving the shape).
const SWEEP_APPS: [AppId; 3] = [AppId::Kafka, AppId::Cassandra, AppId::Verilator];

/// Runs one sweep point: Twig/Shotgun/Confluence as % of the ideal-BTB
/// speedup under `config` (with `twig_config` driving the optimization).
///
/// A point is a pure function of the per-app simulator configurations,
/// the optimizer configuration, and the budget — and every sweep includes
/// the paper's default configuration as one of its points, so the default
/// point recurs across Figs. 23–28. Whole points are memoized on that key.
fn sweep_point(
    config_of: impl Fn(&AppSetup) -> SimConfig + Sync,
    twig_config: TwigConfig,
    budget: u64,
) -> SweepPoint {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static MEMO: OnceLock<Mutex<HashMap<String, SweepPoint>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let key = {
        let mut k = format!("{twig_config:?}|{budget}");
        for app in SWEEP_APPS {
            k.push_str(&format!("|{:?}", config_of(&AppSetup::shared(app))));
        }
        k
    };
    if let Some(point) = memo.lock().unwrap().get(&key).copied() {
        return point;
    }
    let results: Vec<(f64, f64, f64)> =
        twig_sched::parallel_map(SWEEP_APPS.to_vec(), |app| {
            let setup = AppSetup::shared(app);
            let config = config_of(&setup);
            let optimizer = TwigOptimizer::new(twig_config);
            let profile = crate::cache::global().profile(app, 0, budget, &config);
            let optimized = optimizer.rewrite_of(
                &setup.program,
                &setup.generator.layout_options(),
                &optimizer.analyze_for(&profile, &setup.program),
            );
            let events = setup.events(1, budget);
            let system = |name: &str, cfg: &SimConfig| {
                twig_prefetchers::by_name(name, cfg).expect("registered prefetcher")
            };
            // The reference/competitor runs depend only on (app, config,
            // budget) — identical across every sweep point that varies
            // only the Twig optimizer's knobs (all of Figs. 26/27) — so
            // they go through the artifact cache's sim-result shard.
            let run = |name: &str, cfg: SimConfig| {
                crate::cache::global().sim_stats(app, 1, budget, name, &cfg, || {
                    setup.run_system(system(name, &cfg), cfg, &events, budget)
                })
            };
            let baseline = run("baseline", config);
            let ideal_cfg = SimConfig {
                ideal_btb: true,
                ..config
            };
            let ideal = run("ideal", ideal_cfg);
            let shotgun = run("shotgun", config);
            let confluence = run("confluence", config);
            let twig = {
                let mut sim = Simulator::new(&optimized.program, config, PlainBtb::new(&config));
                sim.run(events.source(), budget)
            };
            // Degenerate configurations (e.g. a 1-entry FTQ) can leave the
            // ideal BTB with ~0% headroom; clamp the denominator so the
            // ratio stays readable instead of exploding.
            let ideal_pct = speedup_percent(&baseline, &ideal).max(2.0);
            (
                speedup_percent(&baseline, &twig) / ideal_pct * 100.0,
                speedup_percent(&baseline, &shotgun) / ideal_pct * 100.0,
                speedup_percent(&baseline, &confluence) / ideal_pct * 100.0,
            )
        });
    let n = results.len() as f64;
    let point = SweepPoint {
        twig_pct_of_ideal: results.iter().map(|r| r.0).sum::<f64>() / n,
        shotgun_pct_of_ideal: results.iter().map(|r| r.1).sum::<f64>() / n,
        confluence_pct_of_ideal: results.iter().map(|r| r.2).sum::<f64>() / n,
    };
    memo.lock().unwrap().insert(key, point);
    point
}

fn sweep_table(
    title: &str,
    labels: &[String],
    points: Vec<SweepPoint>,
) -> String {
    let mut out = String::from(title);
    out.push_str(&format!(
        "{:<12} {:>14} {:>14} {:>14}\n",
        "config", "twig%ofIdeal", "shotgun%", "confluence%"
    ));
    for (label, p) in labels.iter().zip(points) {
        out.push_str(&format!(
            "{:<12} {:>14.1} {:>14.1} {:>14.1}\n",
            label, p.twig_pct_of_ideal, p.shotgun_pct_of_ideal, p.confluence_pct_of_ideal
        ));
    }
    out
}

/// Fig. 23: sensitivity to BTB capacity (2K–64K entries).
pub fn fig23(ctx: &ExpContext) -> String {
    let sizes = [2048usize, 4096, 8192, 16384, 32768, 65536];
    let points = twig_sched::parallel_map(sizes.to_vec(), |size| {
        sweep_point(
            |setup| setup.sim_config.with_btb_entries(size),
            TwigConfig::default(),
            ctx.sweep_instructions,
        )
    });
    sweep_table(
        "Fig. 23 — % of ideal vs BTB entries (paper: Twig leads at all sizes)\n",
        &sizes.iter().map(|s| format!("{}K", s / 1024)).collect::<Vec<_>>(),
        points,
    )
}

/// Fig. 24: sensitivity to BTB associativity (4–128 ways).
pub fn fig24(ctx: &ExpContext) -> String {
    let ways = [4usize, 8, 16, 32, 64, 128];
    let points = twig_sched::parallel_map(ways.to_vec(), |w| {
        sweep_point(
            |setup| setup.sim_config.with_btb_ways(w),
            TwigConfig::default(),
            ctx.sweep_instructions,
        )
    });
    sweep_table(
        "Fig. 24 — % of ideal vs BTB associativity (paper: Twig leads at all)\n",
        &ways.iter().map(|w| format!("{w}-way")).collect::<Vec<_>>(),
        points,
    )
}

/// Fig. 25: sensitivity to the prefetch buffer size (8–256 entries).
pub fn fig25(ctx: &ExpContext) -> String {
    let sizes = [8usize, 16, 32, 64, 128, 256];
    let points = twig_sched::parallel_map(sizes.to_vec(), |size| {
        sweep_point(
            |setup| SimConfig {
                prefetch_buffer_entries: size,
                ..setup.sim_config
            },
            TwigConfig::default(),
            ctx.sweep_instructions,
        )
    });
    sweep_table(
        "Fig. 25 — % of ideal vs prefetch-buffer entries (paper: Twig scales\n\
         to ~128; Shotgun/Confluence flat)\n",
        &sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        points,
    )
}

/// Fig. 26: sensitivity to the prefetch distance (0–50 cycles); Twig only.
pub fn fig26(ctx: &ExpContext) -> String {
    let distances = [0u64, 5, 10, 15, 20, 25, 30, 40, 50];
    let mut out = String::from(
        "Fig. 26 — Twig %% of ideal vs prefetch distance (paper: best 15-25)\n",
    );
    out.push_str(&format!("{:<12} {:>14}\n", "distance", "twig%ofIdeal"));
    let mut points = Vec::new();
    for &d in &distances {
        let p = sweep_point(
            |setup| setup.sim_config,
            TwigConfig {
                prefetch_distance: d,
                ..TwigConfig::default()
            },
            ctx.sweep_instructions,
        );
        out.push_str(&format!("{:<12} {:>14.1}\n", d, p.twig_pct_of_ideal));
        points.push((d as f64, p.twig_pct_of_ideal));
    }
    out.push('\n');
    out.push_str(&crate::chart::line_plot(&points, 54, 10));
    out
}

/// Fig. 27: sensitivity to the coalesce bitmask width (1–64 bits),
/// reported as the *coalescing contribution* (full Twig minus
/// software-only) as % of ideal.
pub fn fig27(ctx: &ExpContext) -> String {
    let widths = [1u32, 2, 4, 8, 16, 32, 64];
    let mut out = String::from(
        "Fig. 27 — coalescing gain vs bitmask width (paper: 8 bits suffice)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>14} {:>16}\n",
        "bits", "twig%ofIdeal", "coalesceGain%"
    ));
    let budget = ctx.sweep_instructions;
    // Software-only reference per sweep app set.
    let sw = sweep_point(
        |setup| setup.sim_config,
        TwigConfig::software_prefetch_only(),
        budget,
    );
    for &w in &widths {
        let p = sweep_point(
            |setup| setup.sim_config,
            TwigConfig {
                coalesce_bitmask_bits: w,
                ..TwigConfig::default()
            },
            budget,
        );
        out.push_str(&format!(
            "{:<12} {:>14.1} {:>16.1}\n",
            w,
            p.twig_pct_of_ideal,
            p.twig_pct_of_ideal - sw.twig_pct_of_ideal
        ));
    }
    out.push_str(&format!(
        "{:<12} {:>14.1} (software prefetching only)\n",
        "none", sw.twig_pct_of_ideal
    ));
    out
}

/// Fig. 28: sensitivity to the FTQ depth (1–64 regions).
pub fn fig28(ctx: &ExpContext) -> String {
    let depths = [1usize, 2, 4, 8, 16, 24, 32, 64];
    let points = twig_sched::parallel_map(depths.to_vec(), |d| {
        sweep_point(
            |setup| SimConfig {
                ftq_entries: d,
                ..setup.sim_config
            },
            TwigConfig::default(),
            ctx.sweep_instructions,
        )
    });
    sweep_table(
        "Fig. 28 — % of ideal vs FTQ depth (paper: Twig stable at all depths)\n",
        &depths.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
        points,
    )
}

/// Table 1: the simulator parameters actually used.
pub fn tab01(_ctx: &ExpContext) -> String {
    let c = SimConfig::default();
    let mut out = String::from("Table 1 — simulator parameters\n");
    out.push_str(&format!(
        "CPU:            {}-wide OOO, {}-entry FTQ (regions of up to {} instrs),\n",
        c.retire_width, c.ftq_entries, c.region_max_instrs
    ));
    out.push_str(&format!(
        "                {}-entry ROB, decode pipe {} cycles, exec pipe {} cycles\n",
        c.rob_entries, c.decode_pipe, c.exec_pipe
    ));
    out.push_str(&format!(
        "BPU:            TAGE-like 64KB-class (+gshare/oracle options),\n\
         \x20               {}-entry {}-way BTB, {}-entry RAS, {}-entry {}-way IBTB,\n\
         \x20               {}-entry prefetch buffer\n",
        c.btb.entries, c.btb.ways, c.ras_entries, c.ibtb.entries, c.ibtb.ways,
        c.prefetch_buffer_entries
    ));
    out.push_str(&format!(
        "Memory:         {}KB {}-way L1i ({} cyc), {}MB {}-way L2 ({} cyc),\n\
         \x20               {}MB {}-way L3 ({} cyc), memory {} cyc\n",
        c.l1i.bytes / 1024,
        c.l1i.ways,
        c.l1i_latency,
        c.l2.bytes / (1024 * 1024),
        c.l2.ways,
        c.l2_latency,
        c.l3.bytes / (1024 * 1024),
        c.l3.ways,
        c.l3_latency,
        c.mem_latency
    ));
    out
}
