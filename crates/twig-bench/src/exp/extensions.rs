//! Extension experiments beyond the paper's own figures.
//!
//! `ext01` tests the §5 claim that Twig "is independent of the underlying
//! BTB and should be just as effective" with compressed/alternative BTB
//! organizations: every [`BtbSystem`] that embeds the software-prefetch
//! engine is evaluated with and without Twig's injected instructions.
//!
//! `ext02` measures the related-work BTB organizations (Phantom-BTB,
//! two-level bulk preload) against the same baseline, locating them in the
//! same design space the paper surveys.

use twig::{TwigConfig, TwigOptimizer};
use twig_sim::{speedup_percent, BtbSystem, SimConfig, SimStats, Simulator};
use twig_workload::AppId;

use crate::runner::{AppSetup, ExpContext};

/// Apps used for the extension studies.
const EXT_APPS: [AppId; 3] = [AppId::Kafka, AppId::Cassandra, AppId::Verilator];

/// Constructs a registered system (these sweeps select by name, so they
/// go through the shared factory rather than per-callsite constructors).
fn system(name: &str, config: &SimConfig) -> Box<dyn BtbSystem> {
    twig_prefetchers::by_name(name, config).expect("registered prefetcher")
}

fn run_on(
    program: &twig_workload::Program,
    system: Box<dyn BtbSystem>,
    config: SimConfig,
    events: &crate::trace_handle::TraceHandle,
    budget: u64,
) -> SimStats {
    let mut sim = Simulator::new(program, config, system);
    sim.run(events.source(), budget)
}

/// ext01 — Twig on top of different BTB organizations.
pub fn ext01(ctx: &ExpContext) -> String {
    let budget = ctx.sweep_instructions;
    let mut out = String::from(
        "ext01 — Twig is independent of the BTB organization (§5 claim):\n\
         speedup of each organization without / with Twig's instructions\n",
    );
    out.push_str(&format!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}\n",
        "app", "plain", "plain+twig", "btb-x", "btb-x+twig"
    ));
    for app in EXT_APPS {
        let setup = AppSetup::shared(app);
        let config = setup.sim_config;
        let optimizer = TwigOptimizer::new(TwigConfig::default());
        let profile = crate::cache::global().profile(app, 0, budget, &config);
        let optimized = optimizer.rewrite_of(
            &setup.program,
            &setup.generator.layout_options(),
            &optimizer.analyze_for(&profile, &setup.program),
        );
        let events = setup.events(1, budget);

        let base = run_on(
            &setup.program,
            system("twig", &config),
            config,
            &events,
            budget,
        );
        let plain_twig = run_on(
            &optimized.program,
            system("twig", &config),
            config,
            &events,
            budget,
        );
        let btbx = run_on(
            &setup.program,
            system("btbx", &config),
            config,
            &events,
            budget,
        );
        let btbx_twig = run_on(
            &optimized.program,
            system("btbx", &config),
            config,
            &events,
            budget,
        );
        out.push_str(&format!(
            "{:<12} {:>13.1}% {:>13.1}% {:>13.1}% {:>13.1}%\n",
            app.name(),
            0.0,
            speedup_percent(&base, &plain_twig),
            speedup_percent(&base, &btbx),
            speedup_percent(&base, &btbx_twig),
        ));
    }
    out.push_str(
        "expectation: the +twig columns add a comparable increment on both\n\
         organizations, and btb-x+twig stacks both benefits.\n",
    );
    out
}

/// ext02 — related-work BTB organizations under the same frontend.
pub fn ext02(ctx: &ExpContext) -> String {
    let budget = ctx.sweep_instructions;
    let mut out = String::from(
        "ext02 — related-work BTB organizations (speedup over the plain\n\
         8K-entry baseline; §5's survey, implemented)\n",
    );
    out.push_str(&format!(
        "{:<12} {:>14} {:>14} {:>14}\n",
        "app", "btb-x", "phantom-btb", "two-level"
    ));
    for app in EXT_APPS {
        let setup = AppSetup::shared(app);
        let config = setup.sim_config;
        let events = setup.events(1, budget);
        let base = run_on(
            &setup.program,
            system("twig", &config),
            config,
            &events,
            budget,
        );
        let btbx = run_on(
            &setup.program,
            system("btbx", &config),
            config,
            &events,
            budget,
        );
        let phantom = run_on(
            &setup.program,
            system("phantom", &config),
            config,
            &events,
            budget,
        );
        let two_level = run_on(
            &setup.program,
            system("bulk", &config),
            config,
            &events,
            budget,
        );
        out.push_str(&format!(
            "{:<12} {:>13.1}% {:>13.1}% {:>13.1}%\n",
            app.name(),
            speedup_percent(&base, &btbx),
            speedup_percent(&base, &phantom),
            speedup_percent(&base, &two_level),
        ));
    }
    out
}
