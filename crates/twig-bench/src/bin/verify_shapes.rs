//! Verifies that the current `results/` preserve every figure's shape
//! verdict relative to the seed-era baseline, and writes the side-by-side
//! comparison to `docs/SEED_COMPARISON.md`.
//!
//! ```text
//! verify_shapes [--baseline DIR] [--results DIR] [--doc PATH|--no-doc]
//! ```
//!
//! Exits nonzero if any check fails on either result set (so CI catches a
//! regeneration that flips a verdict) or if a report file is missing.

use std::path::PathBuf;

use twig_bench::shapes::{compare_dirs, render_report};

fn main() {
    let mut baseline = PathBuf::from("results/seed_baseline");
    let mut results = PathBuf::from("results");
    let mut doc = Some(PathBuf::from("docs/SEED_COMPARISON.md"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next().expect("--baseline needs a path").into(),
            "--results" => results = args.next().expect("--results needs a path").into(),
            "--doc" => doc = Some(args.next().expect("--doc needs a path").into()),
            "--no-doc" => doc = None,
            "--help" | "-h" => {
                eprintln!(
                    "usage: verify_shapes [--baseline DIR] [--results DIR] \
                     [--doc PATH|--no-doc]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let comparisons = match compare_dirs(&baseline, &results) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("verify_shapes: {e}");
            std::process::exit(2);
        }
    };

    let mut checks = 0usize;
    let mut failures = 0usize;
    for cmp in &comparisons {
        for (seed, cur) in &cmp.checks {
            checks += 1;
            for (side, c) in [("seed", seed), ("current", cur)] {
                if !c.pass {
                    failures += 1;
                    eprintln!("FAIL {} [{side}]: {} (value {})", cmp.id, c.name, c.value);
                }
            }
        }
    }

    if let Some(path) = doc {
        twig_sched::publish_atomic(&path, render_report(&comparisons).as_bytes(), None, None)
            .expect("publish comparison doc");
        println!("wrote {}", path.display());
    }
    println!(
        "{} figures, {} shape checks x 2 result sets: {}",
        comparisons.len(),
        checks,
        if failures == 0 {
            "all verdicts preserved".to_string()
        } else {
            format!("{failures} FAILURES")
        }
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
