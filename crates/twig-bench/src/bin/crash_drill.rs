//! Kill-anywhere recovery drill: proves the harness is crash-only.
//!
//! ```text
//! crash_drill [--instructions N] [--root DIR] [--quick]
//! ```
//!
//! For every crashpoint registered in `twig_sched::durable::CRASHPOINTS`,
//! the drill runs the owning workflow as a subprocess with
//! `TWIG_CRASH_SPEC=<point>` armed, asserts the process died with the
//! distinctive crash exit code (a point that never fires is a registry
//! lie and fails the drill), then runs the recovery path — batch
//! `--resume`, a fresh `fleet run`, or the next `metrics regress` — and
//! asserts the recovered outputs are **byte-identical** to an uncrashed
//! reference. Batch and fleet recovery are proven at 1 and 4 workers
//! (`--quick` drops the 4-worker pass for local iteration).
//!
//! The drill also exercises the run-lock steal implicitly: every crashed
//! subprocess dies holding its results-directory `.lock`, so recovery
//! only succeeds if the dead holder's lock is detected and stolen.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use twig_sched::durable::{CRASHPOINTS, CRASH_EXIT_CODE};

/// Crashpoints drilled through `experiments fig16 --obs counters` +
/// `--resume`.
const BATCH_POINTS: &[&str] = &[
    "ckpt-tmp",
    "ckpt-published",
    "figure-tmp",
    "manifest-tmp",
    "manifest-published",
    "bench-tmp",
    "metrics-tmp",
];

/// Crashpoints drilled through `twig-cli fleet run --state-dir` + rerun.
const FLEET_POINTS: &[&str] = &[
    "ckpt-tmp",
    "ckpt-published",
    "fleet-lastgood-pre",
    "fleet-lastgood-post",
    "fleet-manifest-tmp",
    "fleet-manifest-published",
];

/// Crashpoints drilled through `twig-cli metrics regress --trajectory`.
const TRAJ_POINTS: &[&str] = &["traj-journal", "traj-published"];

fn main() {
    let mut instructions: u64 = 100_000;
    let mut root: Option<PathBuf> = None;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instructions" => {
                instructions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--instructions needs a number");
            }
            "--root" => root = Some(args.next().expect("--root needs a path").into()),
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("usage: crash_drill [--instructions N] [--root DIR] [--quick]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let root = root.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("twig-crash-drill-{}", std::process::id()))
    });
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create drill root");

    // Sibling binaries: the drill is always built alongside them.
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let experiments = exe_dir.join("experiments");
    let twig_cli = exe_dir.join("twig-cli");
    for bin in [&experiments, &twig_cli] {
        assert!(
            bin.is_file(),
            "{} not found; build the workspace first (cargo build --release)",
            bin.display()
        );
    }

    let worker_counts: &[usize] = if quick { &[1] } else { &[1, 4] };
    let mut drilled: BTreeSet<&str> = BTreeSet::new();
    let mut batch_metrics: Option<PathBuf> = None;

    for &workers in worker_counts {
        let metrics = drill_batch(&experiments, &root, instructions, workers, &mut drilled);
        batch_metrics.get_or_insert(metrics);
        drill_fleet(&twig_cli, &root, workers, &mut drilled);
    }
    let metrics_dir = batch_metrics.expect("at least one batch pass ran");
    drill_trajectory(&twig_cli, &root, &metrics_dir, &mut drilled);

    // Registry honesty: every registered crashpoint must have been
    // crashed into and recovered from. A new durability boundary that is
    // registered but not wired into a drill mode fails here, loudly.
    let registered: BTreeSet<&str> = CRASHPOINTS.iter().map(|(p, _)| *p).collect();
    let missed: Vec<&&str> = registered.difference(&drilled).collect();
    assert!(
        missed.is_empty(),
        "registered crashpoints never drilled: {missed:?}"
    );
    let unknown: Vec<&&str> = drilled.difference(&registered).collect();
    assert!(unknown.is_empty(), "drilled unregistered points: {unknown:?}");

    println!(
        "crash drill PASS: {} crashpoint(s) x {} worker count(s), \
         batch + fleet + trajectory recovery all byte-identical",
        registered.len(),
        worker_counts.len()
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// A subprocess command with a scrubbed TWIG_* environment: only the
/// variables the drill sets explicitly reach the child.
fn scrubbed(bin: &Path, envs: &[(&str, String)]) -> Command {
    let mut cmd = Command::new(bin);
    for var in twig_types::config::ALL_VARS {
        cmd.env_remove(var);
    }
    cmd.env_remove("RAYON_NUM_THREADS");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd
}

/// Runs a command to completion, asserting the expected exit code;
/// prints the child's output on mismatch.
fn run_expect(cmd: &mut Command, expected: i32, what: &str) {
    let output = cmd.output().unwrap_or_else(|e| panic!("{what}: spawn failed: {e}"));
    let code = output.status.code();
    if code != Some(expected) {
        eprintln!("--- stdout ---\n{}", String::from_utf8_lossy(&output.stdout));
        eprintln!("--- stderr ---\n{}", String::from_utf8_lossy(&output.stderr));
        panic!("{what}: expected exit {expected}, got {code:?}");
    }
}

/// Asserts two files are byte-identical.
fn assert_same(reference: &Path, recovered: &Path, what: &str) {
    let want = std::fs::read(reference)
        .unwrap_or_else(|e| panic!("{what}: cannot read {}: {e}", reference.display()));
    let got = std::fs::read(recovered)
        .unwrap_or_else(|e| panic!("{what}: cannot read {}: {e}", recovered.display()));
    if want != got {
        let at = want
            .iter()
            .zip(&got)
            .position(|(a, b)| a != b)
            .unwrap_or(want.len().min(got.len()));
        panic!(
            "{what}: {} differs from reference {} (lengths {} vs {}, first diff at byte {at})",
            recovered.display(),
            reference.display(),
            got.len(),
            want.len()
        );
    }
}

/// Sorted `*.json` names in a metrics directory.
fn metrics_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .flatten()
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".json"))
        .collect();
    names.sort();
    names
}

/// Batch mode: crash `experiments fig16` at each point, recover with
/// `--resume`, and compare the figure plus every metrics export against
/// an uncrashed reference at the same worker count. Returns the clean
/// reference's metrics directory (reused by the trajectory drill).
fn drill_batch(
    experiments: &Path,
    root: &Path,
    instructions: u64,
    workers: usize,
    drilled: &mut BTreeSet<&'static str>,
) -> PathBuf {
    let threads = ("TWIG_NUM_THREADS", workers.to_string());
    let clean = root.join(format!("batch-w{workers}-clean"));
    let base_args = |dir: &Path| {
        vec![
            "fig16".to_string(),
            "--instructions".to_string(),
            instructions.to_string(),
            "--results-dir".to_string(),
            dir.display().to_string(),
            "--obs".to_string(),
            "counters".to_string(),
        ]
    };
    run_expect(
        scrubbed(experiments, std::slice::from_ref(&threads)).args(base_args(&clean)),
        0,
        &format!("batch w{workers} clean run"),
    );
    let reference_metrics = metrics_files(&clean.join("metrics"));
    assert!(
        !reference_metrics.is_empty(),
        "clean batch run exported no metrics; the drill would prove nothing"
    );

    for &point in BATCH_POINTS {
        let what = format!("batch w{workers} @{point}");
        let dir = root.join(format!("batch-w{workers}-{point}"));
        run_expect(
            scrubbed(
                experiments,
                &[threads.clone(), ("TWIG_CRASH_SPEC", point.to_string())],
            )
            .args(base_args(&dir)),
            CRASH_EXIT_CODE,
            &format!("{what} crash run"),
        );
        // Recovery: the crashed holder's lock must be stolen, residue
        // healed, and only the missing cells recomputed.
        let mut recover_args = base_args(&dir);
        recover_args.push("--resume".to_string());
        run_expect(
            scrubbed(experiments, std::slice::from_ref(&threads)).args(recover_args),
            0,
            &format!("{what} recovery run"),
        );
        assert_same(&clean.join("fig16.txt"), &dir.join("fig16.txt"), &what);
        let recovered_metrics = metrics_files(&dir.join("metrics"));
        assert!(
            recovered_metrics == reference_metrics,
            "{what}: metrics sets differ: {recovered_metrics:?} vs {reference_metrics:?}"
        );
        for name in &reference_metrics {
            assert_same(
                &clean.join("metrics").join(name),
                &dir.join("metrics").join(name),
                &what,
            );
        }
        let manifest = std::fs::read_to_string(dir.join("run_manifest.json"))
            .unwrap_or_else(|e| panic!("{what}: read recovered manifest: {e}"));
        assert!(
            manifest.contains("\"failed_cells\": 0"),
            "{what}: recovered run still has failed cells"
        );
        drilled.insert(point);
        println!("ok: {what}");
    }
    clean.join("metrics")
}

/// Fleet mode: crash `twig-cli fleet run` at each point, rerun into the
/// same directories (stealing the dead lock, cold-opening the state
/// store), and compare the fleet manifest against an uncrashed reference
/// at the same worker count.
fn drill_fleet(
    twig_cli: &Path,
    root: &Path,
    workers: usize,
    drilled: &mut BTreeSet<&'static str>,
) {
    let fleet_workers = ("TWIG_FLEET_WORKERS", workers.to_string());
    let clean = root.join(format!("fleet-w{workers}-clean"));
    let fleet_args = |out: &Path, state: &Path| {
        vec![
            "fleet".to_string(),
            "run".to_string(),
            "--out".to_string(),
            out.display().to_string(),
            "--state-dir".to_string(),
            state.display().to_string(),
        ]
    };
    run_expect(
        scrubbed(twig_cli, std::slice::from_ref(&fleet_workers))
            .args(fleet_args(&clean, &clean.join("state"))),
        0,
        &format!("fleet w{workers} clean run"),
    );

    for &point in FLEET_POINTS {
        let what = format!("fleet w{workers} @{point}");
        let out = root.join(format!("fleet-w{workers}-{point}"));
        let state = out.join("state");
        run_expect(
            scrubbed(
                twig_cli,
                &[fleet_workers.clone(), ("TWIG_CRASH_SPEC", point.to_string())],
            )
            .args(fleet_args(&out, &state)),
            CRASH_EXIT_CODE,
            &format!("{what} crash run"),
        );
        run_expect(
            scrubbed(twig_cli, std::slice::from_ref(&fleet_workers)).args(fleet_args(&out, &state)),
            0,
            &format!("{what} recovery run"),
        );
        assert_same(
            &clean.join("fleet_manifest.json"),
            &out.join("fleet_manifest.json"),
            &what,
        );
        drilled.insert(point);
        println!("ok: {what}");
    }
}

/// Trajectory mode: a three-append sequence where the middle append is
/// killed at each journal boundary. Whether the kill landed before or
/// after the publish, the healing third append must converge to a file
/// byte-identical to an uncrashed three-append reference.
fn drill_trajectory(
    twig_cli: &Path,
    root: &Path,
    metrics_dir: &Path,
    drilled: &mut BTreeSet<&'static str>,
) {
    let regress_args = |traj: &Path| {
        vec![
            "metrics".to_string(),
            "regress".to_string(),
            "--baseline".to_string(),
            metrics_dir.display().to_string(),
            metrics_dir.display().to_string(),
            "--trajectory".to_string(),
            traj.display().to_string(),
        ]
    };
    let reference = root.join("traj-clean/BENCH_trajectory.json");
    for round in 1..=3 {
        run_expect(
            scrubbed(twig_cli, &[]).args(regress_args(&reference)),
            0,
            &format!("trajectory clean append {round}"),
        );
    }

    for &point in TRAJ_POINTS {
        let what = format!("trajectory @{point}");
        let traj = root.join(format!("traj-{point}/BENCH_trajectory.json"));
        run_expect(
            scrubbed(twig_cli, &[]).args(regress_args(&traj)),
            0,
            &format!("{what} append 1"),
        );
        run_expect(
            scrubbed(twig_cli, &[("TWIG_CRASH_SPEC", point.to_string())])
                .args(regress_args(&traj)),
            CRASH_EXIT_CODE,
            &format!("{what} crashed append 2"),
        );
        // The healing append rolls the journaled run 2 forward (it was
        // durably journaled at both points) and appends run 3.
        run_expect(
            scrubbed(twig_cli, &[]).args(regress_args(&traj)),
            0,
            &format!("{what} healing append 3"),
        );
        assert_same(&reference, &traj, &what);
        drilled.insert(point);
        println!("ok: {what}");
    }
}
