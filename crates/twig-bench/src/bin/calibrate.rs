//! Calibration probe: per-app baseline characteristics vs paper targets.
//!
//! Usage: `cargo run --release -p twig-bench --bin calibrate [instructions]`

use twig_sim::{PlainBtb, SimConfig, Simulator};
use twig_workload::{AppId, InputConfig, ProgramGenerator, Walker, WorkingSet, WorkloadSpec};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000_000);
    println!(
        "{:<16} {:>9} {:>7} {:>7} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "app", "footMB", "MPKI", "IPC", "FE%", "idealBTB", "idealI$", "uncondWS", "takenWS"
    );
    for app in AppId::ALL {
        let t0 = std::time::Instant::now();
        let spec = WorkloadSpec::preset(app);
        let program = ProgramGenerator::new(spec.clone()).generate();
        let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
        // Working set measurement on the same event stream.
        let events: Vec<_> =
            Walker::new(&program, InputConfig::numbered(0)).run_instructions(budget);
        let mut ws = WorkingSet::new();
        for ev in &events {
            ws.observe(&program, *ev);
        }
        let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
        let stats = sim.run(events.iter().copied(), budget);
        let ideal_cfg = SimConfig {
            ideal_btb: true,
            ..config
        };
        let mut ideal_sim = Simulator::new(&program, ideal_cfg, PlainBtb::new(&ideal_cfg));
        let ideal = ideal_sim.run(events.iter().copied(), budget);
        let speedup = (ideal.ipc() / stats.ipc() - 1.0) * 100.0;
        let ic_cfg = SimConfig {
            ideal_icache: true,
            ..config
        };
        let mut ic_sim = Simulator::new(&program, ic_cfg, PlainBtb::new(&ic_cfg));
        let ic = ic_sim.run(events.iter().copied(), budget);
        let ic_speedup = (ic.ipc() / stats.ipc() - 1.0) * 100.0;
        let _ = t0;
        println!(
            "{:<16} {:>9.2} {:>7.1} {:>7.2} {:>8.1} {:>8.1} {:>8.1} {:>9} {:>9}",
            spec.name,
            ws.instruction_bytes(&program) as f64 / (1 << 20) as f64,
            stats.btb_mpki(),
            stats.ipc(),
            stats.topdown.frontend_fraction() * 100.0,
            speedup,
            ic_speedup,
            ws.unconditional_branch_sites(),
            ws.taken_branch_sites(),
        );
    }
}
