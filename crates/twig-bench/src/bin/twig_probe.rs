//! Headline probe: Twig vs ideal BTB vs Shotgun per app (Fig. 16/17/19 shape).
use twig::{TwigConfig, TwigOptimizer};
use twig_prefetchers::Shotgun;
use twig_sim::{SimConfig, Simulator, speedup_percent};
use twig_workload::{AppId, InputConfig, ProgramGenerator, Walker, WorkloadSpec};

fn main() {
    let budget: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3_000_000);
    println!("{:<16} {:>7} {:>8} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "app", "twig%", "ideal%", "%ofIdeal", "shot%", "cov%", "acc%", "statOH%", "dynOH%", "plans");
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let (mut tw, mut id, mut sh, mut cov, mut acc) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for app in AppId::ALL {
        let spec = WorkloadSpec::preset(app);
        let config = SimConfig::paper_baseline(spec.backend_extra_cpki);
        let generator = ProgramGenerator::new(spec.clone());
        let program = generator.generate();
        let profile = optimizer.collect_profile(&program, config, InputConfig::numbered(0), budget);
        let plans = optimizer.analyze_for(&profile, &program);
        let optimized = optimizer.rewrite(&generator, &plans);
        let report = optimizer.evaluate(&program, &optimized, config, InputConfig::numbered(1), budget);
        // Shotgun on the same test events.
        let events = Walker::new(&program, InputConfig::numbered(1)).run_instructions(budget);
        let mut shot_sim = Simulator::new(&program, config, Shotgun::new(&config));
        let shot = shot_sim.run(events.iter().copied(), budget);
        let shot_pct = speedup_percent(&report.baseline, &shot);
        println!("{:<16} {:>7.1} {:>8.1} {:>8.1} {:>8.1} {:>7.1} {:>7.1} {:>7.2} {:>7.2} {:>7}",
            spec.name, report.speedup_percent, report.ideal_speedup_percent,
            report.pct_of_ideal * 100.0, shot_pct,
            report.coverage * 100.0, report.accuracy * 100.0,
            optimized.rewrite.static_overhead() * 100.0,
            report.dynamic_overhead * 100.0,
            plans.len());
        tw += report.speedup_percent; id += report.ideal_speedup_percent;
        sh += shot_pct; cov += report.coverage; acc += report.accuracy;
    }
    println!("MEAN twig {:.1}% ideal {:.1}% shotgun {:.1}% cov {:.1}% acc {:.1}%",
        tw / 9.0, id / 9.0, sh / 9.0, cov / 9.0 * 100.0, acc / 9.0 * 100.0);
}
