//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments <id>...|all [--instructions N] [--sweep-instructions N]
//! ```
//!
//! Reports print to stdout and are also written to `results/<id>.txt`.

use std::io::Write;

use twig_bench::{run_experiment, ExpContext, ALL_EXPERIMENTS};

fn main() {
    let mut ctx = ExpContext::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instructions" => {
                ctx.instructions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--instructions needs a number");
            }
            "--sweep-instructions" => {
                ctx.sweep_instructions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sweep-instructions needs a number");
            }
            "--results-dir" => {
                ctx.results_dir = args.next().expect("--results-dir needs a path").into();
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments <id>...|all [--instructions N] \
                     [--sweep-instructions N] [--results-dir DIR]\n\
                     ids: {}",
                    ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiment ids given; try `experiments all` or --help");
        std::process::exit(2);
    }
    std::fs::create_dir_all(&ctx.results_dir).expect("create results dir");

    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment(id, &ctx) {
            Ok(report) => {
                println!("==== {id} ({:.1}s) ====", started.elapsed().as_secs_f64());
                println!("{report}");
                let path = ctx.results_dir.join(format!("{id}.txt"));
                let mut f = std::fs::File::create(&path).expect("create report file");
                f.write_all(report.as_bytes()).expect("write report");
            }
            Err(e) => {
                eprintln!("{id}: {e}");
                std::process::exit(2);
            }
        }
    }
}
