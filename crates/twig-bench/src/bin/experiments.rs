//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments <id>...|all [--instructions N] [--sweep-instructions N]
//! ```
//!
//! Reports print to stdout and are also written to `results/<id>.txt`.
//! Every run additionally writes `results/bench_results.json` with the
//! wall-clock time per figure and the artifact-cache hit/miss counters,
//! and asserts the exactly-once generation property (each program, trace,
//! and profile computed at most once per process).

use std::io::Write;

use twig_serde::Serialize;
use twig_bench::{run_experiment, CacheStats, ExpContext, ALL_EXPERIMENTS};

#[derive(Serialize)]
struct FigureTiming {
    id: String,
    seconds: f64,
}

/// The timing/caching report written to `results/bench_results.json`.
#[derive(Serialize)]
struct BenchReport {
    total_seconds: f64,
    threads: usize,
    figures: Vec<FigureTiming>,
    cache: CacheStats,
    cache_exactly_once: bool,
}

fn main() {
    let mut ctx = ExpContext::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instructions" => {
                ctx.instructions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--instructions needs a number");
            }
            "--sweep-instructions" => {
                ctx.sweep_instructions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sweep-instructions needs a number");
            }
            "--results-dir" => {
                ctx.results_dir = args.next().expect("--results-dir needs a path").into();
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments <id>...|all [--instructions N] \
                     [--sweep-instructions N] [--results-dir DIR]\n\
                     ids: {}",
                    ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("no experiment ids given; try `experiments all` or --help");
        std::process::exit(2);
    }
    std::fs::create_dir_all(&ctx.results_dir).expect("create results dir");

    let run_started = std::time::Instant::now();
    let mut figures = Vec::new();
    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment(id, &ctx) {
            Ok(report) => {
                let seconds = started.elapsed().as_secs_f64();
                println!("==== {id} ({seconds:.1}s) ====");
                println!("{report}");
                let path = ctx.results_dir.join(format!("{id}.txt"));
                let mut f = std::fs::File::create(&path).expect("create report file");
                f.write_all(report.as_bytes()).expect("write report");
                figures.push(FigureTiming {
                    id: id.clone(),
                    seconds,
                });
            }
            Err(e) => {
                eprintln!("{id}: {e}");
                std::process::exit(2);
            }
        }
    }

    let cache = twig_bench::cache::global().stats();
    assert!(
        cache.exactly_once(),
        "artifact regenerated more than once per process: {cache:?}"
    );
    let report = BenchReport {
        total_seconds: run_started.elapsed().as_secs_f64(),
        threads: twig_sched::num_threads(),
        figures,
        cache_exactly_once: cache.exactly_once(),
        cache,
    };
    let path = ctx.results_dir.join("bench_results.json");
    let json = twig_serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&path, json).expect("write bench_results.json");
    println!(
        "wrote {} ({} threads, {:.1}s total, cache: {} hits / {} misses across artifacts)",
        path.display(),
        report.threads,
        report.total_seconds,
        report.cache.setup_hits + report.cache.events_hits + report.cache.profile_hits,
        report.cache.setup_misses + report.cache.events_misses + report.cache.profile_misses,
    );
}
