//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments <id>...|all [--instructions N] [--sweep-instructions N]
//!                         [--results-dir DIR] [--resume] [--strict]
//! ```
//!
//! Reports print to stdout and are also written to `results/<id>.txt`.
//! Every run additionally writes `results/bench_results.json` (wall-clock
//! time per figure plus artifact-cache counters) and
//! `results/run_manifest.json` (per-cell and per-experiment status,
//! attempts, wall time — the machine-readable fault/robustness record).
//!
//! Fault tolerance: each experiment runs under `catch_unwind`, and each
//! headline matrix cell runs supervised (panic isolation, watchdog,
//! retry; see `docs/ROBUSTNESS.md`). A failed cell degrades its figures
//! to `FAILED(<reason>)` markers; a failed experiment is quarantined and
//! the run continues. The process still exits 0 for a *completed* run
//! with quarantined failures — pass `--strict` to exit 1 instead when
//! anything failed. Completed cells are checkpointed under
//! `<results-dir>/.checkpoints/`; `--resume` loads them so a crashed or
//! faulted run re-executes only the missing cells.
//!
//! Crash-only: artifacts publish atomically, startup heals temp/journal
//! residue (surfaced under `healed` in the manifest), and a `.lock` file
//! serializes runs per results directory — a second concurrent run exits
//! 6 naming the holding pid, while a dead holder's lock is stolen.

use std::panic::{catch_unwind, AssertUnwindSafe};

use twig_bench::manifest::{self, ExperimentRecord};
use twig_bench::{run_experiment, CacheStats, ExpContext, ALL_EXPERIMENTS};
use twig_serde::Serialize;

#[derive(Serialize)]
struct FigureTiming {
    id: String,
    seconds: f64,
}

/// The timing/caching report written to `results/bench_results.json`.
///
/// `schema_version` history:
/// * 1 (implicit; field absent): total/threads/figures/cache.
/// * 2: added `schema_version` itself, plus the parallelism breakdown
///   (`threads` = in-process scheduler cap, `procs` = `TWIG_NUM_PROCS`
///   matrix worker processes).
#[derive(Serialize)]
struct BenchReport {
    schema_version: u32,
    total_seconds: f64,
    /// In-process worker threads (the scheduler cap).
    threads: usize,
    /// Matrix worker processes (`TWIG_NUM_PROCS`; 1 = no sharding).
    procs: usize,
    figures: Vec<FigureTiming>,
    cache: CacheStats,
    cache_exactly_once: bool,
}

/// `bench_results.json` schema version written by this binary.
const BENCH_SCHEMA_VERSION: u32 = 2;

fn main() {
    let mut ctx = ExpContext {
        checkpoints: true,
        ..ExpContext::default()
    };
    let mut strict = false;
    let mut obs_level: Option<twig_obs::ObsLevel> = None;
    let mut obs_attr: Option<twig_obs::AttrConfig> = None;
    let mut obs_window: Option<Option<u64>> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instructions" => {
                ctx.instructions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--instructions needs a number");
            }
            "--sweep-instructions" => {
                ctx.sweep_instructions = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--sweep-instructions needs a number");
            }
            "--results-dir" => {
                ctx.results_dir = args.next().expect("--results-dir needs a path").into();
            }
            "--resume" => ctx.resume = true,
            "--shard" => {
                // Hidden: multi-process matrix workers are spawned with
                // `--shard i/N` by the parent run (TWIG_NUM_PROCS > 1).
                let text = args.next().expect("--shard needs i/N");
                ctx.shard = Some(
                    twig_sched::ShardSpec::parse(&text)
                        .unwrap_or_else(|e| panic!("--shard: {e}")),
                );
            }
            "--strict" => strict = true,
            "--obs" => {
                let text = args.next().expect("--obs needs off | counters | trace[=N]");
                obs_level = Some(
                    twig_obs::ObsLevel::parse(&text).unwrap_or_else(|e| panic!("--obs: {e}")),
                );
            }
            "--obs-attr" => {
                let text = args
                    .next()
                    .expect("--obs-attr needs off | on | k=N,sample=N");
                obs_attr = Some(
                    twig_obs::AttrConfig::parse(&text)
                        .unwrap_or_else(|e| panic!("--obs-attr: {e}")),
                );
            }
            "--obs-window" => {
                let text = args.next().expect("--obs-window needs off | window=N");
                obs_window = Some(
                    twig_obs::parse_window_spec(&text)
                        .unwrap_or_else(|e| panic!("--obs-window: {e}")),
                );
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments <id>...|all [--instructions N] \
                     [--sweep-instructions N] [--results-dir DIR] [--resume] [--strict] \
                     [--obs off|counters|trace[=N]] [--obs-attr off|on|k=N,sample=N] \
                     [--obs-window off|window=N]\n\
                     ids: {}",
                    ALL_EXPERIMENTS.join(" ")
                );
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() && ctx.shard.is_none() {
        eprintln!("no experiment ids given; try `experiments all` or --help");
        std::process::exit(2);
    }
    // Compose the observability override: start from the environment
    // (`TWIG_OBS`/`TWIG_OBS_ATTR`), let explicit flags win field-wise, and
    // pin the result once (explicit arg > env > default).
    if obs_level.is_some() || obs_attr.is_some() || obs_window.is_some() {
        let mut obs = twig_obs::ObsConfig::from_env()
            .unwrap_or_else(|e| panic!("observability environment: {e}"));
        if let Some(level) = obs_level {
            obs.level = level;
        }
        if let Some(attr) = obs_attr {
            obs.attr = attr;
        }
        if let Some(window) = obs_window {
            obs.window = window;
        }
        twig_obs::set_global_override(obs);
    }
    std::fs::create_dir_all(&ctx.results_dir).expect("create results dir");
    // One run per results directory: the parent (never shard workers,
    // which share the parent's directory by design) takes the `.lock`
    // guard for the whole run. A dead holder's lock is stolen; a live one
    // is a hard, typed refusal (exit 6).
    let run_lock = if ctx.shard.is_none() {
        let lock = match twig_sched::RunLock::acquire(&ctx.results_dir) {
            Ok(lock) => lock,
            Err(e @ twig_sched::LockError::Held { .. }) => {
                eprintln!("experiments: {e}");
                std::process::exit(6);
            }
            Err(twig_sched::LockError::Io(e)) => {
                panic!("cannot acquire run lock in {}: {e}", ctx.results_dir.display())
            }
        };
        // Heal whatever a killed predecessor left behind before anything
        // parses the directory's contents; surface it in the manifest.
        // Parent-only: a shard worker recovering mid-run would race the
        // other workers' in-flight temp files.
        for healed in twig_sched::recover_dir(&ctx.results_dir) {
            eprintln!("recovered crash residue: {healed}");
            manifest::record_healed(&healed.path, healed.action);
        }
        Some(lock)
    } else {
        None
    };
    // Forensic integrity dumps land next to the run's other outputs
    // (unless the operator already pinned the directory via
    // TWIG_INTEGRITY_DUMP_DIR).
    let harness = twig_types::HarnessConfig::global();
    if harness.integrity_dump_dir.value.is_none() {
        twig_sim::integrity::dump::set_dump_dir(ctx.results_dir.join(".integrity"));
    }
    // Whenever anything records — counters tier and up, attribution
    // alone, or the windowed timeline — per-cell snapshots (plus traces
    // at the trace tier, attribution profiles, and timeline series when
    // enabled) land under <results-dir>/metrics/.
    let obs_effective = twig_obs::ObsConfig::default();
    if obs_effective.recording() || obs_effective.window.is_some() {
        twig_bench::telemetry::set_metrics_dir(ctx.results_dir.join("metrics"));
    }

    // Worker mode: compute this shard's headline cells (checkpointing
    // each) and exit. Reports, manifests, and bench_results.json belong
    // to the parent; a worker writing them would clobber the real run's.
    if let Some(shard) = ctx.shard {
        let ran = twig_bench::runner::shard_worker(&ctx);
        eprintln!("matrix worker shard {}: {ran} task(s) done", shard.to_arg());
        return;
    }

    let run_started = std::time::Instant::now();
    let mut figures = Vec::new();
    let mut experiments = Vec::new();
    let mut unknown_id = false;
    for id in &ids {
        let started = std::time::Instant::now();
        // Isolate each experiment: a panic that escapes the supervised
        // matrix (figure-local code, a degraded-data division, …) fails
        // this experiment only, never the whole run.
        let outcome = catch_unwind(AssertUnwindSafe(|| run_experiment(id, &ctx)));
        let seconds = started.elapsed().as_secs_f64();
        match outcome {
            Ok(Ok(report)) => {
                println!("==== {id} ({seconds:.1}s) ====");
                println!("{report}");
                let path = ctx.results_dir.join(format!("{id}.txt"));
                twig_sched::publish_atomic(&path, report.as_bytes(), Some("figure-tmp"), None)
                    .expect("publish report file");
                figures.push(FigureTiming {
                    id: id.clone(),
                    seconds,
                });
                experiments.push(ExperimentRecord {
                    id: id.clone(),
                    status: "ok".to_string(),
                    seconds,
                    reason: None,
                });
            }
            Ok(Err(e)) => {
                // Unknown id: a usage error, not a fault to quarantine.
                eprintln!("{id}: {e}");
                unknown_id = true;
                experiments.push(ExperimentRecord {
                    id: id.clone(),
                    status: "failed".to_string(),
                    seconds,
                    reason: Some(e),
                });
            }
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                eprintln!("==== {id} FAILED ({seconds:.1}s): {reason}");
                experiments.push(ExperimentRecord {
                    id: id.clone(),
                    status: "failed".to_string(),
                    seconds,
                    reason: Some(reason),
                });
            }
        }
    }

    let run_manifest = manifest::build(ctx.resume, experiments);
    let manifest_path = ctx.results_dir.join("run_manifest.json");
    let manifest_json =
        twig_serde_json::to_string_pretty(&run_manifest).expect("serialize run manifest");
    twig_sched::publish_atomic(
        &manifest_path,
        manifest_json.as_bytes(),
        Some("manifest-tmp"),
        Some("manifest-published"),
    )
    .expect("publish run_manifest.json");

    let cache = twig_bench::cache::global().stats();
    assert!(
        cache.exactly_once(),
        "artifact regenerated more than once per process: {cache:?}"
    );
    let report = BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        total_seconds: run_started.elapsed().as_secs_f64(),
        threads: twig_sched::num_threads(),
        procs: twig_sched::num_procs(),
        figures,
        cache_exactly_once: cache.exactly_once(),
        cache,
    };
    let path = ctx.results_dir.join("bench_results.json");
    let json = twig_serde_json::to_string_pretty(&report).expect("serialize bench report");
    twig_sched::publish_atomic(&path, json.as_bytes(), Some("bench-tmp"), None)
        .expect("publish bench_results.json");
    println!(
        "wrote {} ({} threads, {:.1}s total, cache: {} hits / {} misses across artifacts)",
        path.display(),
        report.threads,
        report.total_seconds,
        report.cache.setup_hits + report.cache.events_hits + report.cache.profile_hits,
        report.cache.setup_misses + report.cache.events_misses + report.cache.profile_misses,
    );
    let degraded = run_manifest.failed_cells + run_manifest.failed_experiments;
    if degraded > 0 {
        println!(
            "run completed DEGRADED: {} failed cell(s), {} failed experiment(s); \
             see {} and re-run with --resume to fill the gaps",
            run_manifest.failed_cells,
            run_manifest.failed_experiments,
            manifest_path.display(),
        );
    }
    // `process::exit` skips Drop; release the lock explicitly so a
    // degraded-but-completed run never leaves stale lock residue.
    drop(run_lock);
    if unknown_id {
        std::process::exit(2);
    }
    if strict && degraded > 0 {
        std::process::exit(1);
    }
}
