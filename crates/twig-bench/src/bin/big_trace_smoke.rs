//! CI big-trace smoke: out-of-core replay at data-center trace scale.
//!
//! Streams a ≥50M-event `.twgc` columnar trace to disk (never
//! materializing the stream), replays it through the Fig. 16 headline
//! cells — baseline FDIP, ideal BTB, Twig — over the mmap'd chunked
//! reader, and proves the streamed decode is bit-identical to an
//! in-memory run on a 1M-event prefix.
//!
//! The CI lane wraps this binary in `/usr/bin/time -v` and asserts max
//! RSS stays under the documented 256 MiB bound (see DESIGN.md): the
//! whole point of the streaming trace engine is that trace size and
//! resident memory are decoupled.
//!
//! Usage: `big_trace_smoke [events]` (default 50,000,000).

use std::sync::Arc;
use std::time::Instant;

use twig::{TwigConfig, TwigOptimizer};
use twig_sim::{PlainBtb, SimConfig, Simulator};
use twig_workload::{
    write_columnar_file, AppId, BlockEvent, ColumnarReader, ColumnarSource, InputConfig,
    ProgramGenerator, Walker, WorkloadSpec,
};

const DEFAULT_EVENTS: u64 = 50_000_000;
const PREFIX_EVENTS: usize = 1_000_000;

fn main() {
    let target: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("events must be an integer"))
        .unwrap_or(DEFAULT_EVENTS);
    let spec = WorkloadSpec::preset(AppId::Kafka);
    let generator = ProgramGenerator::new(spec.clone());
    let program = generator.generate();
    let input = InputConfig::numbered(0);
    let config = SimConfig::paper_baseline(spec.backend_extra_cpki);

    let dir = std::env::temp_dir().join(format!("twig-big-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create smoke dir");
    let path = dir.join("big.twgc");

    // Phase 1: stream the trace straight from the walker to disk.
    let t = Instant::now();
    let written = write_columnar_file(&path, Walker::new(&program, input).take(target as usize))
        .expect("stream trace to disk");
    assert_eq!(written, target, "walker must yield the full event budget");
    let file_bytes = std::fs::metadata(&path).expect("stat trace").len();
    let reader = Arc::new(ColumnarReader::open(&path).expect("open columnar trace"));
    println!(
        "wrote {written} events / {:.1} MiB / {} chunks in {:.1}s",
        file_bytes as f64 / (1024.0 * 1024.0),
        reader.chunk_count(),
        t.elapsed().as_secs_f64()
    );

    // Phase 2: Fig. 16-shaped cells. Train Twig on the in-memory 1M-event
    // prefix (training is cheap and bounded), then score baseline, ideal,
    // and Twig over the full streamed trace — three bounded-memory passes
    // of one resettable source.
    let t = Instant::now();
    let prefix: Vec<BlockEvent> = ColumnarSource::from_reader(Arc::clone(&reader))
        .take(PREFIX_EVENTS)
        .collect();
    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let profile =
        optimizer.collect_profile_from_events(&program, config, &prefix, u64::MAX);
    let plans = optimizer.analyze_for(&profile, &program);
    let optimized = optimizer.rewrite_of(&program, &generator.layout_options(), &plans);
    let mut source = ColumnarSource::from_reader(Arc::clone(&reader));
    let report =
        optimizer.evaluate_with_source(&program, &optimized, config, &mut source, u64::MAX);
    println!(
        "fig16 cell kafka: twig +{:.2}% ideal +{:.2}% ({:.0}% of ideal) in {:.1}s",
        report.speedup_percent,
        report.ideal_speedup_percent,
        report.pct_of_ideal * 100.0,
        t.elapsed().as_secs_f64()
    );
    assert!(
        report.ideal_speedup_percent > 0.0,
        "an ideal BTB must beat the baseline on a paper-scale trace"
    );

    // Phase 3: the streamed decode must be bit-identical to memory. Replay
    // the 1M-event prefix both ways through identical simulators.
    let mut streamed_sim = Simulator::new(&program, config, PlainBtb::new(&config));
    let streamed = streamed_sim.run(
        ColumnarSource::from_reader(Arc::clone(&reader)).take(PREFIX_EVENTS),
        u64::MAX,
    );
    let mut memory_sim = Simulator::new(&program, config, PlainBtb::new(&config));
    let in_memory = memory_sim.run(prefix.iter().copied(), u64::MAX);
    assert_eq!(
        streamed, in_memory,
        "streamed and in-memory stats diverge on the 1M-event prefix"
    );
    assert_eq!(
        format!("{streamed:?}"),
        format!("{in_memory:?}"),
        "rendered stats must be byte-identical"
    );
    println!("prefix equivalence OK: streamed == in-memory over {PREFIX_EVENTS} events");

    std::fs::remove_dir_all(&dir).expect("clean smoke dir");
    if let Some(peak) = peak_rss_mib() {
        println!("peak RSS {peak} MiB (documented bound: 256 MiB)");
    }
    println!("big-trace smoke OK ({written} events)");
}

/// Peak resident set size in MiB (`VmHWM` from `/proc/self/status`) —
/// self-reported so the bound is visible even outside the CI lane's
/// `/usr/bin/time -v` wrapper. `None` off Linux.
fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024)
}
