//! CI drills for the simulation integrity layer.
//!
//! Three subcommands, all of which exit non-zero on failure:
//!
//! * `smoke [--instructions N]` — runs one small workload per paper app
//!   under the `paranoid` tier (cheap invariants every cycle, differential
//!   reference models armed) and asserts (a) no violation fires on healthy
//!   code and (b) the statistics are bit-identical to an `off`-tier run —
//!   checking must never perturb results.
//! * `mutate [--kind K] [--at C] [--instructions N]` — arms a seeded
//!   corruption (`btb-occupancy` or `ras-depth`), asserts the sampled tier
//!   catches it within its detection bound (one deep period plus one
//!   sample period for structural corruptions), that the run degrades to a
//!   typed violation instead of aborting, and that the forensic dump both
//!   loads and replays deterministically.
//! * `replay <dump.json>` — re-runs the workload named by a drill dump's
//!   label under the dumped configuration and asserts the same violation
//!   kind fires at the same cycle.

use std::path::Path;
use std::process::ExitCode;

use twig_bench::runner::AppSetup;
use twig_sim::integrity::dump::StateDump;
use twig_sim::{
    IntegrityConfig, IntegrityViolation, MutationKind, MutationSpec, PlainBtb, SimConfig,
    SimStats, Simulator,
};
use twig_workload::AppId;

/// Drill event streams always use input 1 so replay is deterministic.
const DRILL_INPUT: u32 = 1;

fn run_app(
    setup: &AppSetup,
    integrity: IntegrityConfig,
    budget: u64,
    label: &str,
) -> Result<SimStats, Box<IntegrityViolation>> {
    let config = SimConfig {
        integrity,
        ..setup.sim_config
    };
    let mut sim = Simulator::new(&setup.program, config, PlainBtb::new(&config));
    sim.set_integrity_label(label);
    sim.try_run(setup.fresh_events(DRILL_INPUT, budget), budget)
}

/// `smoke`: paranoid + differential must pass on every paper app and must
/// not perturb the simulation's statistics.
fn smoke(budget: u64) -> Result<(), String> {
    for app in AppId::ALL {
        let setup = AppSetup::new(app);
        let label = format!("drill:{}/smoke", app.name());
        let paranoid = run_app(&setup, IntegrityConfig::paranoid(), budget, &label)
            .map_err(|v| format!("{}: paranoid run failed: {v}", app.name()))?;
        let off = run_app(&setup, IntegrityConfig::off(), budget, &label)
            .map_err(|v| format!("{}: off-tier run failed: {v}", app.name()))?;
        if paranoid != off {
            return Err(format!(
                "{}: paranoid checking perturbed the simulation \
                 (paranoid {} cycles vs off {} cycles)",
                app.name(),
                paranoid.cycles,
                off.cycles
            ));
        }
        println!(
            "smoke {:<12} ok: {} cycles, {} retired, differential clean",
            app.name(),
            paranoid.cycles,
            paranoid.retired_instructions
        );
    }
    Ok(())
}

/// `mutate`: a seeded corruption must be caught within the tier's
/// detection bound, degrade to a typed violation, and emit a loadable,
/// replayable dump.
fn mutate(kind: MutationKind, at_cycle: u64, budget: u64) -> Result<(), String> {
    let app = AppId::ALL[0];
    let setup = AppSetup::new(app);
    let integrity = IntegrityConfig {
        mutate: Some(MutationSpec { at_cycle, kind }),
        ..IntegrityConfig::sampled(64)
    };
    let label = format!("drill:{}/mutate", app.name());
    let violation = match run_app(&setup, integrity, budget, &label) {
        Ok(stats) => {
            return Err(format!(
                "seeded {} corruption at cycle {at_cycle} was never detected \
                 (run completed cleanly after {} cycles)",
                kind.as_str(),
                stats.cycles
            ));
        }
        Err(violation) => violation,
    };
    // Structural corruptions (BTB occupancy) surface at the next deep
    // scan; counter corruptions (RAS depth) at the next cheap sweep.
    let period = integrity.level.check_period().unwrap_or(1);
    let bound = match kind {
        MutationKind::BtbOccupancy => integrity.deep_period + period,
        MutationKind::RasDepth => period,
    };
    if violation.cycle < at_cycle || violation.cycle > at_cycle + bound {
        return Err(format!(
            "detected at cycle {} — outside [{at_cycle}, {}]: {violation}",
            violation.cycle,
            at_cycle + bound
        ));
    }
    let dump_path = violation
        .dump_path
        .as_ref()
        .ok_or_else(|| format!("violation carried no dump path: {violation}"))?;
    let dump = StateDump::load(dump_path)?;
    println!(
        "mutate ok: {} injected at {at_cycle}, caught at {} ({}), dump {}",
        kind.as_str(),
        violation.cycle,
        violation.kind.as_str(),
        dump_path.display()
    );
    // Close the loop: the dump must replay to the identical violation.
    replay_dump(&dump)?;
    Ok(())
}

/// Re-runs the simulation a drill dump describes and checks the violation
/// reproduces exactly.
fn replay_dump(dump: &StateDump) -> Result<(), String> {
    let app_name = dump
        .label
        .split(':')
        .nth(1)
        .and_then(|s| s.split('/').next())
        .ok_or_else(|| format!("label {:?} does not name an app", dump.label))?;
    let app = AppId::ALL
        .iter()
        .copied()
        .find(|a| a.name() == app_name)
        .ok_or_else(|| format!("unknown app {app_name:?} in label {:?}", dump.label))?;
    let setup = AppSetup::new(app);
    let replay_label = format!("replay:{app_name}");
    match run_app(
        &setup,
        dump.config.integrity,
        dump.instruction_budget,
        &replay_label,
    ) {
        Ok(_) => Err(format!(
            "replay of {} completed cleanly; expected {} at cycle {}",
            dump.label, dump.kind, dump.cycle
        )),
        Err(violation) => {
            if violation.kind.as_str() != dump.kind || violation.cycle != dump.cycle {
                return Err(format!(
                    "replay diverged: dump says {} at cycle {}, replay hit {} at cycle {}",
                    dump.kind,
                    dump.cycle,
                    violation.kind.as_str(),
                    violation.cycle
                ));
            }
            println!(
                "replay ok: {} at cycle {} reproduced deterministically",
                dump.kind, dump.cycle
            );
            Ok(())
        }
    }
}

fn usage() -> String {
    "usage: integrity_drill smoke [--instructions N]\n\
     \x20      integrity_drill mutate [--kind btb-occupancy|ras-depth] [--at CYCLE] \
     [--instructions N]\n\
     \x20      integrity_drill replay <dump.json>"
        .to_string()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let mut budget: u64 = match cmd.as_str() {
        "smoke" => 30_000,
        _ => 100_000,
    };
    let mut kind = MutationKind::BtbOccupancy;
    let mut at_cycle: u64 = 10_000;
    let mut dump_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--instructions" => {
                budget = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--instructions needs a number");
            }
            "--at" => {
                at_cycle = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--at needs a cycle number");
            }
            "--kind" => {
                let text = args.next().expect("--kind needs a mutation kind");
                kind = match MutationSpec::parse(&format!("{text}@0")) {
                    Ok(spec) => spec.kind,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                };
            }
            other if dump_path.is_none() && !other.starts_with('-') => {
                dump_path = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let result = match cmd.as_str() {
        "smoke" => smoke(budget),
        "mutate" => mutate(kind, at_cycle, budget),
        "replay" => match dump_path {
            Some(path) => {
                StateDump::load(Path::new(&path)).and_then(|dump| replay_dump(&dump))
            }
            None => Err(usage()),
        },
        other => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("integrity_drill {cmd} FAILED: {message}");
            ExitCode::FAILURE
        }
    }
}
