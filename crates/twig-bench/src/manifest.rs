//! The machine-readable run manifest (`results/run_manifest.json`).
//!
//! Every supervised matrix cell and every experiment report records its
//! outcome here; the `experiments` binary snapshots the collector at the
//! end of the run (successful *or* degraded) and writes one JSON document
//! listing per-cell status, attempts, and wall time. CI's fault-injection
//! job greps this file to assert that injected faults were quarantined
//! and that a `--resume` run went back to fully green.

use std::sync::Mutex;

use twig_serde::Serialize;

/// Manifest schema version.
///
/// v2 added `effective_config` (the typed `TWIG_*` harness settings and
/// where each came from) and `metrics` (per-cell observability exports).
/// v3 added `obs_attr` (the attribution spec) and `attribution`
/// (per-cell attribution-profile exports).
/// v4 added `export_failures` (typed per-cell export degradations) and
/// `healed` (crash residue rolled back/forward at startup).
/// v5 added `obs_window` (the windowed-timeline knob) and `timelines`
/// (per-cell windowed time-series exports).
pub const MANIFEST_VERSION: u32 = 5;

/// How a cell's value was obtained (or lost).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellStatus {
    /// Computed in this run.
    Ok,
    /// Loaded from a checkpoint written by a previous run.
    Checkpointed,
    /// Failed after all retries; quarantined.
    Failed,
}

impl CellStatus {
    /// The manifest's string encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Checkpointed => "checkpointed",
            CellStatus::Failed => "failed",
        }
    }
}

/// One matrix cell's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct CellRecord {
    /// Cell id, e.g. `sim:kafka/twig` or `meta:kafka`.
    pub id: String,
    /// `ok` / `checkpointed` / `failed`.
    pub status: String,
    /// Attempts made (0 when served from a checkpoint).
    pub attempts: u32,
    /// Wall time across attempts, milliseconds.
    pub wall_ms: u64,
    /// Failure detail (panic payload, timeout), if any.
    pub reason: Option<String>,
}

/// One experiment report's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentRecord {
    /// Experiment id (`fig16`, `tab03`, …).
    pub id: String,
    /// `ok` / `failed`.
    pub status: String,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Failure detail, if any.
    pub reason: Option<String>,
}

/// One harness setting as resolved at startup (the `Display` dump of the
/// typed config, structured).
#[derive(Clone, Debug, Serialize)]
pub struct EffectiveSetting {
    /// Environment-variable name (`TWIG_NUM_THREADS`, …).
    pub name: String,
    /// Resolved value (`"auto"`/`"none"` for unset optionals).
    pub value: String,
    /// Where it came from: `default` / `env` / `explicit`.
    pub source: String,
}

/// One cell's exported observability snapshot (counters tier and up).
#[derive(Clone, Debug, Serialize)]
pub struct MetricsRecord {
    /// Cell id, e.g. `sim:kafka/twig`.
    pub id: String,
    /// Path of the metrics JSON, relative to the results directory.
    pub path: String,
    /// Number of counters in the snapshot.
    pub counters: usize,
    /// Number of histograms in the snapshot.
    pub histograms: usize,
}

/// One cell's exported attribution profile (`TWIG_OBS_ATTR` runs).
#[derive(Clone, Debug, Serialize)]
pub struct AttributionRecord {
    /// Cell id, e.g. `sim:kafka/twig`.
    pub id: String,
    /// Path of the attribution JSON, relative to the results directory.
    pub path: String,
    /// Path of the folded-stack export, relative to the results directory.
    pub folded_path: String,
    /// Number of tracked branch sites in the profile.
    pub entries: usize,
    /// Exact cycles attributed across all events.
    pub total_cycles: u64,
}

/// One cell's exported windowed timeline (`TWIG_OBS_WINDOW` runs).
#[derive(Clone, Debug, Serialize)]
pub struct TimelineRecord {
    /// Cell id, e.g. `sim:kafka/twig`.
    pub id: String,
    /// Path of the timeline JSON, relative to the results directory.
    pub path: String,
    /// Number of windows in the snapshot.
    pub windows: usize,
    /// Number of detected phase segments.
    pub phases: usize,
}

/// One export that could not be published: the cell's data survives in
/// memory (figures are unaffected) but its observability artifact is
/// missing, with a typed reason instead of a silent drop.
#[derive(Clone, Debug, Serialize)]
pub struct ExportFailureRecord {
    /// Cell id, e.g. `sim:kafka/twig`.
    pub id: String,
    /// Which export degraded: `metrics` / `attribution` / `trace` /
    /// `timeline`.
    pub artifact: String,
    /// Why it failed (I/O error text, injected disk-full, serialize).
    pub reason: String,
}

/// One piece of crash residue healed during startup recovery.
#[derive(Clone, Debug, Serialize)]
pub struct HealedRecord {
    /// The residue file that was acted on.
    pub path: String,
    /// What recovery did: `rolled-back-temp`, `rolled-forward-journal`,
    /// or `discarded-torn-journal`.
    pub action: String,
}

/// The document written to `run_manifest.json`.
#[derive(Debug, Serialize)]
pub struct RunManifest {
    /// Schema version.
    pub version: u32,
    /// Whether this run resumed from checkpoints.
    pub resume: bool,
    /// The active `TWIG_FAULT_SPEC`, if any.
    pub fault_spec: Option<String>,
    /// The observability tier the run executed at.
    pub obs: String,
    /// The attribution spec the run executed with (`off` when disabled).
    pub obs_attr: String,
    /// The windowed-timeline knob the run executed with (`off` when
    /// disabled, `window=N` otherwise).
    pub obs_window: String,
    /// Every `TWIG_*` knob as resolved by the typed harness config.
    pub effective_config: Vec<EffectiveSetting>,
    /// Number of cells with status `failed`.
    pub failed_cells: usize,
    /// Number of experiments with status `failed`.
    pub failed_experiments: usize,
    /// Per-cell outcomes, sorted by id.
    pub cells: Vec<CellRecord>,
    /// Per-experiment outcomes, in run order.
    pub experiments: Vec<ExperimentRecord>,
    /// Per-cell metrics exports, sorted by id (empty at the `off` tier).
    pub metrics: Vec<MetricsRecord>,
    /// Per-cell attribution exports, sorted by id (empty unless
    /// `TWIG_OBS_ATTR` enabled attribution).
    pub attribution: Vec<AttributionRecord>,
    /// Per-cell windowed-timeline exports, sorted by id (empty unless
    /// `TWIG_OBS_WINDOW` selected a window).
    pub timelines: Vec<TimelineRecord>,
    /// Exports that degraded with a typed reason, sorted by id then
    /// artifact (empty on a healthy run).
    pub export_failures: Vec<ExportFailureRecord>,
    /// Crash residue healed by startup recovery, sorted by path (empty
    /// when the previous run shut down cleanly).
    pub healed: Vec<HealedRecord>,
}

static CELLS: Mutex<Vec<CellRecord>> = Mutex::new(Vec::new());

fn cells() -> std::sync::MutexGuard<'static, Vec<CellRecord>> {
    CELLS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one cell outcome into the process-wide collector.
pub fn record_cell(
    id: &str,
    status: CellStatus,
    attempts: u32,
    wall_ms: u64,
    reason: Option<String>,
) {
    cells().push(CellRecord {
        id: id.to_string(),
        status: status.as_str().to_string(),
        attempts,
        wall_ms,
        reason,
    });
}

/// Snapshot of all recorded cells, sorted by id for a deterministic
/// manifest layout regardless of scheduling order.
pub fn snapshot_cells() -> Vec<CellRecord> {
    let mut out = cells().clone();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

/// Clears the collector (tests only; the experiments binary records one
/// process-lifetime of cells).
pub fn reset_cells() {
    cells().clear();
    metrics().clear();
    attribution().clear();
    timelines().clear();
    export_failures().clear();
    healed().clear();
}

static METRICS: Mutex<Vec<MetricsRecord>> = Mutex::new(Vec::new());

fn metrics() -> std::sync::MutexGuard<'static, Vec<MetricsRecord>> {
    METRICS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one cell's metrics export into the process-wide collector.
pub fn record_metrics(id: &str, path: &str, counters: usize, histograms: usize) {
    metrics().push(MetricsRecord {
        id: id.to_string(),
        path: path.to_string(),
        counters,
        histograms,
    });
}

/// Snapshot of all recorded metrics exports, sorted by id.
pub fn snapshot_metrics() -> Vec<MetricsRecord> {
    let mut out = metrics().clone();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

static ATTRIBUTION: Mutex<Vec<AttributionRecord>> = Mutex::new(Vec::new());

fn attribution() -> std::sync::MutexGuard<'static, Vec<AttributionRecord>> {
    ATTRIBUTION
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one cell's attribution export into the process-wide collector.
pub fn record_attribution(
    id: &str,
    path: &str,
    folded_path: &str,
    entries: usize,
    total_cycles: u64,
) {
    attribution().push(AttributionRecord {
        id: id.to_string(),
        path: path.to_string(),
        folded_path: folded_path.to_string(),
        entries,
        total_cycles,
    });
}

/// Snapshot of all recorded attribution exports, sorted by id.
pub fn snapshot_attribution() -> Vec<AttributionRecord> {
    let mut out = attribution().clone();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

static TIMELINES: Mutex<Vec<TimelineRecord>> = Mutex::new(Vec::new());

fn timelines() -> std::sync::MutexGuard<'static, Vec<TimelineRecord>> {
    TIMELINES
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one cell's timeline export into the process-wide collector.
pub fn record_timeline(id: &str, path: &str, windows: usize, phases: usize) {
    timelines().push(TimelineRecord {
        id: id.to_string(),
        path: path.to_string(),
        windows,
        phases,
    });
}

/// Snapshot of all recorded timeline exports, sorted by id.
pub fn snapshot_timelines() -> Vec<TimelineRecord> {
    let mut out = timelines().clone();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

static EXPORT_FAILURES: Mutex<Vec<ExportFailureRecord>> = Mutex::new(Vec::new());

fn export_failures() -> std::sync::MutexGuard<'static, Vec<ExportFailureRecord>> {
    EXPORT_FAILURES
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one degraded export into the process-wide collector.
pub fn record_export_failure(id: &str, artifact: &str, reason: &str) {
    export_failures().push(ExportFailureRecord {
        id: id.to_string(),
        artifact: artifact.to_string(),
        reason: reason.to_string(),
    });
}

/// Snapshot of all degraded exports, sorted by id then artifact.
pub fn snapshot_export_failures() -> Vec<ExportFailureRecord> {
    let mut out = export_failures().clone();
    out.sort_by(|a, b| (&a.id, &a.artifact).cmp(&(&b.id, &b.artifact)));
    out
}

static HEALED: Mutex<Vec<HealedRecord>> = Mutex::new(Vec::new());

fn healed() -> std::sync::MutexGuard<'static, Vec<HealedRecord>> {
    HEALED.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one healed crash residue into the process-wide collector.
pub fn record_healed(path: &str, action: &str) {
    healed().push(HealedRecord {
        path: path.to_string(),
        action: action.to_string(),
    });
}

/// Snapshot of all healed residue, sorted by path.
pub fn snapshot_healed() -> Vec<HealedRecord> {
    let mut out = healed().clone();
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

/// The effective harness configuration, structured for the manifest.
pub fn effective_config() -> Vec<EffectiveSetting> {
    twig_types::HarnessConfig::global()
        .entries()
        .into_iter()
        .map(|entry| EffectiveSetting {
            name: entry.name.to_string(),
            value: entry.value,
            source: entry.source.to_string(),
        })
        .collect()
}

/// Assembles the manifest document.
pub fn build(resume: bool, experiments: Vec<ExperimentRecord>) -> RunManifest {
    let cells = snapshot_cells();
    let failed_cells = cells.iter().filter(|c| c.status == "failed").count();
    let failed_experiments = experiments.iter().filter(|e| e.status == "failed").count();
    let obs_config = twig_sim::ObsConfig::default();
    RunManifest {
        version: MANIFEST_VERSION,
        resume,
        fault_spec: twig_sched::fault::global().raw.clone(),
        obs: obs_config.level.as_text(),
        obs_attr: obs_config.attr.as_text(),
        obs_window: obs_config.window_text(),
        effective_config: effective_config(),
        failed_cells,
        failed_experiments,
        cells,
        experiments,
        metrics: snapshot_metrics(),
        attribution: snapshot_attribution(),
        timelines: snapshot_timelines(),
        export_failures: snapshot_export_failures(),
        healed: snapshot_healed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collectors are process-wide; tests touching them must not
    /// interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn cells_are_sorted_and_counted() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset_cells();
        record_cell("sim:z/late", CellStatus::Failed, 2, 10, Some("panicked: x".into()));
        record_cell("sim:a/early", CellStatus::Ok, 1, 5, None);
        record_cell("meta:kafka", CellStatus::Checkpointed, 0, 0, None);
        let manifest = build(true, vec![ExperimentRecord {
            id: "fig16".into(),
            status: "ok".into(),
            seconds: 1.5,
            reason: None,
        }]);
        assert_eq!(manifest.version, MANIFEST_VERSION);
        assert!(manifest.resume);
        assert_eq!(manifest.failed_cells, 1);
        assert_eq!(manifest.failed_experiments, 0);
        let ids: Vec<&str> = manifest.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, vec!["meta:kafka", "sim:a/early", "sim:z/late"]);
        let json = twig_serde_json::to_string_pretty(&manifest).unwrap();
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("panicked: x"));
        reset_cells();
    }

    #[test]
    fn timeline_exports_are_recorded_and_sorted() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset_cells();
        record_timeline("sim:z/twig", "sim_z_twig.timeline.json", 12, 3);
        record_timeline("sim:a/twig", "sim_a_twig.timeline.json", 4, 1);
        let manifest = build(false, Vec::new());
        assert_eq!(manifest.obs_window, "off");
        let ids: Vec<&str> = manifest.timelines.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids, vec!["sim:a/twig", "sim:z/twig"]);
        assert_eq!(manifest.timelines[0].windows, 4);
        assert_eq!(manifest.timelines[1].phases, 3);
        let json = twig_serde_json::to_string_pretty(&manifest).unwrap();
        assert!(json.contains("\"timelines\""));
        assert!(json.contains("\"obs_window\": \"off\""));
        reset_cells();
    }

    #[test]
    fn export_failures_and_healed_residue_are_surfaced_sorted() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        reset_cells();
        record_export_failure("sim:z/twig", "trace", "disk full");
        record_export_failure("sim:a/twig", "metrics", "injected disk-full");
        record_export_failure("sim:a/twig", "attribution", "write failed: boom");
        record_healed("results/run_manifest.json.twig-tmp", "rolled-back-temp");
        record_healed("results/BENCH_trajectory.json.twig-journal", "rolled-forward-journal");
        let manifest = build(false, Vec::new());
        let keys: Vec<(&str, &str)> = manifest
            .export_failures
            .iter()
            .map(|f| (f.id.as_str(), f.artifact.as_str()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("sim:a/twig", "attribution"),
                ("sim:a/twig", "metrics"),
                ("sim:z/twig", "trace"),
            ]
        );
        let paths: Vec<&str> = manifest.healed.iter().map(|h| h.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "results/BENCH_trajectory.json.twig-journal",
                "results/run_manifest.json.twig-tmp",
            ]
        );
        let json = twig_serde_json::to_string_pretty(&manifest).unwrap();
        assert!(json.contains("\"export_failures\""));
        assert!(json.contains("\"healed\""));
        reset_cells();
    }
}
