//! The machine-readable run manifest (`results/run_manifest.json`).
//!
//! Every supervised matrix cell and every experiment report records its
//! outcome here; the `experiments` binary snapshots the collector at the
//! end of the run (successful *or* degraded) and writes one JSON document
//! listing per-cell status, attempts, and wall time. CI's fault-injection
//! job greps this file to assert that injected faults were quarantined
//! and that a `--resume` run went back to fully green.

use std::sync::Mutex;

use twig_serde::Serialize;

/// Manifest schema version.
///
/// v2 added `effective_config` (the typed `TWIG_*` harness settings and
/// where each came from) and `metrics` (per-cell observability exports).
/// v3 added `obs_attr` (the attribution spec) and `attribution`
/// (per-cell attribution-profile exports).
pub const MANIFEST_VERSION: u32 = 3;

/// How a cell's value was obtained (or lost).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellStatus {
    /// Computed in this run.
    Ok,
    /// Loaded from a checkpoint written by a previous run.
    Checkpointed,
    /// Failed after all retries; quarantined.
    Failed,
}

impl CellStatus {
    /// The manifest's string encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Checkpointed => "checkpointed",
            CellStatus::Failed => "failed",
        }
    }
}

/// One matrix cell's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct CellRecord {
    /// Cell id, e.g. `sim:kafka/twig` or `meta:kafka`.
    pub id: String,
    /// `ok` / `checkpointed` / `failed`.
    pub status: String,
    /// Attempts made (0 when served from a checkpoint).
    pub attempts: u32,
    /// Wall time across attempts, milliseconds.
    pub wall_ms: u64,
    /// Failure detail (panic payload, timeout), if any.
    pub reason: Option<String>,
}

/// One experiment report's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentRecord {
    /// Experiment id (`fig16`, `tab03`, …).
    pub id: String,
    /// `ok` / `failed`.
    pub status: String,
    /// Wall time, seconds.
    pub seconds: f64,
    /// Failure detail, if any.
    pub reason: Option<String>,
}

/// One harness setting as resolved at startup (the `Display` dump of the
/// typed config, structured).
#[derive(Clone, Debug, Serialize)]
pub struct EffectiveSetting {
    /// Environment-variable name (`TWIG_NUM_THREADS`, …).
    pub name: String,
    /// Resolved value (`"auto"`/`"none"` for unset optionals).
    pub value: String,
    /// Where it came from: `default` / `env` / `explicit`.
    pub source: String,
}

/// One cell's exported observability snapshot (counters tier and up).
#[derive(Clone, Debug, Serialize)]
pub struct MetricsRecord {
    /// Cell id, e.g. `sim:kafka/twig`.
    pub id: String,
    /// Path of the metrics JSON, relative to the results directory.
    pub path: String,
    /// Number of counters in the snapshot.
    pub counters: usize,
    /// Number of histograms in the snapshot.
    pub histograms: usize,
}

/// One cell's exported attribution profile (`TWIG_OBS_ATTR` runs).
#[derive(Clone, Debug, Serialize)]
pub struct AttributionRecord {
    /// Cell id, e.g. `sim:kafka/twig`.
    pub id: String,
    /// Path of the attribution JSON, relative to the results directory.
    pub path: String,
    /// Path of the folded-stack export, relative to the results directory.
    pub folded_path: String,
    /// Number of tracked branch sites in the profile.
    pub entries: usize,
    /// Exact cycles attributed across all events.
    pub total_cycles: u64,
}

/// The document written to `run_manifest.json`.
#[derive(Debug, Serialize)]
pub struct RunManifest {
    /// Schema version.
    pub version: u32,
    /// Whether this run resumed from checkpoints.
    pub resume: bool,
    /// The active `TWIG_FAULT_SPEC`, if any.
    pub fault_spec: Option<String>,
    /// The observability tier the run executed at.
    pub obs: String,
    /// The attribution spec the run executed with (`off` when disabled).
    pub obs_attr: String,
    /// Every `TWIG_*` knob as resolved by the typed harness config.
    pub effective_config: Vec<EffectiveSetting>,
    /// Number of cells with status `failed`.
    pub failed_cells: usize,
    /// Number of experiments with status `failed`.
    pub failed_experiments: usize,
    /// Per-cell outcomes, sorted by id.
    pub cells: Vec<CellRecord>,
    /// Per-experiment outcomes, in run order.
    pub experiments: Vec<ExperimentRecord>,
    /// Per-cell metrics exports, sorted by id (empty at the `off` tier).
    pub metrics: Vec<MetricsRecord>,
    /// Per-cell attribution exports, sorted by id (empty unless
    /// `TWIG_OBS_ATTR` enabled attribution).
    pub attribution: Vec<AttributionRecord>,
}

static CELLS: Mutex<Vec<CellRecord>> = Mutex::new(Vec::new());

fn cells() -> std::sync::MutexGuard<'static, Vec<CellRecord>> {
    CELLS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one cell outcome into the process-wide collector.
pub fn record_cell(
    id: &str,
    status: CellStatus,
    attempts: u32,
    wall_ms: u64,
    reason: Option<String>,
) {
    cells().push(CellRecord {
        id: id.to_string(),
        status: status.as_str().to_string(),
        attempts,
        wall_ms,
        reason,
    });
}

/// Snapshot of all recorded cells, sorted by id for a deterministic
/// manifest layout regardless of scheduling order.
pub fn snapshot_cells() -> Vec<CellRecord> {
    let mut out = cells().clone();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

/// Clears the collector (tests only; the experiments binary records one
/// process-lifetime of cells).
pub fn reset_cells() {
    cells().clear();
    metrics().clear();
    attribution().clear();
}

static METRICS: Mutex<Vec<MetricsRecord>> = Mutex::new(Vec::new());

fn metrics() -> std::sync::MutexGuard<'static, Vec<MetricsRecord>> {
    METRICS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one cell's metrics export into the process-wide collector.
pub fn record_metrics(id: &str, path: &str, counters: usize, histograms: usize) {
    metrics().push(MetricsRecord {
        id: id.to_string(),
        path: path.to_string(),
        counters,
        histograms,
    });
}

/// Snapshot of all recorded metrics exports, sorted by id.
pub fn snapshot_metrics() -> Vec<MetricsRecord> {
    let mut out = metrics().clone();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

static ATTRIBUTION: Mutex<Vec<AttributionRecord>> = Mutex::new(Vec::new());

fn attribution() -> std::sync::MutexGuard<'static, Vec<AttributionRecord>> {
    ATTRIBUTION
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Records one cell's attribution export into the process-wide collector.
pub fn record_attribution(
    id: &str,
    path: &str,
    folded_path: &str,
    entries: usize,
    total_cycles: u64,
) {
    attribution().push(AttributionRecord {
        id: id.to_string(),
        path: path.to_string(),
        folded_path: folded_path.to_string(),
        entries,
        total_cycles,
    });
}

/// Snapshot of all recorded attribution exports, sorted by id.
pub fn snapshot_attribution() -> Vec<AttributionRecord> {
    let mut out = attribution().clone();
    out.sort_by(|a, b| a.id.cmp(&b.id));
    out
}

/// The effective harness configuration, structured for the manifest.
pub fn effective_config() -> Vec<EffectiveSetting> {
    twig_types::HarnessConfig::global()
        .entries()
        .into_iter()
        .map(|entry| EffectiveSetting {
            name: entry.name.to_string(),
            value: entry.value,
            source: entry.source.to_string(),
        })
        .collect()
}

/// Assembles the manifest document.
pub fn build(resume: bool, experiments: Vec<ExperimentRecord>) -> RunManifest {
    let cells = snapshot_cells();
    let failed_cells = cells.iter().filter(|c| c.status == "failed").count();
    let failed_experiments = experiments.iter().filter(|e| e.status == "failed").count();
    let obs_config = twig_sim::ObsConfig::default();
    RunManifest {
        version: MANIFEST_VERSION,
        resume,
        fault_spec: twig_sched::fault::global().raw.clone(),
        obs: obs_config.level.as_text(),
        obs_attr: obs_config.attr.as_text(),
        effective_config: effective_config(),
        failed_cells,
        failed_experiments,
        cells,
        experiments,
        metrics: snapshot_metrics(),
        attribution: snapshot_attribution(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_sorted_and_counted() {
        reset_cells();
        record_cell("sim:z/late", CellStatus::Failed, 2, 10, Some("panicked: x".into()));
        record_cell("sim:a/early", CellStatus::Ok, 1, 5, None);
        record_cell("meta:kafka", CellStatus::Checkpointed, 0, 0, None);
        let manifest = build(true, vec![ExperimentRecord {
            id: "fig16".into(),
            status: "ok".into(),
            seconds: 1.5,
            reason: None,
        }]);
        assert_eq!(manifest.version, MANIFEST_VERSION);
        assert!(manifest.resume);
        assert_eq!(manifest.failed_cells, 1);
        assert_eq!(manifest.failed_experiments, 0);
        let ids: Vec<&str> = manifest.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, vec!["meta:kafka", "sim:a/early", "sim:z/late"]);
        let json = twig_serde_json::to_string_pretty(&manifest).unwrap();
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("panicked: x"));
        reset_cells();
    }
}
