//! Process-wide artifact cache for the experiment harness.
//!
//! Program generation, walker traces, and LBR profiles are pure functions
//! of `(AppId, input, instruction budget)` (plus the simulator config for
//! profiles), yet the seed harness regenerated them in every figure that
//! needed them — the dominant cost of `experiments all`. This cache
//! memoizes each artifact behind an `Arc` so every figure shares one copy
//! and each key is computed exactly once per process, even when many
//! scheduler workers request it concurrently.
//!
//! Exactly-once initialization uses a per-key `Arc<OnceLock<V>>`: the map
//! lock is held only long enough to fetch/create the slot, then
//! `OnceLock::get_or_init` serializes the (expensive) computation outside
//! the map lock, so unrelated keys never contend.
//!
//! Hit/miss counters per artifact type feed the `bench_results.json`
//! timing report, which asserts the exactly-once property
//! (`misses == entries`) at the end of every `experiments` run.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use twig_serde::Serialize;
use twig::TwigOptimizer;
use twig_profile::Profile;
use twig_sim::SimConfig;
use twig_workload::{AppId, BlockEvent};

use crate::runner::AppSetup;

/// One memoized key space with hit/miss accounting.
struct Shard<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let slot = {
            let mut map = self.map.lock().expect("cache shard poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        let mut computed = false;
        let value = slot
            .get_or_init(|| {
                computed = true;
                compute()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    fn entries(&self) -> u64 {
        self.map.lock().expect("cache shard poisoned").len() as u64
    }
}

/// Hit/miss/entry counts per artifact type, snapshotted by
/// [`ArtifactCache::stats`] and embedded in `results/bench_results.json`.
#[derive(Clone, Debug, Serialize)]
pub struct CacheStats {
    /// App setup (program generation) hits.
    pub setup_hits: u64,
    /// App setup misses (= generations performed).
    pub setup_misses: u64,
    /// Distinct apps generated.
    pub setup_entries: u64,
    /// Walker event-trace hits.
    pub events_hits: u64,
    /// Walker event-trace misses (= walks performed).
    pub events_misses: u64,
    /// Distinct `(app, input, budget)` traces materialized.
    pub events_entries: u64,
    /// LBR profile hits.
    pub profile_hits: u64,
    /// LBR profile misses (= profiling simulations performed).
    pub profile_misses: u64,
    /// Distinct `(app, input, budget, sim config)` profiles collected.
    pub profile_entries: u64,
}

impl CacheStats {
    /// True iff every artifact was generated exactly once per key — the
    /// acceptance property the `experiments` binary asserts.
    pub fn exactly_once(&self) -> bool {
        self.setup_misses == self.setup_entries
            && self.events_misses == self.events_entries
            && self.profile_misses == self.profile_entries
    }
}

/// The memoized store handing out shared artifacts.
pub struct ArtifactCache {
    setups: Shard<AppId, Arc<AppSetup>>,
    events: Shard<(AppId, u32, u64), Arc<[BlockEvent]>>,
    // `SimConfig` holds `f64` fields, so the profile key embeds its
    // `Debug` rendering as a config fingerprint instead of deriving Hash.
    profiles: Shard<(AppId, u32, u64, String), Arc<Profile>>,
}

impl ArtifactCache {
    /// Creates an empty cache (tests use private instances; production
    /// code shares [`global`]).
    pub fn new() -> Self {
        ArtifactCache {
            setups: Shard::new(),
            events: Shard::new(),
            profiles: Shard::new(),
        }
    }

    /// The generated workload for `app` (spec, generator, program,
    /// baseline sim config).
    pub fn setup(&self, app: AppId) -> Arc<AppSetup> {
        self.setups
            .get_or_compute(app, || Arc::new(AppSetup::new(app)))
    }

    /// The walker event trace for `(app, input)`, bounded by
    /// `instructions`.
    pub fn events(&self, app: AppId, input: u32, instructions: u64) -> Arc<[BlockEvent]> {
        self.events.get_or_compute((app, input, instructions), || {
            self.setup(app).fresh_events(input, instructions).into()
        })
    }

    /// The LBR profile of `app` under `input` at `sim_config`.
    ///
    /// Profile collection reads only the simulator configuration, not the
    /// Twig optimizer's knobs, so one cached profile serves every
    /// `TwigConfig` variant evaluated against it.
    pub fn profile(
        &self,
        app: AppId,
        input: u32,
        instructions: u64,
        sim_config: &SimConfig,
    ) -> Arc<Profile> {
        let key = (app, input, instructions, format!("{sim_config:?}"));
        self.profiles.get_or_compute(key, || {
            let setup = self.setup(app);
            let events = self.events(app, input, instructions);
            let profile = TwigOptimizer::default().collect_profile_from_events(
                &setup.program,
                *sim_config,
                &events,
                instructions,
            );
            Arc::new(profile)
        })
    }

    /// Snapshot of the hit/miss/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            setup_hits: self.setups.hits.load(Ordering::Relaxed),
            setup_misses: self.setups.misses.load(Ordering::Relaxed),
            setup_entries: self.setups.entries(),
            events_hits: self.events.hits.load(Ordering::Relaxed),
            events_misses: self.events.misses.load(Ordering::Relaxed),
            events_entries: self.events.entries(),
            profile_hits: self.profiles.hits.load(Ordering::Relaxed),
            profile_misses: self.profiles.misses.load(Ordering::Relaxed),
            profile_entries: self.profiles.entries(),
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

/// The process-wide cache shared by the runner and all `exp` modules.
pub fn global() -> &'static ArtifactCache {
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    CACHE.get_or_init(ArtifactCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_shared_and_counted() {
        let cache = ArtifactCache::new();
        let a = cache.setup(AppId::Tomcat);
        let b = cache.setup(AppId::Tomcat);
        assert!(Arc::ptr_eq(&a, &b), "second fetch must reuse the Arc");
        let stats = cache.stats();
        assert_eq!(stats.setup_misses, 1);
        assert_eq!(stats.setup_hits, 1);
        assert_eq!(stats.setup_entries, 1);
        assert!(stats.exactly_once());
    }

    #[test]
    fn cached_events_match_fresh_walk() {
        let cache = ArtifactCache::new();
        let cached = cache.events(AppId::Kafka, 2, 5_000);
        let fresh = cache.setup(AppId::Kafka).fresh_events(2, 5_000);
        assert_eq!(&cached[..], &fresh[..], "cache must be bit-identical");
    }

    #[test]
    fn cached_program_matches_fresh_generation() {
        let cache = ArtifactCache::new();
        let cached = cache.setup(AppId::Cassandra);
        let fresh = AppSetup::new(AppId::Cassandra);
        assert_eq!(cached.program, fresh.program);
        assert_eq!(cached.spec, fresh.spec);
    }

    #[test]
    fn cached_profile_matches_fresh_collection() {
        use twig_workload::InputConfig;
        let cache = ArtifactCache::new();
        let setup = cache.setup(AppId::Kafka);
        let cached = cache.profile(AppId::Kafka, 0, 20_000, &setup.sim_config);
        let fresh = TwigOptimizer::default().collect_profile(
            &setup.program,
            setup.sim_config,
            InputConfig::numbered(0),
            20_000,
        );
        assert_eq!(*cached, fresh, "cached profile must equal a fresh one");
    }

    #[test]
    fn profile_keyed_by_sim_config() {
        let cache = ArtifactCache::new();
        let setup = cache.setup(AppId::Kafka);
        let base = setup.sim_config;
        let small = base.with_btb_entries(64);
        let p1 = cache.profile(AppId::Kafka, 0, 20_000, &base);
        let p2 = cache.profile(AppId::Kafka, 0, 20_000, &base);
        let p3 = cache.profile(AppId::Kafka, 0, 20_000, &small);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(!Arc::ptr_eq(&p1, &p3), "different config, different profile");
        assert_eq!(cache.stats().profile_entries, 2);
        assert_eq!(cache.stats().profile_misses, 2);
    }

    #[test]
    fn concurrent_fetches_compute_exactly_once() {
        let cache = ArtifactCache::new();
        let events = twig_sched::parallel_map(vec![0u32; 16], |_| {
            cache.events(AppId::Tomcat, 1, 4_000)
        });
        for e in &events {
            assert!(Arc::ptr_eq(e, &events[0]));
        }
        let stats = cache.stats();
        assert_eq!(stats.events_misses, 1, "trace must be walked exactly once");
        assert_eq!(stats.events_hits, 15);
        assert!(stats.exactly_once());
    }
}
