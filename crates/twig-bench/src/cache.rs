//! Process-wide artifact cache for the experiment harness.
//!
//! Program generation, walker traces, LBR profiles, and the per-app
//! prepare phase (profile → analyze → rewrite → working sets) are pure
//! functions of `(AppId, input, instruction budget)` (plus the simulator
//! config for profiles), yet the seed harness regenerated them in every
//! figure that needed them — the dominant cost of `experiments all`. This
//! cache memoizes each artifact behind an `Arc` so every figure shares one
//! copy and each key is computed exactly once per process, even when many
//! scheduler workers request it concurrently.
//!
//! Exactly-once initialization uses a per-key `Arc<OnceLock<Entry>>`: the
//! map lock is held only long enough to fetch/create the slot, then
//! `OnceLock::get_or_init` serializes the (expensive) computation outside
//! the map lock, so unrelated keys never contend.
//!
//! Integrity: every stored entry carries a content fingerprint (sampled
//! FNV-1a over the artifact's shape and data). Hits re-verify the
//! fingerprint; a mismatch — a poisoned or corrupted entry, in practice
//! only producible via the `corrupt-cache` fault injection — evicts the
//! entry and recomputes it rather than silently serving bad data.
//! Evictions are counted, and the exactly-once property asserted at the
//! end of every `experiments` run becomes `misses == entries + evictions`.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use twig::TwigOptimizer;
use twig_profile::Profile;
use twig_serde::Serialize;
use twig_sim::{IntegrityLevel, SimConfig, SimStats};
use twig_workload::{AppId, BlockEvent, InputConfig};

use crate::runner::{AppSetup, PreparedApp};
use crate::trace_handle::TraceHandle;

/// Mixes one word into an FNV-1a style accumulator.
#[inline]
pub(crate) fn mix(state: u64, word: u64) -> u64 {
    (state ^ word).wrapping_mul(0x0000_0100_0000_01B3)
}

pub(crate) const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn mix_str(state: u64, s: &str) -> u64 {
    s.bytes().fold(state, |acc, b| mix(acc, u64::from(b)))
}

/// Cheap content fingerprint used for cache-integrity verification on
/// every hit. Implementations sample rather than hash exhaustively (a
/// trace hit must stay O(1)-ish), but always cover the artifact's shape
/// (lengths, counts) plus strided data words — enough to catch any
/// realistic poisoning, including the injected kind.
pub trait Fingerprint {
    /// The entry's fingerprint.
    fn fingerprint(&self) -> u64;
}

impl Fingerprint for Arc<AppSetup> {
    fn fingerprint(&self) -> u64 {
        let mut h = mix_str(FNV_OFFSET, self.app.name());
        h = mix(h, self.program.num_blocks() as u64);
        h
    }
}

impl Fingerprint for Arc<[BlockEvent]> {
    fn fingerprint(&self) -> u64 {
        let mut h = mix(FNV_OFFSET, self.len() as u64);
        let stride = (self.len() / 64).max(1);
        for ev in self.iter().step_by(stride) {
            h = mix(h, u64::from(ev.block.raw()));
            h = mix(h, u64::from(ev.taken));
            h = mix(h, ev.target.map_or(u64::MAX, |t| u64::from(t.raw())));
        }
        h
    }
}

impl Fingerprint for Arc<Profile> {
    fn fingerprint(&self) -> u64 {
        let mut h = mix(FNV_OFFSET, self.samples.len() as u64);
        h = mix(h, self.block_executions.len() as u64);
        h = mix(h, self.instructions);
        h = mix(h, u64::from(self.sample_period));
        let stride = (self.samples.len() / 64).max(1);
        for s in self.samples.iter().step_by(stride) {
            h = mix(h, u64::from(s.branch_block.raw()));
            h = mix(h, s.cycle);
        }
        h
    }
}

impl Fingerprint for Arc<SimStats> {
    fn fingerprint(&self) -> u64 {
        let mut h = mix(FNV_OFFSET, self.cycles);
        h = mix(h, self.retired_instructions);
        h = mix(h, self.retired_prefetch_ops);
        h = mix(h, self.topdown.retiring);
        h = mix(h, self.topdown.frontend_bound);
        h = mix(h, self.topdown.bad_speculation);
        h = mix(h, self.topdown.backend_bound);
        for i in 0..6 {
            h = mix(h, self.btb_accesses[i]);
            h = mix(h, self.btb_misses[i]);
            h = mix(h, self.covered_misses[i]);
        }
        h = mix(h, self.icache_demand_misses);
        h
    }
}

impl Fingerprint for Arc<PreparedApp> {
    fn fingerprint(&self) -> u64 {
        let mut h = mix(FNV_OFFSET, self.events.event_count());
        h = mix(h, self.working_set_bytes);
        h = mix(h, self.working_set_bytes_twig);
        h = mix(h, self.optimized.rewrite.brprefetch_ops);
        h = mix(h, self.optimized.rewrite.text_bytes_after);
        h = mix(h, self.optimized_sw.rewrite.brprefetch_ops);
        h
    }
}

/// One stored value plus the fingerprint recorded at store time.
struct Entry<V> {
    value: V,
    fingerprint: u64,
    /// Logical timestamp of the last hit (for capacity eviction).
    last_used: AtomicU64,
}

/// One memoized key space with hit/miss/eviction accounting.
struct Shard<K, V> {
    map: Mutex<HashMap<K, Arc<OnceLock<Entry<V>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Maximum resident entries; least-recently-used entries beyond this
    /// are evicted (and transparently recomputed on a later request).
    /// `None` means unbounded. Bound the shards whose values are large —
    /// profiles run tens of megabytes each, and a sweep retires one per
    /// configuration point, so an unbounded shard grows the heap by
    /// gigabytes over a full figure run and the allocator never gets to
    /// reuse a page.
    capacity: Option<usize>,
    clock: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone + Fingerprint> Shard<K, V> {
    fn new() -> Self {
        Self::with_capacity(None)
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        Shard {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            capacity,
            clock: AtomicU64::new(0),
        }
    }

    /// Evicts initialized least-recently-used entries until the shard is
    /// back under its capacity. In-flight computations (uninitialized
    /// slots) are never touched.
    fn enforce_capacity(&self) {
        let Some(cap) = self.capacity else { return };
        let mut map = self.lock_map();
        while map.values().filter(|slot| slot.get().is_some()).count() > cap {
            let victim = map
                .iter()
                .filter_map(|(k, slot)| {
                    slot.get()
                        .map(|e| (k.clone(), e.last_used.load(Ordering::Relaxed)))
                })
                .min_by_key(|&(_, used)| used)
                .map(|(k, _)| k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    fn lock_map(&self) -> std::sync::MutexGuard<'_, HashMap<K, Arc<OnceLock<Entry<V>>>>> {
        self.map.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Fetches (or computes exactly once) the value for `key`, verifying
    /// the stored fingerprint on every hit. A mismatched entry is evicted
    /// and recomputed. `label` is what `corrupt-cache` fault selectors
    /// match; the injected corruption lands on the *stored* fingerprint,
    /// so the value served by the computing call itself is still good and
    /// the poisoning is discovered (and healed) on the next hit.
    fn get_or_compute(&self, key: K, label: &str, compute: impl Fn() -> V) -> V {
        for _attempt in 0..3 {
            let slot = {
                let mut map = self.lock_map();
                Arc::clone(map.entry(key.clone()).or_default())
            };
            let mut computed = false;
            let entry = slot.get_or_init(|| {
                computed = true;
                let value = compute();
                let fingerprint = twig_sched::fault::global()
                    .corrupt_fingerprint(label, value.fingerprint());
                Entry {
                    value,
                    fingerprint,
                    last_used: AtomicU64::new(0),
                }
            });
            entry
                .last_used
                .store(self.clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
            if computed {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let value = entry.value.clone();
                self.enforce_capacity();
                return value;
            }
            if entry.value.fingerprint() == entry.fingerprint {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return entry.value.clone();
            }
            // Poisoned entry: evict (only if the map still holds this
            // exact slot — another thread may have healed it already) and
            // retry, which recomputes into a fresh slot.
            eprintln!("warning: evicting corrupt cache entry {label} (fingerprint mismatch)");
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let mut map = self.lock_map();
            if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &slot)) {
                map.remove(&key);
            }
        }
        // Unreachable with budgeted fault clauses; serve a fresh
        // uncached computation rather than loop forever.
        eprintln!("warning: cache entry {label} still corrupt after retries; bypassing cache");
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        compute()
    }

    /// Number of *initialized* entries (slots whose computation finished;
    /// a slot abandoned by a panicking computation does not count, so the
    /// exactly-once accounting survives supervised retries).
    fn entries(&self) -> u64 {
        self.lock_map()
            .values()
            .filter(|slot| slot.get().is_some())
            .count() as u64
    }
}

/// Hit/miss/entry/eviction counts per artifact type, snapshotted by
/// [`ArtifactCache::stats`] and embedded in `results/bench_results.json`.
#[derive(Clone, Debug, Serialize)]
pub struct CacheStats {
    /// App setup (program generation) hits.
    pub setup_hits: u64,
    /// App setup misses (= generations performed).
    pub setup_misses: u64,
    /// Distinct apps generated.
    pub setup_entries: u64,
    /// Setup entries evicted for failed integrity checks.
    pub setup_evictions: u64,
    /// Walker event-trace hits.
    pub events_hits: u64,
    /// Walker event-trace misses (= walks performed).
    pub events_misses: u64,
    /// Distinct `(app, input, budget)` traces materialized.
    pub events_entries: u64,
    /// Trace entries evicted for failed integrity checks.
    pub events_evictions: u64,
    /// LBR profile hits.
    pub profile_hits: u64,
    /// LBR profile misses (= profiling simulations performed).
    pub profile_misses: u64,
    /// Distinct `(app, input, budget, sim config)` profiles collected.
    pub profile_entries: u64,
    /// Profile entries evicted for failed integrity checks.
    pub profile_evictions: u64,
    /// Prepared-app hits.
    pub prepared_hits: u64,
    /// Prepared-app misses (= prepare phases executed).
    pub prepared_misses: u64,
    /// Distinct `(app, budget)` prepare phases materialized.
    pub prepared_entries: u64,
    /// Prepared entries evicted for failed integrity checks.
    pub prepared_evictions: u64,
    /// Simulation-result hits (simulations *not* re-run).
    pub sim_hits: u64,
    /// Simulation-result misses (= cacheable simulations performed).
    pub sim_misses: u64,
    /// Distinct `(app, input, budget, system, config)` results stored.
    pub sim_entries: u64,
    /// Simulation results evicted for failed integrity checks.
    pub sim_evictions: u64,
}

impl CacheStats {
    /// True iff every artifact was generated exactly once per key, modulo
    /// integrity evictions (each eviction legitimately forces one
    /// recomputation) — the property the `experiments` binary asserts.
    pub fn exactly_once(&self) -> bool {
        self.setup_misses == self.setup_entries + self.setup_evictions
            && self.events_misses == self.events_entries + self.events_evictions
            && self.profile_misses == self.profile_entries + self.profile_evictions
            && self.prepared_misses == self.prepared_entries + self.prepared_evictions
            && self.sim_misses == self.sim_entries + self.sim_evictions
    }

    /// Total integrity evictions across all shards.
    pub fn total_evictions(&self) -> u64 {
        self.setup_evictions
            + self.events_evictions
            + self.profile_evictions
            + self.prepared_evictions
            + self.sim_evictions
    }
}

/// The memoized store handing out shared artifacts.
pub struct ArtifactCache {
    setups: Shard<AppId, Arc<AppSetup>>,
    events: Shard<(AppId, u32, u64), TraceHandle>,
    // `SimConfig` holds `f64` fields, so the profile key embeds its
    // `Debug` rendering as a config fingerprint instead of deriving Hash.
    profiles: Shard<(AppId, u32, u64, String), Arc<Profile>>,
    prepared: Shard<(AppId, u64), Arc<PreparedApp>>,
    // Simulations of the *canonical* (unrewritten) binary over canonical
    // traces; the system name + config Debug rendering pin the run down.
    sims: Shard<(AppId, u32, u64, String, String), Arc<SimStats>>,
    /// Traces past this many events spill to `.twgc` files instead of
    /// staying resident (`TWIG_TRACE_SPILL_EVENTS`; `None` = never spill).
    spill_threshold: Option<u64>,
}

impl ArtifactCache {
    /// Creates an empty cache with the harness-configured spill threshold
    /// (tests use private instances; production code shares [`global`]).
    pub fn new() -> Self {
        Self::with_spill_threshold(
            twig_types::HarnessConfig::global().trace_spill_events.value,
        )
    }

    /// Creates an empty cache spilling traces above `threshold` events
    /// (`None` disables spilling). Tests use small thresholds to exercise
    /// the out-of-core path on small traces.
    pub fn with_spill_threshold(threshold: Option<u64>) -> Self {
        ArtifactCache {
            setups: Shard::new(),
            events: Shard::new(),
            // Profiles are the one artifact that is both huge (tens of MB
            // of miss samples each) and mostly single-use (sweeps retire
            // one per configuration point); keep only a recent working set.
            profiles: Shard::with_capacity(Some(12)),
            prepared: Shard::new(),
            sims: Shard::new(),
            spill_threshold: threshold,
        }
    }

    /// The generated workload for `app` (spec, generator, program,
    /// baseline sim config).
    pub fn setup(&self, app: AppId) -> Arc<AppSetup> {
        self.setups.get_or_compute(app, &format!("cache:setup:{}", app.name()), || {
            Arc::new(AppSetup::new(app))
        })
    }

    /// The walker event trace for `(app, input)`, bounded by
    /// `instructions` — materialized in memory below the spill threshold,
    /// streamed from an on-disk `.twgc` file above it. Either backing is
    /// event-for-event identical to [`AppSetup::fresh_events`].
    pub fn events(&self, app: AppId, input: u32, instructions: u64) -> TraceHandle {
        self.events.get_or_compute(
            (app, input, instructions),
            &format!("cache:events:{}/{input}", app.name()),
            || {
                let setup = self.setup(app);
                crate::trace_handle::collect_trace(
                    &setup.program,
                    InputConfig::numbered(input),
                    instructions,
                    self.spill_threshold,
                    || crate::trace_handle::spill_path(app, input, instructions),
                )
            },
        )
    }

    /// The LBR profile of `app` under `input` at `sim_config`.
    ///
    /// Profile collection reads only the simulator configuration, not the
    /// Twig optimizer's knobs, so one cached profile serves every
    /// `TwigConfig` variant evaluated against it.
    pub fn profile(
        &self,
        app: AppId,
        input: u32,
        instructions: u64,
        sim_config: &SimConfig,
    ) -> Arc<Profile> {
        // Profiling runs never execute prefetch ops, so the key shares
        // the baseline projection (see [`Self::projected`]).
        let key_config = Self::projected("baseline", sim_config);
        let key = (app, input, instructions, format!("{key_config:?}"));
        self.profiles.get_or_compute(
            key,
            &format!("cache:profile:{}/{input}", app.name()),
            || {
                let setup = self.setup(app);
                let events = self.events(app, input, instructions);
                let (profile, stats) = TwigOptimizer::default()
                    .collect_profile_and_stats_from_source(
                        &setup.program,
                        *sim_config,
                        &mut events.source(),
                        instructions,
                    );
                // The profiling run is a plain FDIP baseline run with a
                // passive observer attached; publish its stats so a later
                // baseline request over the same input dedups against it
                // instead of re-simulating.
                if Self::sim_cacheable(sim_config) {
                    self.sim_stats(app, input, instructions, "baseline", sim_config, || {
                        stats.clone()
                    });
                }
                Arc::new(profile)
            },
        )
    }

    /// The fully prepared app (profiled on input #0, rewritten, test
    /// trace walked, working sets measured) at `budget` instructions —
    /// computed lazily and exactly once per `(app, budget)`, so a resumed
    /// run whose every cell was checkpointed never pays for it.
    pub(crate) fn prepared(&self, app: AppId, budget: u64) -> Arc<PreparedApp> {
        self.prepared.get_or_compute(
            (app, budget),
            &format!("cache:prepared:{}", app.name()),
            || Arc::new(crate::runner::prepare_app(app, budget)),
        )
    }

    /// Cache-key projection: pins `SimConfig` fields that a given kind of
    /// run provably never reads to fixed defaults, so sweep points that
    /// differ only in dead config share one cached artifact.
    ///
    /// - Profile collection and `baseline`/`ideal` simulations execute the
    ///   canonical binary, which contains no prefetch ops, so the prefetch
    ///   buffer never fills and its capacity is dead config (Fig. 25's
    ///   references collapse to one run).
    /// - An ideal BTB answers every lookup without consulting the real
    ///   array, so BTB geometry is dead config for `ideal` runs (Figs.
    ///   23/24's ideal references collapse to one run).
    ///
    /// Only the cache *key* is projected — the simulation itself still
    /// runs whatever config the caller passed on a miss. Validated by
    /// `projection_is_sound` below and end-to-end by the byte-identical
    /// figure suite.
    fn projected(system: &str, config: &SimConfig) -> SimConfig {
        let defaults = SimConfig::default();
        let mut c = *config;
        match system {
            "baseline" => c.prefetch_buffer_entries = defaults.prefetch_buffer_entries,
            "ideal" => {
                c.prefetch_buffer_entries = defaults.prefetch_buffer_entries;
                c.btb = defaults.btb;
            }
            _ => {}
        }
        c
    }

    /// Whether a simulation at `config` is a pure function of its inputs
    /// as far as the harness is concerned. Integrity sampling, seeded
    /// mutations, observability recording, and windowed timelines all
    /// have side effects beyond the returned [`SimStats`] (violations,
    /// forensic dumps, telemetry exports), so runs with any of them
    /// enabled must execute every time.
    pub fn sim_cacheable(config: &SimConfig) -> bool {
        config.integrity.level == IntegrityLevel::Off
            && config.integrity.mutate.is_none()
            && !config.obs.recording()
            && config.obs.window.is_none()
    }

    /// The statistics of one simulation of the canonical program for
    /// `app` over the canonical `(app, input, instructions)` event trace,
    /// with BTB system `system` under `sim_config`.
    ///
    /// The same `(system, config)` pair is simulated by several figures
    /// (every sweep point re-runs baseline/ideal/competitor sims, and the
    /// cross-input matrix shares its references with the headline
    /// matrix), so results are memoized like every other artifact.
    ///
    /// Contract: `compute` must run exactly the simulation the key
    /// describes — original binary from [`Self::setup`], events from
    /// [`Self::events`] — and be deterministic. Non-cacheable configs
    /// (see [`Self::sim_cacheable`]) bypass the cache entirely, without
    /// touching the exactly-once accounting.
    pub fn sim_stats(
        &self,
        app: AppId,
        input: u32,
        instructions: u64,
        system: &str,
        sim_config: &SimConfig,
        compute: impl Fn() -> SimStats,
    ) -> Arc<SimStats> {
        if !Self::sim_cacheable(sim_config) {
            return Arc::new(compute());
        }
        let key_config = Self::projected(system, sim_config);
        let key = (
            app,
            input,
            instructions,
            system.to_string(),
            format!("{key_config:?}"),
        );
        self.sims.get_or_compute(
            key,
            &format!("cache:sim:{}/{input}/{system}", app.name()),
            || Arc::new(compute()),
        )
    }

    /// Snapshot of the hit/miss/entry/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            setup_hits: self.setups.hits.load(Ordering::Relaxed),
            setup_misses: self.setups.misses.load(Ordering::Relaxed),
            setup_entries: self.setups.entries(),
            setup_evictions: self.setups.evictions.load(Ordering::Relaxed),
            events_hits: self.events.hits.load(Ordering::Relaxed),
            events_misses: self.events.misses.load(Ordering::Relaxed),
            events_entries: self.events.entries(),
            events_evictions: self.events.evictions.load(Ordering::Relaxed),
            profile_hits: self.profiles.hits.load(Ordering::Relaxed),
            profile_misses: self.profiles.misses.load(Ordering::Relaxed),
            profile_entries: self.profiles.entries(),
            profile_evictions: self.profiles.evictions.load(Ordering::Relaxed),
            prepared_hits: self.prepared.hits.load(Ordering::Relaxed),
            prepared_misses: self.prepared.misses.load(Ordering::Relaxed),
            prepared_entries: self.prepared.entries(),
            prepared_evictions: self.prepared.evictions.load(Ordering::Relaxed),
            sim_hits: self.sims.hits.load(Ordering::Relaxed),
            sim_misses: self.sims.misses.load(Ordering::Relaxed),
            sim_entries: self.sims.entries(),
            sim_evictions: self.sims.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

/// The process-wide cache shared by the runner and all `exp` modules.
pub fn global() -> &'static ArtifactCache {
    static CACHE: OnceLock<ArtifactCache> = OnceLock::new();
    CACHE.get_or_init(ArtifactCache::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_shared_and_counted() {
        let cache = ArtifactCache::new();
        let a = cache.setup(AppId::Tomcat);
        let b = cache.setup(AppId::Tomcat);
        assert!(Arc::ptr_eq(&a, &b), "second fetch must reuse the Arc");
        let stats = cache.stats();
        assert_eq!(stats.setup_misses, 1);
        assert_eq!(stats.setup_hits, 1);
        assert_eq!(stats.setup_entries, 1);
        assert_eq!(stats.setup_evictions, 0);
        assert!(stats.exactly_once());
    }

    #[test]
    fn cached_events_match_fresh_walk() {
        let cache = ArtifactCache::new();
        let cached = cache.events(AppId::Kafka, 2, 5_000);
        assert!(!cached.is_spilled(), "tiny trace must stay in memory");
        let fresh = cache.setup(AppId::Kafka).fresh_events(2, 5_000);
        assert_eq!(&cached.materialize()[..], &fresh[..], "cache must be bit-identical");
    }

    #[test]
    fn big_traces_spill_and_stream_identically() {
        let cache = ArtifactCache::with_spill_threshold(Some(500));
        let spilled = cache.events(AppId::Kafka, 2, 30_000);
        assert!(spilled.is_spilled(), "500-event threshold must force a spill");
        let fresh = cache.setup(AppId::Kafka).fresh_events(2, 30_000);
        assert_eq!(spilled.event_count(), fresh.len() as u64);
        assert_eq!(&spilled.materialize()[..], &fresh[..], "spilled trace must be bit-identical");
        // A hit re-verifies the directory-shape fingerprint and serves the
        // same mmap-backed handle.
        let again = cache.events(AppId::Kafka, 2, 30_000);
        let stats = cache.stats();
        assert_eq!(stats.events_misses, 1);
        assert_eq!(stats.events_hits, 1);
        assert_eq!(stats.events_evictions, 0);
        let streamed: Vec<BlockEvent> = again.source().collect();
        assert_eq!(streamed, &fresh[..]);
    }

    #[test]
    fn cached_program_matches_fresh_generation() {
        let cache = ArtifactCache::new();
        let cached = cache.setup(AppId::Cassandra);
        let fresh = AppSetup::new(AppId::Cassandra);
        assert_eq!(cached.program, fresh.program);
        assert_eq!(cached.spec, fresh.spec);
    }

    #[test]
    fn cached_profile_matches_fresh_collection() {
        use twig_workload::InputConfig;
        let cache = ArtifactCache::new();
        let setup = cache.setup(AppId::Kafka);
        let cached = cache.profile(AppId::Kafka, 0, 20_000, &setup.sim_config);
        let fresh = TwigOptimizer::default().collect_profile(
            &setup.program,
            setup.sim_config,
            InputConfig::numbered(0),
            20_000,
        );
        assert_eq!(*cached, fresh, "cached profile must equal a fresh one");
    }

    #[test]
    fn profile_keyed_by_sim_config() {
        let cache = ArtifactCache::new();
        let setup = cache.setup(AppId::Kafka);
        let base = setup.sim_config;
        let small = base.with_btb_entries(64);
        let p1 = cache.profile(AppId::Kafka, 0, 20_000, &base);
        let p2 = cache.profile(AppId::Kafka, 0, 20_000, &base);
        let p3 = cache.profile(AppId::Kafka, 0, 20_000, &small);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(!Arc::ptr_eq(&p1, &p3), "different config, different profile");
        assert_eq!(cache.stats().profile_entries, 2);
        assert_eq!(cache.stats().profile_misses, 2);
    }

    #[test]
    fn concurrent_fetches_compute_exactly_once() {
        let cache = ArtifactCache::new();
        let events = twig_sched::parallel_map(vec![0u32; 16], |_| {
            cache.events(AppId::Tomcat, 1, 4_000)
        });
        for e in &events {
            assert!(Arc::ptr_eq(&e.materialize(), &events[0].materialize()));
        }
        let stats = cache.stats();
        assert_eq!(stats.events_misses, 1, "trace must be walked exactly once");
        assert_eq!(stats.events_hits, 15);
        assert!(stats.exactly_once());
    }

    #[test]
    fn poisoned_entry_is_evicted_and_recomputed() {
        // Corrupt the stored fingerprint by hand (the same effect the
        // `corrupt-cache` fault clause has) and verify the next hit heals
        // the shard while keeping the exactly-once accounting honest.
        let shard: Shard<u32, TraceHandle> = Shard::new();
        let make = || -> TraceHandle {
            ArtifactCache::new().events(AppId::Kafka, 0, 2_000)
        };
        let first = shard.get_or_compute(7, "cache:test", make);
        {
            let map = shard.lock_map();
            let slot = map.get(&7).unwrap();
            // Rebuild the slot with a wrong fingerprint.
            let poisoned = Arc::new(OnceLock::new());
            poisoned
                .set(Entry {
                    value: slot.get().map(|e| e.value.clone()).unwrap(),
                    fingerprint: 0xDEAD_BEEF,
                    last_used: AtomicU64::new(0),
                })
                .ok()
                .expect("fresh slot accepts the poisoned entry");
            drop(map);
            shard.lock_map().insert(7, poisoned);
        }
        let healed = shard.get_or_compute(7, "cache:test", make);
        assert_eq!(
            &healed.materialize()[..],
            &first.materialize()[..],
            "healed value matches"
        );
        assert_eq!(shard.evictions.load(Ordering::Relaxed), 1);
        assert_eq!(shard.misses.load(Ordering::Relaxed), 2);
        assert_eq!(shard.entries(), 1);
        // misses == entries + evictions
        assert_eq!(
            shard.misses.load(Ordering::Relaxed),
            shard.entries() + shard.evictions.load(Ordering::Relaxed)
        );
        // Subsequent hits verify cleanly.
        let again = shard.get_or_compute(7, "cache:test", make);
        assert_eq!(&again.materialize()[..], &first.materialize()[..]);
        assert_eq!(shard.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn entries_counts_only_initialized_slots() {
        let shard: Shard<u32, TraceHandle> = Shard::new();
        // Simulate a slot abandoned by a panicking computation: present in
        // the map but never initialized.
        shard.lock_map().insert(1, Arc::new(OnceLock::new()));
        assert_eq!(shard.entries(), 0);
        let _ = shard.get_or_compute(2, "cache:test", || {
            ArtifactCache::new().events(AppId::Kafka, 0, 1_000)
        });
        assert_eq!(shard.entries(), 1);
    }

    #[test]
    fn projection_is_sound() {
        // The fields the key projection pins must truly be dead config:
        // running the projected-away variants must produce identical
        // statistics. (Cheap budget; the full-suite byte-identity check
        // covers the production budgets.)
        let budget = 20_000u64;
        let setup = AppSetup::new(AppId::Kafka);
        let events: TraceHandle = setup.fresh_events(1, budget).into();
        let run = |system: &str, cfg: SimConfig| {
            let sys = twig_prefetchers::by_name(system, &cfg).expect("registered");
            setup.run_system(sys, cfg, &events, budget)
        };
        let base = setup.sim_config;
        // baseline: prefetch buffer capacity is dead.
        let b_small = run("baseline", SimConfig { prefetch_buffer_entries: 8, ..base });
        let b_large = run("baseline", SimConfig { prefetch_buffer_entries: 256, ..base });
        assert_eq!(format!("{b_small:?}"), format!("{b_large:?}"));
        // ideal: buffer capacity and BTB geometry are dead.
        let ideal = SimConfig { ideal_btb: true, ..base };
        let i_small = run(
            "ideal",
            SimConfig { prefetch_buffer_entries: 8, ..ideal }.with_btb_entries(64),
        );
        let i_large = run(
            "ideal",
            SimConfig { prefetch_buffer_entries: 256, ..ideal }.with_btb_entries(4096),
        );
        assert_eq!(format!("{i_small:?}"), format!("{i_large:?}"));
        // And the projection maps those variants onto one key.
        assert_eq!(
            format!("{:?}", ArtifactCache::projected("baseline", &SimConfig { prefetch_buffer_entries: 8, ..base })),
            format!("{:?}", ArtifactCache::projected("baseline", &SimConfig { prefetch_buffer_entries: 256, ..base })),
        );
        assert_eq!(
            format!("{:?}", ArtifactCache::projected("ideal", &ideal.with_btb_entries(64))),
            format!("{:?}", ArtifactCache::projected("ideal", &ideal.with_btb_entries(4096))),
        );
        // But live fields still distinguish keys.
        assert_ne!(
            format!("{:?}", ArtifactCache::projected("baseline", &base)),
            format!("{:?}", ArtifactCache::projected("baseline", &base.with_btb_entries(64))),
        );
    }

    #[test]
    fn prepared_app_is_memoized_per_budget() {
        let cache = ArtifactCache::new();
        let a = cache.prepared(AppId::Tomcat, 20_000);
        let b = cache.prepared(AppId::Tomcat, 20_000);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.prepared(AppId::Tomcat, 30_000);
        assert!(!Arc::ptr_eq(&a, &c), "different budget, different prepare");
        let stats = cache.stats();
        assert_eq!(stats.prepared_misses, 2);
        assert_eq!(stats.prepared_entries, 2);
        assert!(stats.exactly_once());
    }
}
