//! Shape-verdict verification between result sets.
//!
//! The workloads are synthetic, so `results/*.txt` reproduces the paper's
//! *shapes* — who wins, by roughly what factor, where crossovers fall —
//! not absolute values (EXPERIMENTS.md). That makes the figures sensitive
//! to the pseudo-random stream: swapping the RNG (as the move to the
//! vendored `twig-rand` did) shifts every measured number. This module
//! pins down what must NOT shift: each figure's qualitative verdict,
//! expressed as machine-checkable predicates that are evaluated against
//! both the seed-era baseline (`results/seed_baseline/`, generated with
//! the crates.io `rand` 0.10 stream) and the current `results/`.
//!
//! `cargo run -p twig-bench --bin verify_shapes` checks every figure on
//! both result sets and writes the side-by-side comparison to
//! `docs/SEED_COMPARISON.md`; a unit test here does the same check so
//! `cargo test` fails if a regeneration ever flips a verdict.

use std::fmt::Write as _;
use std::path::Path;

/// One parsed report line: a leading label and the numeric cells after it.
#[derive(Debug, Clone)]
pub struct Row {
    /// Leading non-numeric tokens joined by one space; for sweep rows
    /// that begin with a number (`8  42.2 …`), the text of that number.
    pub label: String,
    /// Every numeric cell after the label.
    pub values: Vec<f64>,
}

/// A parsed figure/table report.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Raw report text (for the few text-only checks).
    pub text: String,
    /// Data rows, in file order. Header and prose lines parse to zero
    /// values and are dropped.
    pub rows: Vec<Row>,
}

/// The nine application labels used by per-app tables.
pub const APPS: [&str; 9] = [
    "cassandra",
    "drupal",
    "finagle-chirper",
    "finagle-http",
    "kafka",
    "mediawiki",
    "tomcat",
    "verilator",
    "wordpress",
];

/// Extracts the numeric value of one whitespace token, tolerating the
/// decorations the reports use: `38.76%`, `(P=0.33,`, `±`, `0.166)`.
/// Tokens that merely contain digits (`bb12779`, `32K`, `<=12b%`) are not
/// numeric.
fn numeric_token(token: &str) -> Option<f64> {
    let trimmed = token.trim_matches(|c: char| "()%,;:±".contains(c));
    let candidate = match trimmed.rsplit_once('=') {
        Some((_, rhs)) => rhs,
        None => trimmed,
    };
    candidate.parse::<f64>().ok()
}

impl Figure {
    /// Parses a report. Each line becomes a [`Row`] when it contains at
    /// least one numeric cell.
    pub fn parse(text: &str) -> Figure {
        let mut rows = Vec::new();
        for line in text.lines() {
            let mut label_tokens: Vec<&str> = Vec::new();
            let mut values = Vec::new();
            for token in line.split_whitespace() {
                match numeric_token(token) {
                    Some(v) if label_tokens.is_empty() && values.is_empty() => {
                        // Sweep rows lead with their x coordinate; keep it
                        // as the label, not a data cell.
                        label_tokens.push(token);
                        let _ = v;
                    }
                    Some(v) => values.push(v),
                    None if values.is_empty() => label_tokens.push(token),
                    None => {}
                }
            }
            if !values.is_empty() {
                rows.push(Row {
                    label: label_tokens.join(" "),
                    values,
                });
            }
        }
        Figure {
            text: text.to_string(),
            rows,
        }
    }

    /// First row whose label starts with `label` (bar-chart sections may
    /// repeat an app's label later with fewer cells).
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.label.starts_with(label))
    }

    /// Cell `col` of the first row labelled `label`; NaN when missing, so
    /// a malformed file fails its checks instead of panicking.
    pub fn value(&self, label: &str, col: usize) -> f64 {
        self.row(label)
            .and_then(|r| r.values.get(col))
            .copied()
            .unwrap_or(f64::NAN)
    }

    /// Cell `col` of the MEAN row.
    pub fn mean(&self, col: usize) -> f64 {
        self.value("MEAN", col)
    }

    /// First data row per application, in [`APPS`] order, skipping apps
    /// the figure does not include.
    pub fn app_rows(&self) -> Vec<&Row> {
        APPS.iter().filter_map(|app| self.row(app)).collect()
    }

    /// Rows with exactly `n` cells (sweep tables whose labels are x
    /// coordinates), excluding MEAN/app rows is not needed because cell
    /// counts already distinguish them in every sweep figure.
    pub fn rows_with(&self, n: usize) -> Vec<&Row> {
        self.rows.iter().filter(|r| r.values.len() == n).collect()
    }
}

/// One named, machine-checkable fragment of a figure's shape verdict.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being asserted, in words.
    pub name: String,
    /// The measured quantity the assertion inspected (for the report).
    pub value: f64,
    /// Whether the assertion holds.
    pub pass: bool,
}

fn check(name: &str, value: f64, pass: bool) -> Check {
    Check {
        name: name.to_string(),
        value,
        pass,
    }
}

/// `value >= floor` with NaN failing.
fn at_least(name: &str, value: f64, floor: f64) -> Check {
    check(name, value, value >= floor)
}

fn at_most(name: &str, value: f64, ceil: f64) -> Check {
    check(name, value, value <= ceil)
}

/// Largest increase along `series` (0 when monotonically non-increasing).
fn max_rise(series: &[f64]) -> f64 {
    series
        .windows(2)
        .map(|w| w[1] - w[0])
        .fold(0.0f64, f64::max)
}

/// The shape-verdict checks for one figure id, evaluated on one parsed
/// report. Every check must pass on the seed baseline AND the current
/// results for the regeneration to be considered shape-preserving.
pub fn verdicts(id: &str, fig: &Figure) -> Vec<Check> {
    let apps = fig.app_rows();
    match id {
        "fig01" => {
            let min_frontend = apps
                .iter()
                .map(|r| r.values[0])
                .fold(f64::INFINITY, f64::min);
            vec![
                at_least("every app frontend-bound >= 24% (paper band)", min_frontend, 24.0),
                at_least("mean frontend share > backend share", fig.mean(0) - fig.mean(2), 0.0),
                check(
                    "verilator is the frontend-bound extreme",
                    fig.value("verilator", 0),
                    apps.iter().all(|r| fig.value("verilator", 0) >= r.values[0]),
                ),
            ]
        }
        "fig02" => vec![
            at_least("mean ideal-I$ speedup is large (> 50%)", fig.mean(0), 50.0),
            at_least("mean ideal-BTB speedup is large (> 20%)", fig.mean(1), 20.0),
            at_least(
                "every app gains from an ideal BTB",
                apps.iter().map(|r| r.values[1]).fold(f64::INFINITY, f64::min),
                5.0,
            ),
        ],
        "fig03" => {
            let mut mpki: Vec<f64> = apps.iter().map(|r| r.values[0]).collect();
            mpki.sort_by(f64::total_cmp);
            vec![
                check("mean MPKI in the paper's band (8-60)", fig.mean(0), (8.0..=60.0).contains(&fig.mean(0))),
                at_least(
                    "verilator is an outlier (>= 2x the next app)",
                    mpki[8] / mpki[7],
                    2.0,
                ),
            ]
        }
        "fig04" => vec![
            at_least("capacity+conflict dominate (mean > 40%)", fig.mean(1) + fig.mean(2), 40.0),
            check(
                "mean conflict share near the paper's ~24%",
                fig.mean(2),
                (10.0..=35.0).contains(&fig.mean(2)),
            ),
        ],
        "fig05" => {
            let worst_rise = apps.iter().map(|r| max_rise(&r.values)).fold(0.0, f64::max);
            vec![
                at_most("capacity misses fall with BTB size (per app)", worst_rise, 1.5),
                at_least("capacity misses persist past 8K (cassandra)", fig.value("cassandra", 2), 10.0),
                at_least("verilator still capacity-bound at 32K", fig.value("verilator", 4), 5.0),
            ]
        }
        "fig06" => {
            let worst_rise = apps.iter().map(|r| max_rise(&r.values)).fold(0.0, f64::max);
            vec![
                at_most("conflict misses fall monotonically with ways", worst_rise, 1.0),
                at_least(
                    "conflicts remain at 128 ways (cassandra)",
                    fig.value("cassandra", 5),
                    0.5,
                ),
            ]
        }
        "fig07" => vec![
            at_least("conditionals dominate BTB accesses (mean)", fig.mean(0), 45.0),
            check(
                "cond% is the largest mean column",
                fig.mean(0),
                (1..6).all(|c| fig.mean(0) > fig.mean(c)),
            ),
        ],
        "fig08" => {
            let note = fig.row("unconditional direct branches");
            let (acc, miss) = note
                .map(|r| (r.values[0], r.values[1]))
                .unwrap_or((f64::NAN, f64::NAN));
            vec![
                check(
                    "uncond directs ~20% of accesses (15-30%)",
                    acc,
                    (15.0..=30.0).contains(&acc),
                ),
                at_least("uncond directs miss disproportionately (+5pp)", miss - acc, 5.0),
            ]
        }
        "fig09" => vec![
            at_most("Shotgun mean speedup is small (|x| <= 5%)", fig.mean(0).abs(), 5.0),
            check(
                "Confluence mean modest (0-25%)",
                fig.mean(1),
                (0.0..=25.0).contains(&fig.mean(1)),
            ),
        ],
        "fig10" => vec![
            at_least("recurring streams lead (mean)", fig.mean(0) - fig.mean(1), 0.0),
            at_least("new streams beat non-repetitive (mean)", fig.mean(1) - fig.mean(2), 0.0),
        ],
        "fig11" => {
            let oversub = apps.iter().filter(|r| r.values[1] > 1.0).count();
            vec![
                at_least("U-BTB partition too small for most apps", oversub as f64, 6.0),
                at_least("verilator wildly oversubscribed (>= 4x)", fig.value("verilator", 1), 4.0),
            ]
        }
        "fig12" => vec![
            // Known divergence D5: the stable shape HERE is that the
            // generator keeps conditionals near their targets, unlike the
            // paper's 26-45%.
            at_most("out-of-range conds stay small (mean < 10%, D5)", fig.mean(0), 10.0),
        ],
        "fig13" => {
            let profile = fig.row("profile");
            let (samples, plans) = profile
                .map(|r| (r.values[0], r.values[2]))
                .unwrap_or((f64::NAN, f64::NAN));
            let miss_rows = fig.rows.iter().filter(|r| r.label.starts_with("miss bb")).count();
            vec![
                at_least("profile has miss samples", samples, 1.0),
                at_least("analysis emits plans", plans, 1.0),
                at_least("report lists planned miss branches", miss_rows as f64, 3.0),
            ]
        }
        "fig14" => vec![check(
            "~80% of prefetch-branch offsets fit 12 bits (60-95%)",
            fig.mean(1),
            (60.0..=95.0).contains(&fig.mean(1)),
        )],
        "fig15" => vec![at_least(
            "branch-target offsets overwhelmingly fit 12 bits",
            fig.mean(1),
            75.0,
        )],
        "fig16" => {
            let min_twig = apps.iter().map(|r| r.values[0]).fold(f64::INFINITY, f64::min);
            vec![
                at_least("Twig speeds up every app", min_twig, 0.0),
                at_least("Twig >> Shotgun (mean gap >= 10pp)", fig.mean(0) - fig.mean(2), 10.0),
                at_least("Twig beats the 4x (32K) BTB", fig.mean(0) - fig.mean(3), 0.0),
                at_least("ideal BTB bounds Twig from above", fig.mean(1) - fig.mean(0), 0.0),
            ]
        }
        "fig17" => vec![
            at_least("Twig coverage substantial (mean >= 25%)", fig.mean(0), 25.0),
            at_least("Twig covers more than Shotgun", fig.mean(0) - fig.mean(1), 10.0),
            at_least("Confluence between Twig and Shotgun", fig.mean(2) - fig.mean(1), 0.0),
        ],
        "fig18" => vec![check(
            "software prefetching carries most of the benefit (60-90%)",
            fig.mean(2),
            (60.0..=90.0).contains(&fig.mean(2)),
        )],
        "fig19" => vec![
            at_least("Twig accuracy beats Shotgun (mean)", fig.mean(0) - fig.mean(1), 0.0),
            check(
                "Twig accuracy near the paper's 31.3% (20-45%)",
                fig.mean(0),
                (20.0..=45.0).contains(&fig.mean(0)),
            ),
        ],
        "fig20" => vec![
            at_least("training profile retains real benefit (mean >= 20% of ideal)", fig.mean(0), 20.0),
            at_least("same-input profile does better still", fig.mean(3) - fig.mean(0), 0.0),
        ],
        "fig21" => vec![
            at_most("static overhead stays modest (mean < 20%)", fig.mean(0), 20.0),
            check(
                "verilator has the largest static overhead",
                fig.value("verilator", 0),
                apps.iter().all(|r| fig.value("verilator", 0) >= r.values[0]),
            ),
        ],
        "fig22" => vec![
            at_most("dynamic overhead stays modest (mean < 15%)", fig.mean(0), 15.0),
            check(
                "verilator has the largest dynamic overhead",
                fig.value("verilator", 0),
                apps.iter().all(|r| fig.value("verilator", 0) >= r.values[0]),
            ),
        ],
        "fig23" | "fig24" => {
            let rows = fig.rows_with(3);
            let min_lead = rows
                .iter()
                .map(|r| (r.values[0] - r.values[1]).min(r.values[0] - r.values[2]))
                .fold(f64::INFINITY, f64::min);
            let min_twig = rows.iter().map(|r| r.values[0]).fold(f64::INFINITY, f64::min);
            vec![
                at_least("Twig leads every configuration", min_lead, 0.0),
                at_least("Twig stays >= 25% of ideal everywhere", min_twig, 25.0),
            ]
        }
        "fig25" => {
            let rows = fig.rows_with(3);
            let twig: Vec<f64> = rows.iter().map(|r| r.values[0]).collect();
            let flatness = |col: usize| {
                let series: Vec<f64> = rows.iter().map(|r| r.values[col]).collect();
                series.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
                    - series.iter().fold(f64::INFINITY, |a, &b| a.min(b))
            };
            vec![
                at_least(
                    "Twig scales with prefetch-buffer size (256 > 8 entries)",
                    twig[twig.len() - 1] - twig[0],
                    5.0,
                ),
                at_most("Shotgun flat across buffer sizes", flatness(1), 3.0),
                at_most("Confluence flat across buffer sizes", flatness(2), 3.0),
            ]
        }
        "fig26" => {
            let rows = fig.rows_with(1);
            let series: Vec<f64> = rows.iter().map(|r| r.values[0]).collect();
            let tail_max = series[1..].iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            vec![
                at_least("timeliness cliff at distance 0", tail_max - series[0], 3.0),
                at_least(
                    "useful at every nonzero distance (>= 25% of ideal)",
                    series[1..].iter().fold(f64::INFINITY, |a, &b| a.min(b)),
                    25.0,
                ),
            ]
        }
        "fig27" => {
            let rows = fig.rows_with(2);
            let gain8 = rows
                .iter()
                .find(|r| r.label == "8")
                .map(|r| r.values[1])
                .unwrap_or(f64::NAN);
            let best = rows.iter().map(|r| r.values[1]).fold(f64::NEG_INFINITY, f64::max);
            vec![
                at_least("coalescing adds real benefit at 8 bits", gain8, 3.0),
                at_most("8 bits capture (almost) all of the gain", best - gain8, 2.0),
            ]
        }
        "fig28" => {
            let rows = fig.rows_with(3);
            let deep: Vec<&&Row> = rows.iter().filter(|r| r.label != "1").collect();
            let twig: Vec<f64> = deep.iter().map(|r| r.values[0]).collect();
            let spread = twig.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
                - twig.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let min_lead = deep
                .iter()
                .map(|r| (r.values[0] - r.values[1]).min(r.values[0] - r.values[2]))
                .fold(f64::INFINITY, f64::min);
            vec![
                at_most("Twig stable across FTQ depths >= 2 (spread)", spread, 20.0),
                at_least("Twig leads at every depth >= 2", min_lead, 0.0),
            ]
        }
        "tab01" => vec![
            check(
                "documents the Table 1 BTB geometry",
                f64::NAN,
                fig.text.contains("8192-entry 4-way BTB"),
            ),
            check(
                "documents the FTQ/frontend parameters",
                f64::NAN,
                fig.text.contains("FTQ") && fig.text.contains("L1i"),
            ),
        ],
        "tab02" => {
            let min_gap = apps
                .iter()
                .map(|r| r.values[0] - r.values[2])
                .fold(f64::INFINITY, f64::min);
            let max_std = apps
                .iter()
                .map(|r| r.values[1].max(r.values[3]))
                .fold(0.0, f64::max);
            vec![
                at_least("same-input >= training for every app", min_gap, 0.0),
                at_most("per-app sigma small (<= 16, as in the paper)", max_std, 16.0),
            ]
        }
        "tab03" => vec![
            check(
                "verilator has the largest working set and overhead",
                fig.value("verilator", 2),
                apps.iter().all(|r| {
                    fig.value("verilator", 0) >= r.values[0]
                        && fig.value("verilator", 2) >= r.values[2]
                }),
            ),
            at_most(
                "overhead bounded (every app < 40%)",
                apps.iter().map(|r| r.values[2]).fold(0.0, f64::max),
                40.0,
            ),
        ],
        "ext01" => {
            let incr: Vec<(f64, f64)> = fig
                .rows_with(4)
                .iter()
                .map(|r| (r.values[1] - r.values[0], r.values[3] - r.values[2]))
                .collect();
            let min_incr = incr
                .iter()
                .map(|&(a, b)| a.min(b))
                .fold(f64::INFINITY, f64::min);
            let max_gap = incr.iter().map(|&(a, b)| (a - b).abs()).fold(0.0, f64::max);
            vec![
                at_least("Twig adds >= 10pp on both organizations", min_incr, 10.0),
                at_most("increments comparable across organizations", max_gap, 15.0),
            ]
        }
        "ext02" => vec![at_most(
            "hardware alternatives far below Twig everywhere (< 20%)",
            fig.rows_with(3)
                .iter()
                .flat_map(|r| r.values.iter().copied())
                .fold(0.0, f64::max),
            20.0,
        )],
        other => vec![check(&format!("unknown figure id {other}"), f64::NAN, false)],
    }
}

/// All figure/table ids with shape verdicts (the full `experiments all`
/// output set).
pub const VERIFIED_IDS: [&str; 33] = [
    "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "fig27", "fig28", "tab01", "tab02",
    "tab03", "ext01", "ext02",
];

/// The verdict comparison for one figure across two result sets.
pub struct FigureComparison {
    pub id: String,
    /// (check, seed evaluation, current evaluation), zipped by position.
    pub checks: Vec<(Check, Check)>,
}

impl FigureComparison {
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|(s, c)| s.pass && c.pass)
    }
}

/// Evaluates every figure's verdict on the baseline and current result
/// directories. Returns an error listing missing files.
pub fn compare_dirs(baseline: &Path, current: &Path) -> Result<Vec<FigureComparison>, String> {
    let mut out = Vec::new();
    for id in VERIFIED_IDS {
        let load = |dir: &Path| -> Result<Figure, String> {
            let path = dir.join(format!("{id}.txt"));
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            Ok(Figure::parse(&text))
        };
        let seed = verdicts(id, &load(baseline)?);
        let cur = verdicts(id, &load(current)?);
        assert_eq!(seed.len(), cur.len(), "verdicts(id) must be deterministic");
        out.push(FigureComparison {
            id: id.to_string(),
            checks: seed.into_iter().zip(cur).collect(),
        });
    }
    Ok(out)
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "—".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// Renders the side-by-side markdown report (docs/SEED_COMPARISON.md).
pub fn render_report(comparisons: &[FigureComparison]) -> String {
    let mut doc = String::new();
    doc.push_str(
        "# Seed vs. regenerated results — shape-verdict comparison\n\n\
         Generated by `cargo run --release -p twig-bench --bin verify_shapes`.\n\
         Do not edit by hand.\n\n\
         `results/seed_baseline/` preserves the figures as generated by the\n\
         seed revision with the crates.io `rand` 0.10 stream; `results/` is\n\
         the current regeneration with the vendored `twig-rand` stream\n\
         (xoshiro256++, Lemire-unbiased ranges). Absolute values differ —\n\
         the workloads are synthetic and PRNG-stream-dependent — so what\n\
         this table verifies is that every figure's *qualitative verdict*\n\
         (orderings, bands, monotonicity, crossovers) holds identically on\n\
         both streams. The same checks run in `cargo test` (twig-bench\n\
         `shapes` tests) and in CI.\n\n\
         | figure | shape check | seed | current | verdict |\n\
         |---|---|---|---|---|\n",
    );
    for cmp in comparisons {
        for (seed, cur) in &cmp.checks {
            let verdict = match (seed.pass, cur.pass) {
                (true, true) => "✓ / ✓",
                (true, false) => "✓ / ✗ **FLIPPED**",
                (false, true) => "✗ **FAILS ON SEED** / ✓",
                (false, false) => "✗ / ✗",
            };
            let _ = writeln!(
                doc,
                "| {} | {} | {} | {} | {} |",
                cmp.id,
                seed.name,
                fmt_value(seed.value),
                fmt_value(cur.value),
                verdict
            );
        }
    }
    let failed: Vec<&str> = comparisons
        .iter()
        .filter(|c| !c.all_pass())
        .map(|c| c.id.as_str())
        .collect();
    if failed.is_empty() {
        doc.push_str("\nAll shape verdicts hold on both result sets.\n");
    } else {
        let _ = writeln!(doc, "\n**FAILING figures: {}**", failed.join(", "));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("repo root")
    }

    #[test]
    fn parser_reads_labels_numbers_and_sweeps() {
        let fig = Figure::parse(
            "Fig. X — header 24-78% text\n\
             app            a%      b%\n\
             cassandra    69.08    1.36\n\
             MEAN         69.89    2.26\n\
             8            32.5    -0.0\n\
             note: 20.0% of accesses, 39.3% of misses\n",
        );
        assert_eq!(fig.value("cassandra", 0), 69.08);
        assert_eq!(fig.mean(1), 2.26);
        let sweep = fig.row("8").expect("sweep row");
        assert_eq!(sweep.values, vec![32.5, -0.0]);
        assert_eq!(fig.row("note:").expect("note").values, vec![20.0, 39.3]);
        // The header contributes no row ("24-78%" is not a number).
        assert!(fig.rows.iter().all(|r| !r.label.starts_with("Fig.")));
    }

    #[test]
    fn tokens_with_digits_are_not_numbers() {
        assert_eq!(numeric_token("38.76%"), Some(38.76));
        assert_eq!(numeric_token("(P=0.33,"), Some(0.33));
        assert_eq!(numeric_token("-7.7"), Some(-7.7));
        assert_eq!(numeric_token("bb12779"), None);
        assert_eq!(numeric_token("32K"), None);
        assert_eq!(numeric_token("<=12b%"), None);
        assert_eq!(numeric_token("4-way"), None);
    }

    /// The load-bearing claim: regenerating the figures with the vendored
    /// RNG preserved every shape verdict of the seed results.
    #[test]
    fn all_shape_verdicts_hold_on_seed_and_current() {
        let root = repo_root();
        let comparisons = compare_dirs(
            &root.join("results/seed_baseline"),
            &root.join("results"),
        )
        .expect("both result sets readable");
        let mut failures = Vec::new();
        for cmp in &comparisons {
            for (seed, cur) in &cmp.checks {
                if !seed.pass {
                    failures.push(format!("{} [seed]: {} ({})", cmp.id, seed.name, seed.value));
                }
                if !cur.pass {
                    failures.push(format!("{} [current]: {} ({})", cmp.id, cur.name, cur.value));
                }
            }
        }
        assert!(failures.is_empty(), "shape verdicts violated:\n{}", failures.join("\n"));
    }
}
