//! Spillable trace handles: what the artifact cache's event-trace shard
//! actually stores.
//!
//! Small traces (every standard cell) stay materialized in memory exactly
//! as before. A trace whose event count crosses the spill threshold
//! (`TWIG_TRACE_SPILL_EVENTS`) is written once to an on-disk `.twgc`
//! columnar file — atomically, via the durability layer — and handed out
//! as an mmap-backed handle that streams with one chunk resident at a
//! time, so a 50M-event trace no longer costs gigabytes of heap per
//! process.
//!
//! Either way the handle is keyed and fingerprinted like the old
//! `Arc<[BlockEvent]>` entries, and [`TraceHandle::source`] yields an
//! [`AnySource`] that every simulation/observation path consumes without
//! caring which backing it got.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use twig_workload::{
    AnySource, AppId, BlockEvent, ColumnarReader, ColumnarSource, InputConfig, MemSource,
    Program, Walker,
};

use crate::cache::Fingerprint;

/// One cached event trace: in memory, or spilled to a `.twgc` file.
#[derive(Clone)]
pub enum TraceHandle {
    /// Fully materialized (small traces; the common case).
    Mem(Arc<[BlockEvent]>),
    /// Spilled to columnar storage; streamed back via mmap with bounded
    /// resident memory.
    Spilled(Arc<ColumnarReader>),
}

impl TraceHandle {
    /// Total number of events in the trace.
    pub fn event_count(&self) -> u64 {
        match self {
            TraceHandle::Mem(events) => events.len() as u64,
            TraceHandle::Spilled(reader) => reader.total_events(),
        }
    }

    /// Whether the trace lives on disk.
    pub fn is_spilled(&self) -> bool {
        matches!(self, TraceHandle::Spilled(_))
    }

    /// A fresh resettable source over the trace. Cheap for both backings
    /// (an `Arc` clone); spilled traces decode one chunk at a time.
    pub fn source(&self) -> AnySource {
        match self {
            TraceHandle::Mem(events) => MemSource::new(Arc::clone(events)).into(),
            TraceHandle::Spilled(reader) => {
                ColumnarSource::from_reader(Arc::clone(reader)).into()
            }
        }
    }

    /// The whole trace as one in-memory slice. For `Mem` this is a free
    /// `Arc` clone; for `Spilled` it decodes the entire file — only test
    /// and small-trace comparison code should call it on a spilled handle.
    pub fn materialize(&self) -> Arc<[BlockEvent]> {
        match self {
            TraceHandle::Mem(events) => Arc::clone(events),
            TraceHandle::Spilled(reader) => reader
                .read_all()
                .expect("spilled trace validated at open must decode")
                .into(),
        }
    }
}

impl From<Vec<BlockEvent>> for TraceHandle {
    fn from(events: Vec<BlockEvent>) -> Self {
        TraceHandle::Mem(events.into())
    }
}

impl From<Arc<[BlockEvent]>> for TraceHandle {
    fn from(events: Arc<[BlockEvent]>) -> Self {
        TraceHandle::Mem(events)
    }
}

impl Fingerprint for TraceHandle {
    fn fingerprint(&self) -> u64 {
        match self {
            TraceHandle::Mem(events) => events.fingerprint(),
            // A spilled trace's data integrity is already covered by the
            // per-chunk CRCs verified on decode; the handle fingerprint
            // covers the *directory* shape (counts and offsets), which is
            // what a poisoned cache entry would perturb.
            TraceHandle::Spilled(reader) => {
                let mut h = crate::cache::mix(crate::cache::FNV_OFFSET, reader.total_events());
                for s in reader.summaries() {
                    h = crate::cache::mix(h, s.offset);
                    h = crate::cache::mix(h, u64::from(s.events));
                    h = crate::cache::mix(h, u64::from(s.taken));
                    h = crate::cache::mix(h, u64::from(s.targets));
                }
                h
            }
        }
    }
}

/// The per-process spill directory (under the system temp dir; spill
/// files are cache state, not results, and a crashed process's leftovers
/// are keyed by pid so a new run never trips over them).
fn spill_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("twig-spill-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    })
}

/// The spill file for one `(app, input, instructions)` trace key.
pub(crate) fn spill_path(app: AppId, input: u32, instructions: u64) -> PathBuf {
    spill_dir().join(format!("{}-i{input}-n{instructions}.twgc", app.name()))
}

/// Walks the event trace for `(program, input)` bounded by `instructions`,
/// spilling to `path` once the buffered prefix crosses `threshold` events.
/// Event-for-event identical to [`Walker::run_instructions`] regardless of
/// which backing comes out.
pub(crate) fn collect_trace(
    program: &Program,
    input: InputConfig,
    instructions: u64,
    threshold: Option<u64>,
    path: impl FnOnce() -> PathBuf,
) -> TraceHandle {
    let threshold = threshold.unwrap_or(u64::MAX);
    let mut walker = Walker::new(program, input);
    let mut buffered: Vec<BlockEvent> = Vec::new();
    let mut executed: u64 = 0;
    while executed < instructions {
        let Some(ev) = walker.next() else { break };
        executed += u64::from(program.block(ev.block).num_instrs);
        buffered.push(ev);
        if buffered.len() as u64 >= threshold {
            let path = path();
            match spill_to_disk(program, walker, buffered, executed, instructions, &path) {
                Ok(handle) => return handle,
                Err(e) => {
                    eprintln!(
                        "warning: trace spill to {} failed ({e}); keeping trace in memory",
                        path.display()
                    );
                    // The walker was consumed by the failed spill; redo
                    // the whole (deterministic) walk in memory.
                    return TraceHandle::Mem(
                        Walker::new(program, input).run_instructions(instructions).into(),
                    );
                }
            }
        }
    }
    TraceHandle::Mem(buffered.into())
}

/// Streams `buffered` plus the rest of the walk into a `.twgc` file and
/// re-opens it as a spilled handle. Peak memory is the buffered prefix
/// (the spill threshold) plus one encode chunk.
fn spill_to_disk(
    program: &Program,
    mut walker: Walker<&Program>,
    buffered: Vec<BlockEvent>,
    mut executed: u64,
    instructions: u64,
    path: &std::path::Path,
) -> std::io::Result<TraceHandle> {
    let tail = std::iter::from_fn(move || {
        if executed >= instructions {
            return None;
        }
        let ev = walker.next()?;
        executed += u64::from(program.block(ev.block).num_instrs);
        Some(ev)
    });
    twig_workload::write_columnar_file(path, buffered.into_iter().chain(tail))?;
    let reader = ColumnarReader::open(path).map_err(std::io::Error::other)?;
    Ok(TraceHandle::Spilled(Arc::new(reader)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_program() -> Program {
        twig_workload::ProgramGenerator::new(twig_workload::WorkloadSpec::tiny_test()).generate()
    }

    #[test]
    fn below_threshold_stays_in_memory_and_matches_walk() {
        let program = test_program();
        let input = InputConfig::numbered(0);
        let reference = Walker::new(&program, input).run_instructions(30_000);
        let handle = collect_trace(&program, input, 30_000, Some(u64::MAX), || {
            unreachable!("must not spill below threshold")
        });
        assert!(!handle.is_spilled());
        assert_eq!(&handle.materialize()[..], &reference[..]);
        assert_eq!(handle.event_count(), reference.len() as u64);
    }

    #[test]
    fn above_threshold_spills_and_streams_identically() {
        let program = test_program();
        let input = InputConfig::numbered(3);
        let reference = Walker::new(&program, input).run_instructions(30_000);
        let dir = std::env::temp_dir().join(format!("twig-spill-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spill-roundtrip.twgc");
        let handle = collect_trace(&program, input, 30_000, Some(64), || path.clone());
        assert!(handle.is_spilled(), "64-event threshold must force a spill");
        assert_eq!(handle.event_count(), reference.len() as u64);
        assert_eq!(&handle.materialize()[..], &reference[..]);
        let streamed: Vec<BlockEvent> = handle.source().collect();
        assert_eq!(streamed, reference, "streaming decode must be bit-identical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_spill_falls_back_to_memory() {
        let program = test_program();
        let input = InputConfig::numbered(1);
        let reference = Walker::new(&program, input).run_instructions(20_000);
        // A spill path whose parent is a regular file fails the atomic
        // publish (ENOTDIR — the durable layer's create_dir_all cannot
        // help); the trace must still come back complete, in memory.
        let blocker =
            std::env::temp_dir().join(format!("twig-spill-blocker-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let bogus = blocker.join("never.twgc");
        let handle = collect_trace(&program, input, 20_000, Some(64), || bogus.clone());
        assert!(!handle.is_spilled());
        assert_eq!(&handle.materialize()[..], &reference[..]);
        let _ = std::fs::remove_file(&blocker);
    }
}
