//! Harness-side observability plumbing: where per-cell metrics
//! snapshots and trace exports land on disk.
//!
//! The `experiments` binary pins the export directory (normally
//! `<results-dir>/metrics/`) once at startup; every supervised matrix
//! cell whose simulator ran at `counters` tier or above then writes
//! `<app>_<config>.json` there (and `<app>_<config>.trace.json` at the
//! `trace` tier), and records the export in the run manifest. With no
//! directory pinned — unit tests, library use — recording is a no-op,
//! and at the `off` tier the simulator produces no snapshot at all.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use twig_sim::{AttributionSnapshot, MetricsSnapshot};

use crate::manifest;

static METRICS_DIR: OnceLock<PathBuf> = OnceLock::new();

/// Pins the process-wide metrics export directory. First caller wins.
pub fn set_metrics_dir(dir: PathBuf) {
    let _ = METRICS_DIR.set(dir);
}

/// The pinned export directory, if any.
pub fn metrics_dir() -> Option<&'static Path> {
    METRICS_DIR.get().map(PathBuf::as_path)
}

/// Derives the export file stem from a cell label: `sim:kafka/twig` →
/// `kafka_twig`. Path separators and whitespace never survive into file
/// names.
pub fn cell_file_stem(label: &str) -> String {
    let tail = label.split_once(':').map(|(_, t)| t).unwrap_or(label);
    tail.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '-' | '.' => c,
            _ => '_',
        })
        .collect()
}

/// Publishes one export atomically, degrading the cell's manifest entry
/// with a typed reason on failure instead of dropping the export on the
/// floor. A matching `disk-full` fault clause (label `export:<file>`)
/// models `ENOSPC`: nothing is written — a torn export must never be
/// published under an atomic rename. Returns whether the file landed.
fn publish_export(label: &str, artifact: &str, dir: &Path, file: &str, bytes: &[u8]) -> bool {
    let path = dir.join(file);
    let fault_label = format!("export:{file}");
    if twig_sched::fault::global()
        .apply_write_fault(&fault_label, bytes)
        .is_some()
    {
        let reason = "injected disk-full (export not written)".to_string();
        eprintln!("[twig-bench] {artifact} export for {label} degraded: {reason}");
        manifest::record_export_failure(label, artifact, &reason);
        return false;
    }
    match twig_sched::durable::publish_atomic(&path, bytes, Some("metrics-tmp"), None) {
        Ok(()) => true,
        Err(e) => {
            let reason = format!("write failed: {e}");
            eprintln!("[twig-bench] {artifact} export for {label} degraded: {reason}");
            manifest::record_export_failure(label, artifact, &reason);
            false
        }
    }
}

/// Writes one cell's metrics snapshot as
/// `<metrics-dir>/<app>_<config>.json` and folds the export into the run
/// manifest. No-op when no export directory is pinned.
pub fn record_cell_metrics(label: &str, snapshot: &MetricsSnapshot) {
    let Some(dir) = metrics_dir() else { return };
    let stem = cell_file_stem(label);
    let file = format!("{stem}.json");
    let Ok(json) = snapshot.to_json() else {
        let reason = "failed to serialize".to_string();
        eprintln!("[twig-bench] metrics export for {label} degraded: {reason}");
        manifest::record_export_failure(label, "metrics", &reason);
        return;
    };
    if publish_export(label, "metrics", dir, &file, json.as_bytes()) {
        manifest::record_metrics(
            label,
            &format!("metrics/{file}"),
            snapshot.counters.len(),
            snapshot.histograms.len(),
        );
    }
}

/// Writes one cell's per-branch attribution profile as
/// `<metrics-dir>/<app>_<config>.attr.json` plus its folded-stack export
/// as `<app>_<config>.folded.txt`, and folds both into the run manifest.
/// No-op when no export directory is pinned.
pub fn record_cell_attribution(label: &str, snapshot: &AttributionSnapshot, folded: &str) {
    let Some(dir) = metrics_dir() else { return };
    let stem = cell_file_stem(label);
    let attr_file = format!("{stem}.attr.json");
    let folded_file = format!("{stem}.folded.txt");
    let Ok(json) = snapshot.to_json() else {
        let reason = "failed to serialize".to_string();
        eprintln!("[twig-bench] attribution export for {label} degraded: {reason}");
        manifest::record_export_failure(label, "attribution", &reason);
        return;
    };
    if publish_export(label, "attribution", dir, &attr_file, json.as_bytes())
        && publish_export(label, "attribution", dir, &folded_file, folded.as_bytes())
    {
        manifest::record_attribution(
            label,
            &format!("metrics/{attr_file}"),
            &format!("metrics/{folded_file}"),
            snapshot.entries.len(),
            snapshot.total_cycles,
        );
    }
}

/// Writes one cell's windowed timeline as
/// `<metrics-dir>/<app>_<config>.timeline.json` and folds the export
/// into the run manifest. No-op when no export directory is pinned.
pub fn record_cell_timeline(label: &str, snapshot: &twig_sim::TimelineSnapshot) {
    let Some(dir) = metrics_dir() else { return };
    let stem = cell_file_stem(label);
    let file = format!("{stem}.timeline.json");
    let Ok(json) = snapshot.to_json() else {
        let reason = "failed to serialize".to_string();
        eprintln!("[twig-bench] timeline export for {label} degraded: {reason}");
        manifest::record_export_failure(label, "timeline", &reason);
        return;
    };
    if publish_export(label, "timeline", dir, &file, json.as_bytes()) {
        manifest::record_timeline(
            label,
            &format!("metrics/{file}"),
            snapshot.windows.len(),
            snapshot.phases.len(),
        );
    }
}

/// Writes one cell's chrome://tracing export as
/// `<metrics-dir>/<app>_<config>.trace.json`. No-op when no export
/// directory is pinned.
pub fn record_cell_trace(label: &str, chrome_json: &str) {
    let Some(dir) = metrics_dir() else { return };
    let file = format!("{}.trace.json", cell_file_stem(label));
    publish_export(label, "trace", dir, &file, chrome_json.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_become_safe_file_stems() {
        assert_eq!(cell_file_stem("sim:kafka/twig"), "kafka_twig");
        assert_eq!(cell_file_stem("meta:tomcat"), "tomcat");
        assert_eq!(cell_file_stem("no-colon label"), "no-colon_label");
        assert_eq!(cell_file_stem("sim:a/../b"), "a_.._b");
    }

    #[test]
    fn recording_without_a_pinned_dir_is_a_noop() {
        // METRICS_DIR may or may not be pinned by another test in this
        // process; rely only on the pure helpers here and on the fact
        // that an empty snapshot round-trips.
        let snap = MetricsSnapshot::empty();
        record_cell_metrics("sim:test/none", &snap);
        record_cell_trace("sim:test/none", "{}");
    }
}
