//! End-to-end observability tests driving the `experiments` binary as a
//! subprocess: the recording tier is process-global (environment or
//! `--obs`), so each scenario gets its own process, exactly like CI's
//! observability lane.

use std::path::{Path, PathBuf};
use std::process::Command;

const BUDGET: &str = "60000";

fn run(dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    // Never inherit an ambient tier or thread policy; each scenario
    // pins its own.
    cmd.env_remove("TWIG_OBS")
        .env_remove("TWIG_NUM_THREADS")
        .env_remove("TWIG_FAULT_SPEC");
    cmd.args(["fig16", "--instructions", BUDGET, "--results-dir"])
        .arg(dir)
        .args(extra_args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn experiments binary")
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twig-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn metrics_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir.join("metrics"))
        .expect("metrics dir exists")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

/// Turning recording on must not perturb the simulation: figure outputs
/// are byte-identical across `off`, `counters`, and `trace` tiers, the
/// `off` tier exports nothing, and the richer tiers' exports match the
/// checked-in schemas.
#[test]
fn tiers_agree_on_figures_and_exports_match_schemas() {
    let off_dir = temp_dir("off");
    let counters_dir = temp_dir("counters");
    let trace_dir = temp_dir("trace");

    let off = run(&off_dir, &["--obs", "off"], &[]);
    assert!(off.status.success(), "off-tier run failed: {off:?}");
    assert!(
        !off_dir.join("metrics").exists(),
        "the off tier must not create a metrics directory"
    );
    let manifest = String::from_utf8(read(&off_dir, "run_manifest.json")).unwrap();
    assert!(manifest.contains("\"obs\": \"off\""), "{manifest}");
    assert!(manifest.contains("\"metrics\": []"), "{manifest}");
    let reference = read(&off_dir, "fig16.txt");

    let counters = run(&counters_dir, &["--obs", "counters"], &[]);
    assert!(counters.status.success(), "counters run failed: {counters:?}");
    assert_eq!(
        read(&counters_dir, "fig16.txt"),
        reference,
        "counters tier changed the figure output"
    );
    let manifest = String::from_utf8(read(&counters_dir, "run_manifest.json")).unwrap();
    assert!(manifest.contains("\"obs\": \"counters\""), "{manifest}");
    let files = metrics_files(&counters_dir);
    assert!(!files.is_empty(), "counters tier exported no metrics");
    assert!(
        files.iter().all(|f| !f.ends_with(".trace.json")),
        "counters tier must not export traces: {files:?}"
    );
    // Every export is recorded in the manifest and matches the schema.
    let schema_text =
        std::fs::read_to_string(schema_path("metrics-v1.json")).expect("checked-in schema");
    let schema: twig_serde::Value = twig_serde_json::from_str(&schema_text).unwrap();
    for file in &files {
        assert!(
            manifest.contains(&format!("metrics/{file}")),
            "{file} missing from manifest"
        );
        let doc_text = String::from_utf8(read(&counters_dir, &format!("metrics/{file}"))).unwrap();
        let doc: twig_serde::Value = twig_serde_json::from_str(&doc_text).unwrap();
        twig_obs::validate(&doc, &schema).unwrap_or_else(|e| panic!("{file}: {e}"));
        // And it round-trips through the typed snapshot.
        twig_obs::MetricsSnapshot::from_json(&doc_text).unwrap();
    }

    let trace = run(&trace_dir, &["--obs", "trace=8"], &[]);
    assert!(trace.status.success(), "trace run failed: {trace:?}");
    assert_eq!(
        read(&trace_dir, "fig16.txt"),
        reference,
        "trace tier changed the figure output"
    );
    let files = metrics_files(&trace_dir);
    let traces: Vec<&String> = files.iter().filter(|f| f.ends_with(".trace.json")).collect();
    assert!(!traces.is_empty(), "trace tier exported no traces: {files:?}");
    let schema_text =
        std::fs::read_to_string(schema_path("trace-v1.json")).expect("checked-in schema");
    let schema: twig_serde::Value = twig_serde_json::from_str(&schema_text).unwrap();
    for file in traces {
        let doc_text = String::from_utf8(read(&trace_dir, &format!("metrics/{file}"))).unwrap();
        let doc: twig_serde::Value = twig_serde_json::from_str(&doc_text).unwrap();
        twig_obs::validate(&doc, &schema).unwrap_or_else(|e| panic!("{file}: {e}"));
    }

    let _ = std::fs::remove_dir_all(&off_dir);
    let _ = std::fs::remove_dir_all(&counters_dir);
    let _ = std::fs::remove_dir_all(&trace_dir);
}

fn schema_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("docs/schema")
        .join(name)
}

/// Counters-tier metrics are bit-identical for a fixed seed regardless
/// of worker-thread count, and from run to run: each simulation is
/// single-threaded and the registry holds no clocks, so scheduling must
/// not leak into the exports.
#[test]
fn metrics_are_deterministic_across_thread_counts_and_runs() {
    let one_dir = temp_dir("t1");
    let four_dir = temp_dir("t4");
    let again_dir = temp_dir("t4again");

    for (dir, threads) in [(&one_dir, "1"), (&four_dir, "4"), (&again_dir, "4")] {
        let out = run(
            dir,
            &["--obs", "counters"],
            &[("TWIG_NUM_THREADS", threads)],
        );
        assert!(out.status.success(), "{threads}-thread run failed: {out:?}");
    }

    let files = metrics_files(&one_dir);
    assert!(!files.is_empty(), "no metrics exported");
    assert_eq!(files, metrics_files(&four_dir), "export sets differ");
    assert_eq!(files, metrics_files(&again_dir), "export sets differ");
    for file in &files {
        let name = format!("metrics/{file}");
        let one = read(&one_dir, &name);
        assert_eq!(one, read(&four_dir, &name), "{file} differs across thread counts");
        assert_eq!(one, read(&again_dir, &name), "{file} differs across runs");
    }

    let _ = std::fs::remove_dir_all(&one_dir);
    let _ = std::fs::remove_dir_all(&four_dir);
    let _ = std::fs::remove_dir_all(&again_dir);
}
