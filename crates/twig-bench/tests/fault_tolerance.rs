//! End-to-end fault-tolerance tests driving the `experiments` binary as a
//! subprocess — checkpointing, fault injection, and resume are
//! process-global (environment-driven fault spec, process-wide caches and
//! manifest), so each scenario gets its own process, exactly like CI's
//! fault-injection job.

use std::path::{Path, PathBuf};
use std::process::Command;

const FIGS: [&str; 2] = ["fig16", "tab03"];
const BUDGET: &str = "60000";

fn experiments() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    // Never inherit a fault spec or task policy from the ambient
    // environment; each scenario sets its own.
    cmd.env_remove("TWIG_FAULT_SPEC")
        .env_remove("TWIG_TASK_ATTEMPTS")
        .env_remove("TWIG_TASK_BACKOFF_MS")
        .env_remove("TWIG_TASK_TIMEOUT_MS");
    cmd
}

fn run(dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = experiments();
    cmd.args(FIGS)
        .args(["--instructions", BUDGET, "--results-dir"])
        .arg(dir)
        .args(extra_args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn experiments binary")
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

fn manifest(dir: &Path) -> String {
    String::from_utf8(read(dir, "run_manifest.json")).expect("manifest is utf-8")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twig-ft-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One injected panic + one injected hang: the run must complete with
/// exit 0, quarantine exactly the faulted cells in the manifest and the
/// reports, and a fault-free `--resume` must re-execute only those cells
/// and restore byte-identical reports.
#[test]
fn faulted_run_quarantines_and_resume_heals() {
    let clean_dir = temp_dir("clean");
    let fault_dir = temp_dir("faulted");

    // Reference: a clean cold run.
    let clean = run(&clean_dir, &[], &[]);
    assert!(clean.status.success(), "clean run failed: {clean:?}");
    assert!(manifest(&clean_dir).contains("\"failed_cells\": 0"));

    // Injected faults: a panic in one cell, a hang (injected delay far
    // beyond the watchdog deadline) in another.
    let faulted = run(
        &fault_dir,
        &[],
        &[
            (
                "TWIG_FAULT_SPEC",
                "panic:label=sim:kafka/ideal;delay:label=sim:tomcat/shotgun,ms=5000",
            ),
            ("TWIG_TASK_TIMEOUT_MS", "300"),
            ("TWIG_TASK_BACKOFF_MS", "10"),
        ],
    );
    assert!(
        faulted.status.success(),
        "a faulted run must still exit 0: {faulted:?}"
    );
    let m = manifest(&fault_dir);
    assert!(m.contains("\"sim:kafka/ideal\""), "{m}");
    assert!(m.contains("injected panic"), "{m}");
    assert!(m.contains("timed out"), "{m}");
    assert_eq!(
        m.matches("\"status\": \"failed\"").count(),
        2,
        "exactly the two injected cells fail: {m}"
    );
    // The figure degrades instead of disappearing.
    let fig16 = String::from_utf8(read(&fault_dir, "fig16.txt")).unwrap();
    assert!(fig16.contains("FAILED("), "{fig16}");

    // Resume without faults: only the two failed cells re-run.
    let resumed = run(&fault_dir, &["--resume"], &[]);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let m = manifest(&fault_dir);
    assert!(m.contains("\"failed_cells\": 0"), "resume must go green: {m}");
    assert!(!m.contains("\"status\": \"failed\""), "{m}");
    // Experiment records are also `"status": "ok"`, so subtract them out.
    assert_eq!(
        m.matches("\"status\": \"ok\"").count() - FIGS.len(),
        2,
        "resume recomputes exactly the previously failed cells: {m}"
    );
    assert!(m.contains("\"status\": \"checkpointed\""));

    // Healed reports are byte-identical to the clean cold run.
    for name in ["fig16.txt", "tab03.txt"] {
        assert_eq!(
            read(&clean_dir, name),
            read(&fault_dir, name),
            "{name} differs between clean cold run and faulted+resumed run"
        );
    }

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}

/// A corrupted checkpoint record must be evicted and recomputed on
/// resume — never served — and the resumed run still matches a clean run.
#[test]
fn corrupt_checkpoint_is_evicted_on_resume() {
    let dir = temp_dir("corrupt");
    let cold = run(&dir, &[], &[]);
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    let reference = read(&dir, "fig16.txt");

    // Flip one payload byte in one checkpoint record.
    let ckpt_dir = dir.join(".checkpoints");
    let victim = std::fs::read_dir(&ckpt_dir)
        .expect("checkpoint dir exists")
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .expect("at least one checkpoint record");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, &bytes).unwrap();

    let resumed = run(&dir, &["--resume"], &[]);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    let m = manifest(&dir);
    assert!(!m.contains("\"status\": \"failed\""), "{m}");
    assert_eq!(
        m.matches("\"status\": \"ok\"").count() - FIGS.len(),
        1,
        "exactly the corrupted cell recomputes: {m}"
    );
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(
        stderr.contains("evicting corrupt checkpoint"),
        "eviction must be reported: {stderr}"
    );
    assert_eq!(read(&dir, "fig16.txt"), reference);

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--strict` turns a quarantined failure into a nonzero exit for CI
/// gates that must not tolerate degradation.
#[test]
fn strict_flag_fails_degraded_runs() {
    let dir = temp_dir("strict");
    let out = run(
        &dir,
        &["--strict"],
        &[
            ("TWIG_FAULT_SPEC", "panic:label=sim:drupal/btb32k"),
            ("TWIG_TASK_BACKOFF_MS", "10"),
        ],
    );
    assert!(!out.status.success(), "--strict must fail a degraded run");
    assert_eq!(out.status.code(), Some(1));
    let m = manifest(&dir);
    assert!(m.contains("\"sim:drupal/btb32k\""), "{m}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cold (non-`--resume`) run must ignore checkpoints from a previous
/// run: stale records are wiped and every cell recomputes.
#[test]
fn cold_run_wipes_stale_checkpoints() {
    let dir = temp_dir("coldwipe");
    let first = run(&dir, &[], &[]);
    assert!(first.status.success());
    assert!(manifest(&dir).contains("\"status\": \"ok\""));

    let second = run(&dir, &[], &[]);
    assert!(second.status.success());
    let m = manifest(&dir);
    assert!(
        !m.contains("\"status\": \"checkpointed\""),
        "cold runs must not serve stale checkpoints: {m}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
