//! Crash-recovery integration tests driving the `experiments` binary as
//! a subprocess: a representative crashpoint + `--resume` byte-identity
//! check (the exhaustive matrix lives in the `crash_drill` binary), the
//! concurrent-run lock (live holder refused with exit 6, dead holder
//! stolen), and export-failure degradation surfacing in the manifest.

use std::path::{Path, PathBuf};
use std::process::Command;

const EXPERIMENTS: &str = env!("CARGO_BIN_EXE_experiments");

/// A subprocess with ambient TWIG_* configuration scrubbed so host
/// environment cannot leak into the assertions.
fn experiments(envs: &[(&str, &str)]) -> Command {
    let mut cmd = Command::new(EXPERIMENTS);
    for var in twig_types::config::ALL_VARS {
        cmd.env_remove(var);
    }
    cmd.env_remove("RAYON_NUM_THREADS");
    cmd.env("TWIG_NUM_THREADS", "2");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd
}

fn fig16_args(dir: &Path) -> Vec<String> {
    vec![
        "fig16".into(),
        "--instructions".into(),
        "50000".into(),
        "--results-dir".into(),
        dir.display().to_string(),
        "--obs".into(),
        "counters".into(),
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twig-crash-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn crashed_checkpoint_publish_recovers_byte_identically_with_resume() {
    let clean = temp_dir("clean");
    let crashed = temp_dir("crashed");

    let status = experiments(&[]).args(fig16_args(&clean)).status().unwrap();
    assert!(status.success(), "clean run failed");

    // Kill the harness just before the first checkpoint rename commits.
    let status = experiments(&[("TWIG_CRASH_SPEC", "ckpt-tmp")])
        .args(fig16_args(&crashed))
        .status()
        .unwrap();
    assert_eq!(
        status.code(),
        Some(twig_sched::durable::CRASH_EXIT_CODE),
        "crash spec must abort with the distinctive crash exit code"
    );

    // Recovery steals the dead holder's lock, heals the torn temp file,
    // and recomputes only what never committed.
    let mut resume = fig16_args(&crashed);
    resume.push("--resume".into());
    let output = experiments(&[]).args(resume).output().unwrap();
    assert!(
        output.status.success(),
        "resume failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("stealing stale run lock"),
        "resume must report stealing the crashed run's lock; stderr:\n{stderr}"
    );

    let want = std::fs::read(clean.join("fig16.txt")).unwrap();
    let got = std::fs::read(crashed.join("fig16.txt")).unwrap();
    assert_eq!(want, got, "recovered figure differs from uncrashed reference");

    let manifest = std::fs::read_to_string(crashed.join("run_manifest.json")).unwrap();
    assert!(manifest.contains("\"failed_cells\": 0"));

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&crashed);
}

#[test]
fn live_lock_refuses_with_exit_6_and_dead_lock_is_stolen() {
    let dir = temp_dir("lock");
    std::fs::create_dir_all(&dir).unwrap();

    // A lock held by this (live) test process: the run must refuse.
    let lock_path = dir.join(twig_sched::durable::LOCK_FILE_NAME);
    std::fs::write(&lock_path, std::process::id().to_string()).unwrap();
    let output = experiments(&[]).args(fig16_args(&dir)).output().unwrap();
    assert_eq!(output.status.code(), Some(6), "live lock must exit 6");
    let stderr = String::from_utf8_lossy(&output.stderr);
    let holder = format!("(pid {})", std::process::id());
    assert!(
        stderr.contains("run holds") && stderr.contains(&holder),
        "refusal must name the holding pid; stderr:\n{stderr}"
    );

    // The same lock held by a certainly-dead pid: the run must steal it
    // and succeed.
    std::fs::write(&lock_path, u32::MAX.to_string()).unwrap();
    let output = experiments(&[]).args(fig16_args(&dir)).output().unwrap();
    assert!(
        output.status.success(),
        "dead lock must be stolen: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("stealing stale run lock"),
        "steal must be reported"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn export_disk_full_degrades_into_manifest_instead_of_tearing_files() {
    let dir = temp_dir("export");

    let output = experiments(&[(
        "TWIG_FAULT_SPEC",
        "disk-full:label=export:kafka_twig.json",
    )])
    .args(fig16_args(&dir))
    .output()
    .unwrap();
    assert!(
        output.status.success(),
        "export failure must degrade, not abort: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Nothing torn on disk: the export is absent, not half-written.
    assert!(!dir.join("metrics/kafka_twig.json").exists());

    // ...and the degradation is typed into the manifest.
    let manifest = std::fs::read_to_string(dir.join("run_manifest.json")).unwrap();
    assert!(
        manifest.contains("\"export_failures\""),
        "manifest must carry the export_failures field"
    );
    assert!(
        manifest.contains("injected disk-full (export not written)"),
        "manifest must record the typed failure reason:\n{manifest}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
