//! End-to-end windowed-timeline tests driving the `experiments` binary
//! as a subprocess: `TWIG_OBS_WINDOW` (or `--obs-window`) is
//! process-global, so each scenario gets its own process, exactly like
//! CI's timeline lane.

use std::path::{Path, PathBuf};
use std::process::Command;

const BUDGET: &str = "60000";

fn run(dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    cmd.env_remove("TWIG_OBS")
        .env_remove("TWIG_OBS_WINDOW")
        .env_remove("TWIG_NUM_THREADS")
        .env_remove("TWIG_NUM_PROCS")
        .env_remove("TWIG_FAULT_SPEC");
    cmd.args(["fig16", "--instructions", BUDGET, "--results-dir"])
        .arg(dir)
        .args(extra_args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn experiments binary")
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twig-tl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn timeline_files(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir.join("metrics"))
        .expect("metrics dir exists")
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".timeline.json"))
        .collect();
    names.sort();
    names
}

fn schema_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("docs/schema")
        .join(name)
}

/// Windowing must not perturb the simulation (figure outputs byte-equal
/// to an off run), and the exported timelines must validate against the
/// checked-in schema, round-trip through the typed snapshot, reconcile
/// per-window instruction deltas with the window axis, and be indexed in
/// the run manifest.
#[test]
fn windowed_run_exports_schema_valid_conserving_timelines() {
    let off_dir = temp_dir("off");
    let win_dir = temp_dir("win");

    let off = run(&off_dir, &["--obs-window", "off"], &[]);
    assert!(off.status.success(), "off run failed: {off:?}");
    assert!(
        !off_dir.join("metrics").exists(),
        "window=off must not create a metrics directory"
    );
    let reference = read(&off_dir, "fig16.txt");

    let win = run(&win_dir, &[], &[("TWIG_OBS_WINDOW", "window=10000")]);
    assert!(win.status.success(), "windowed run failed: {win:?}");
    assert_eq!(
        read(&win_dir, "fig16.txt"),
        reference,
        "windowing changed the figure output"
    );

    let files = timeline_files(&win_dir);
    assert!(!files.is_empty(), "windowed run exported no timelines");
    let manifest = String::from_utf8(read(&win_dir, "run_manifest.json")).unwrap();
    assert!(
        manifest.contains("\"obs_window\": \"window=10000\""),
        "{manifest}"
    );
    let schema_text =
        std::fs::read_to_string(schema_path("timeline-v1.json")).expect("checked-in schema");
    let schema: twig_serde::Value = twig_serde_json::from_str(&schema_text).unwrap();
    for file in &files {
        assert!(
            manifest.contains(&format!("metrics/{file}")),
            "{file} missing from manifest"
        );
        let doc_text = String::from_utf8(read(&win_dir, &format!("metrics/{file}"))).unwrap();
        let doc: twig_serde::Value = twig_serde_json::from_str(&doc_text).unwrap();
        twig_obs::validate(&doc, &schema).unwrap_or_else(|e| panic!("{file}: {e}"));
        let snapshot = twig_obs::TimelineSnapshot::from_json(&doc_text).unwrap();
        assert_eq!(snapshot.window, 10_000);
        assert!(!snapshot.windows.is_empty(), "{file}: empty timeline");
        assert_eq!(snapshot.derived.len(), snapshot.windows.len());
        // Instruction deltas telescope to the final window boundary.
        let instrs: u64 = snapshot
            .track_values(twig_obs::timeseries::track_names::INSTRUCTIONS)
            .expect("instruction track present")
            .iter()
            .sum();
        assert_eq!(
            instrs,
            snapshot.windows.last().unwrap().end_instr,
            "{file}: window deltas do not reconcile"
        );
    }

    let _ = std::fs::remove_dir_all(&off_dir);
    let _ = std::fs::remove_dir_all(&win_dir);
}

/// Timeline exports are byte-identical for a fixed seed regardless of
/// worker-thread count, matrix-worker process count, and from run to
/// run: each simulation is single-threaded and the windows close at
/// closed-form retired-instruction boundaries, so scheduling must not
/// leak into the exports.
#[test]
fn timelines_are_deterministic_across_threads_procs_and_runs() {
    let one_dir = temp_dir("t1");
    let four_dir = temp_dir("t4");
    let proc_dir = temp_dir("p2");
    let again_dir = temp_dir("t1again");

    for (dir, envs) in [
        (&one_dir, vec![("TWIG_NUM_THREADS", "1")]),
        (&four_dir, vec![("TWIG_NUM_THREADS", "4")]),
        (
            &proc_dir,
            vec![("TWIG_NUM_THREADS", "2"), ("TWIG_NUM_PROCS", "2")],
        ),
        (&again_dir, vec![("TWIG_NUM_THREADS", "1")]),
    ] {
        let mut envs = envs.clone();
        envs.push(("TWIG_OBS_WINDOW", "window=10000"));
        let out = run(dir, &[], &envs);
        assert!(out.status.success(), "run in {dir:?} failed: {out:?}");
    }

    let files = timeline_files(&one_dir);
    assert!(!files.is_empty(), "no timelines exported");
    assert_eq!(files, timeline_files(&four_dir), "export sets differ");
    assert_eq!(files, timeline_files(&proc_dir), "export sets differ");
    assert_eq!(files, timeline_files(&again_dir), "export sets differ");
    for file in &files {
        let name = format!("metrics/{file}");
        let one = read(&one_dir, &name);
        assert_eq!(one, read(&four_dir, &name), "{file} differs across thread counts");
        assert_eq!(one, read(&proc_dir, &name), "{file} differs across proc counts");
        assert_eq!(one, read(&again_dir, &name), "{file} differs across runs");
    }

    let _ = std::fs::remove_dir_all(&one_dir);
    let _ = std::fs::remove_dir_all(&four_dir);
    let _ = std::fs::remove_dir_all(&proc_dir);
    let _ = std::fs::remove_dir_all(&again_dir);
}
