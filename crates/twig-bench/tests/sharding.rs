//! End-to-end tests for multi-process matrix sharding
//! (`TWIG_NUM_PROCS`): the parent re-executes this binary with hidden
//! `--shard i/N` arguments and assembles the headline matrix purely from
//! the shared checkpoint store, so the whole protocol — worker spawn,
//! round-robin ownership, checkpoint assembly, dead-worker degradation,
//! resume — only exists at the process level and must be tested there.

use std::path::{Path, PathBuf};
use std::process::Command;

const BUDGET: &str = "20000";

fn experiments() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_experiments"));
    // Never inherit sharding, fault, or task-policy knobs from the
    // ambient environment; each scenario sets its own.
    cmd.env_remove("TWIG_NUM_PROCS")
        .env_remove("TWIG_FAULT_SPEC")
        .env_remove("TWIG_TASK_ATTEMPTS")
        .env_remove("TWIG_TASK_BACKOFF_MS")
        .env_remove("TWIG_TASK_TIMEOUT_MS");
    cmd
}

fn run(dir: &Path, extra_args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = experiments();
    cmd.args(["fig16", "--instructions", BUDGET, "--results-dir"])
        .arg(dir)
        .args(extra_args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn experiments binary")
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twig-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sharded run must be a pure execution strategy: N worker
/// processes computing round-robin slices of the same deterministic
/// task list must produce byte-identical reports to the single-process
/// run.
#[test]
fn sharded_run_is_byte_identical_to_single_process() {
    let single_dir = temp_dir("single");
    let sharded_dir = temp_dir("sharded");

    let single = run(&single_dir, &[], &[("TWIG_NUM_PROCS", "1")]);
    assert!(single.status.success(), "single-process run failed: {single:?}");

    let sharded = run(&sharded_dir, &[], &[("TWIG_NUM_PROCS", "2")]);
    assert!(sharded.status.success(), "sharded run failed: {sharded:?}");
    let stderr = String::from_utf8_lossy(&sharded.stderr);
    assert!(
        stderr.contains("matrix worker shard 0/2") && stderr.contains("matrix worker shard 1/2"),
        "both workers must report completion: {stderr}"
    );

    assert_eq!(
        read(&single_dir, "fig16.txt"),
        read(&sharded_dir, "fig16.txt"),
        "fig16.txt differs between 1-process and 2-process runs"
    );

    let _ = std::fs::remove_dir_all(&single_dir);
    let _ = std::fs::remove_dir_all(&sharded_dir);
}

/// A worker killed mid-run (deterministic `abort` fault, the stand-in
/// for `kill -9`/OOM) must not take the parent down: its unfinished
/// cells degrade to `FAILED(worker shard …)` markers, the run exits 0,
/// and a fault-free `--resume` recomputes exactly the missing cells and
/// restores byte-identical reports.
#[test]
fn dead_worker_degrades_cells_and_resume_heals() {
    let clean_dir = temp_dir("clean");
    let fault_dir = temp_dir("dead-worker");

    // Reference: a clean single-process run.
    let clean = run(&clean_dir, &[], &[("TWIG_NUM_PROCS", "1")]);
    assert!(clean.status.success(), "clean run failed: {clean:?}");

    // Task 5 is owned by shard 1 of 2 (round-robin by index), so the
    // abort kills exactly one of the two workers.
    let faulted = run(
        &fault_dir,
        &[],
        &[
            ("TWIG_NUM_PROCS", "2"),
            ("TWIG_FAULT_SPEC", "abort:task=5"),
        ],
    );
    assert!(
        faulted.status.success(),
        "a run with a dead worker must still exit 0: {faulted:?}"
    );
    let stdout = String::from_utf8_lossy(&faulted.stdout);
    assert!(
        stdout.contains("run completed DEGRADED"),
        "dead worker's cells must be reported as degradation: {stdout}"
    );
    let fig16 = String::from_utf8(read(&fault_dir, "fig16.txt")).unwrap();
    assert!(
        fig16.contains("FAILED(worker shard 1/2: killed by signal"),
        "missing cells must name the dead worker: {fig16}"
    );

    // Resume without the fault: the surviving checkpoints are served,
    // the dead worker's cells recompute, and the report heals.
    let resumed = run(&fault_dir, &["--resume"], &[("TWIG_NUM_PROCS", "2")]);
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    assert_eq!(
        read(&clean_dir, "fig16.txt"),
        read(&fault_dir, "fig16.txt"),
        "fig16.txt differs between clean run and dead-worker+resumed run"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&fault_dir);
}
