//! End-to-end fleet-loop tests: convergence, worker-count invariance,
//! fault detection/quarantine precision, healing, and churn re-onboarding.

use std::path::PathBuf;
use std::sync::Arc;

use twig_fleet::{run_fleet, FleetConfig, FleetManifest, TenantSpec};
use twig_sched::FaultSpec;

fn test_config() -> FleetConfig {
    FleetConfig {
        instructions: 30_000,
        requests_per_generation: 64,
        ..FleetConfig::demo()
    }
}

fn with_faults(mut config: FleetConfig, spec: &str) -> FleetConfig {
    config.faults = Arc::new(FaultSpec::parse(spec).unwrap());
    config
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twig-fleet-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tenant(manifest: &FleetManifest, name: &str) -> twig_fleet::TenantRecord {
    manifest
        .tenants
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("tenant {name} missing from manifest"))
        .clone()
}

#[test]
fn clean_fleet_converges_with_improving_deploys() {
    let tenants = TenantSpec::demo_fleet(2);
    let outcome = run_fleet(&tenants, &test_config()).unwrap();
    let manifest = outcome.manifest;
    assert!(manifest.converged, "clean fleet must converge: {manifest:?}");
    assert!(manifest.generations_run <= 8);
    for t in &manifest.tenants {
        assert_eq!(t.health, "healthy");
        assert_eq!(t.reason, "none");
        assert!(t.converged);
        assert!(t.deploys >= 1, "{}: at least the first layout must ship", t.name);
        assert_eq!(t.faults_seen, 0);
        assert!(t.ipc_micros > 0);
        assert!(t.latency.p50 > 0 && t.latency.p50 <= t.latency.p99);
        assert!(t.latency.p99 <= t.latency.p999);
        assert_ne!(t.layout_fingerprint, 0);
    }
    assert_eq!(outcome.service.failed, 0);
}

#[test]
fn manifest_is_worker_count_invariant() {
    let tenants = TenantSpec::demo_fleet(3);
    let one = run_fleet(&tenants, &FleetConfig { workers: 1, ..test_config() }).unwrap();
    let four = run_fleet(&tenants, &FleetConfig { workers: 4, queue_depth: 3, ..test_config() })
        .unwrap();
    assert_eq!(
        one.manifest.to_json().unwrap(),
        four.manifest.to_json().unwrap(),
        "1-worker and 4-worker manifests must be byte-identical"
    );
}

#[test]
fn clean_rerun_is_byte_identical() {
    let tenants = TenantSpec::demo_fleet(2);
    let a = run_fleet(&tenants, &test_config()).unwrap();
    let b = run_fleet(&tenants, &test_config()).unwrap();
    assert_eq!(a.manifest.to_json().unwrap(), b.manifest.to_json().unwrap());
}

#[test]
fn persistent_stall_quarantines_exactly_the_victim() {
    let tenants = TenantSpec::demo_fleet(3);
    let config = with_faults(test_config(), "stall-stream:tenant=svc-bravo");
    let manifest = run_fleet(&tenants, &config).unwrap().manifest;

    let victim = tenant(&manifest, "svc-bravo");
    assert_eq!(victim.health, "quarantined");
    assert_eq!(victim.reason, "stall-stream");
    assert!(!victim.converged);
    // Bounded detection: degraded at the first faulted generation,
    // quarantined at the second.
    assert_eq!(victim.transitions[0].generation, 0);
    assert_eq!(victim.transitions[0].to, "degraded");
    assert_eq!(victim.transitions[1].generation, 1);
    assert_eq!(victim.transitions[1].to, "quarantined");

    let quarantined: Vec<&str> = manifest
        .tenants
        .iter()
        .filter(|t| t.health == "quarantined")
        .map(|t| t.name.as_str())
        .collect();
    assert_eq!(quarantined, ["svc-bravo"], "only the injected tenant quarantines");
    for name in ["svc-alpha", "svc-charlie"] {
        let bystander = tenant(&manifest, name);
        assert_eq!(bystander.health, "healthy");
        assert!(bystander.converged, "{name} must still converge");
        assert_eq!(bystander.faults_seen, 0);
    }
    assert!(manifest.converged, "the fleet converges around the quarantined tenant");
}

#[test]
fn one_shot_corrupt_profile_degrades_then_heals() {
    let tenants = TenantSpec::demo_fleet(2);
    let config = with_faults(test_config(), "corrupt-profile:tenant=svc-alpha,gen=1");
    let manifest = run_fleet(&tenants, &config).unwrap().manifest;

    let victim = tenant(&manifest, "svc-alpha");
    assert_eq!(victim.health, "healthy", "one corrupted chunk must not quarantine");
    assert_eq!(victim.reason, "corrupt-profile");
    assert_eq!(victim.faults_seen, 1);
    assert!(victim.converged);
    let kinds: Vec<(&str, u64)> = victim
        .transitions
        .iter()
        .map(|t| (t.reason.as_str(), t.generation))
        .collect();
    assert_eq!(kinds[0], ("corrupt-profile", 1));
    assert_eq!(kinds[1].0, "recovered");
    assert!(kinds[1].1 >= 3, "healing needs two consecutive clean generations");
    assert!(manifest.converged);
}

#[test]
fn sustained_slo_burn_degrades_and_series_records_it() {
    let tenants = TenantSpec::demo_fleet(2);
    let spec = "latency-spike:tenant=svc-bravo,gen=1;latency-spike:tenant=svc-bravo,gen=2";
    let manifest = run_fleet(&tenants, &with_faults(test_config(), spec)).unwrap().manifest;

    let victim = tenant(&manifest, "svc-bravo");
    // One spiked generation burns budget but does not fault; the second
    // consecutive one crosses `slo_burn_generations` and degrades.
    assert_eq!(victim.health, "healthy", "burn degrades but heals: {victim:?}");
    assert!(victim.converged);
    assert_eq!(victim.slo_breaches, 2);
    let degrade = victim
        .transitions
        .iter()
        .find(|t| t.to == "degraded")
        .expect("burn must degrade the victim");
    assert_eq!((degrade.reason.as_str(), degrade.generation), ("slo-burn", 2));
    assert!(victim.transitions.iter().any(|t| t.reason == "recovered"));

    // The per-generation series carries the burn gauge: over budget
    // (>1000 permille) exactly on the spiked generations.
    let burn = victim.series.track_values("fleet.slo_burn_permille").unwrap();
    let over: Vec<usize> =
        (0..burn.len()).filter(|&i| burn[i] > 1000).collect();
    assert_eq!(over, [1, 2], "burn gauge over budget exactly at gens 1-2: {burn:?}");
    assert_eq!(victim.series.windows.len(), victim.generations as usize);

    let bystander = tenant(&manifest, "svc-alpha");
    assert_eq!(bystander.slo_breaches, 0);
    assert_eq!(bystander.health, "healthy");
    assert!(manifest.converged);
}

#[test]
fn single_latency_spike_burns_budget_without_fault() {
    let tenants = TenantSpec::demo_fleet(2);
    let spec = "latency-spike:tenant=svc-bravo,gen=1";
    let manifest = run_fleet(&tenants, &with_faults(test_config(), spec)).unwrap().manifest;

    let victim = tenant(&manifest, "svc-bravo");
    assert_eq!(victim.slo_breaches, 1);
    assert!(
        !victim.transitions.iter().any(|t| t.reason == "slo-burn"),
        "one breached generation must not degrade: {:?}",
        victim.transitions
    );
    assert_eq!(victim.health, "healthy");
    assert!(victim.converged);
}

#[test]
fn torn_last_good_write_is_detected_same_generation() {
    let dir = temp_dir("diskfull");
    let tenants = TenantSpec::demo_fleet(2);
    let mut config = with_faults(test_config(), "disk-full:tenant=svc-bravo,times=1");
    config.state_dir = Some(dir.clone());
    let manifest = run_fleet(&tenants, &config).unwrap().manifest;

    let victim = tenant(&manifest, "svc-bravo");
    assert_eq!(victim.transitions[0].reason, "disk-full");
    assert_eq!(
        victim.transitions[0].generation, 0,
        "the post-store scrub detects the tear the generation it happens"
    );
    assert_eq!(victim.health, "healthy", "a single torn write heals");
    assert!(victim.converged);
    assert!(manifest.converged);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn churn_reonboards_from_last_good_record() {
    let dir = temp_dir("churn");
    let tenants = TenantSpec::demo_fleet(2);
    let mut config = with_faults(test_config(), "tenant-churn:tenant=svc-alpha,gen=2");
    config.state_dir = Some(dir.clone());
    let manifest = run_fleet(&tenants, &config).unwrap().manifest;

    let victim = tenant(&manifest, "svc-alpha");
    assert_eq!(victim.transitions[0].reason, "tenant-churn");
    assert_eq!(victim.transitions[0].generation, 2);
    assert_eq!(victim.health, "healthy");
    assert!(victim.converged, "re-onboarded tenant must still converge");
    // The last-good record preserved the deployed layout across the
    // restart: the clean run's fingerprint matches.
    let clean = run_fleet(&tenants, &test_config()).unwrap().manifest;
    assert_eq!(
        victim.layout_fingerprint,
        tenant(&clean, "svc-alpha").layout_fingerprint,
        "churn must not lose the deployed plan set"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
