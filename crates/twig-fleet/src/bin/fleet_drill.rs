//! Seeded chaos drill for the fleet service (the CI fleet-chaos lane).
//!
//! For every injectable service fault kind the drill runs the demo fleet
//! with that fault pinned to one victim tenant and asserts the supervised
//! loop's contract:
//!
//! 1. the fault is detected within a bounded number of generations
//!    (degraded at the first faulted generation, quarantined at the
//!    second consecutive one);
//! 2. exactly the injected tenant is quarantined, with the typed reason
//!    recorded in the manifest — bystanders stay healthy and converge;
//! 3. a subsequent clean run heals back to convergence with a manifest
//!    byte-identical to the clean reference (layout fingerprints
//!    included).
//!
//! It also pins worker-count invariance (1 vs 4 workers produce the same
//! bytes), one-shot degrade-then-heal for a transient fault, and the SLO
//! burn path: two consecutive `latency-spike` generations must read as a
//! sustained breach on the per-generation series, degrade the victim with
//! reason `slo-burn`, and heal on clean generations. Exits 0 only when
//! every check passes; any violation prints `FAIL:` and exits 1.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use twig_fleet::{run_fleet, FleetConfig, FleetManifest, TenantSpec};
use twig_sched::FaultSpec;

const VICTIM: &str = "svc-bravo";
const BYSTANDERS: [&str; 2] = ["svc-alpha", "svc-charlie"];
const SERVICE_FAULTS: [&str; 4] =
    ["stall-stream", "corrupt-profile", "tenant-churn", "disk-full"];

/// Generations within which a persistent fault must quarantine its
/// tenant: one to degrade, one more consecutive to quarantine.
const QUARANTINE_BOUND: u64 = 2;

struct Drill {
    failures: u32,
}

impl Drill {
    fn check(&mut self, ok: bool, what: &str) {
        if ok {
            println!("  ok: {what}");
        } else {
            eprintln!("FAIL: {what}");
            self.failures += 1;
        }
    }
}

fn drill_config(state_dir: &std::path::Path, workers: usize) -> FleetConfig {
    FleetConfig {
        workers,
        queue_depth: 2,
        instructions: 30_000,
        requests_per_generation: 128,
        state_dir: Some(state_dir.to_path_buf()),
        ..FleetConfig::demo()
    }
}

fn run(config: &FleetConfig) -> FleetManifest {
    run_fleet(&TenantSpec::demo_fleet(3), config)
        .unwrap_or_else(|e| {
            eprintln!("FAIL: fleet run errored: {e}");
            std::process::exit(1);
        })
        .manifest
}

fn tenant<'a>(manifest: &'a FleetManifest, name: &str) -> &'a twig_fleet::TenantRecord {
    manifest.tenants.iter().find(|t| t.name == name).unwrap_or_else(|| {
        eprintln!("FAIL: tenant {name} missing from manifest");
        std::process::exit(1);
    })
}

fn main() -> ExitCode {
    let state_dir: PathBuf = std::env::temp_dir()
        .join(format!("twig-fleet-drill-{}", std::process::id()));
    let mut drill = Drill { failures: 0 };

    println!("== clean reference ==");
    let clean_config = drill_config(&state_dir, 1);
    let reference = run(&clean_config);
    let reference_json = reference.to_json().expect("serialize reference manifest");
    drill.check(reference.converged, "clean fleet converges");
    drill.check(
        reference.tenants.iter().all(|t| t.health == "healthy" && t.deploys >= 1),
        "all tenants healthy with at least one deploy",
    );
    drill.check(
        reference.tenants.iter().all(|t| t.latency.p50 <= t.latency.p999),
        "latency digests are ordered (p50 <= p99.9)",
    );

    println!("== worker-count invariance ==");
    let four = run(&drill_config(&state_dir, 4));
    drill.check(
        four.to_json().expect("serialize") == reference_json,
        "1-worker and 4-worker manifests are byte-identical",
    );

    for kind in SERVICE_FAULTS {
        println!("== chaos: persistent {kind} on {VICTIM} ==");
        let mut config = drill_config(&state_dir, 1);
        config.faults = Arc::new(
            FaultSpec::parse(&format!("{kind}:tenant={VICTIM}")).expect("parse drill spec"),
        );
        let manifest = run(&config);

        let victim = tenant(&manifest, VICTIM);
        drill.check(victim.health == "quarantined", &format!("{kind}: victim quarantined"));
        drill.check(
            victim.reason == kind,
            &format!("{kind}: typed reason recorded (got {:?})", victim.reason),
        );
        let quarantine_gen = victim
            .transitions
            .iter()
            .find(|t| t.to == "quarantined")
            .map_or(u64::MAX, |t| t.generation);
        drill.check(
            quarantine_gen < QUARANTINE_BOUND,
            &format!("{kind}: quarantined within {QUARANTINE_BOUND} generations (at {quarantine_gen})"),
        );
        let quarantined: Vec<&str> = manifest
            .tenants
            .iter()
            .filter(|t| t.health == "quarantined")
            .map(|t| t.name.as_str())
            .collect();
        drill.check(
            quarantined == [VICTIM],
            &format!("{kind}: exactly the injected tenant is quarantined ({quarantined:?})"),
        );
        for name in BYSTANDERS {
            let bystander = tenant(&manifest, name);
            drill.check(
                bystander.health == "healthy" && bystander.converged && bystander.faults_seen == 0,
                &format!("{kind}: bystander {name} unaffected and converged"),
            );
        }

        let healed = run(&clean_config);
        drill.check(
            healed.to_json().expect("serialize") == reference_json,
            &format!("{kind}: clean re-run heals to a byte-identical manifest"),
        );
    }

    println!("== transient fault heals in place ==");
    let mut config = drill_config(&state_dir, 1);
    config.faults = Arc::new(
        FaultSpec::parse(&format!("corrupt-profile:tenant={VICTIM},gen=1")).expect("parse"),
    );
    let manifest = run(&config);
    let victim = tenant(&manifest, VICTIM);
    drill.check(
        victim.health == "healthy" && victim.converged && victim.faults_seen == 1,
        "one corrupted chunk degrades, heals, and still converges",
    );
    drill.check(
        victim.transitions.iter().any(|t| t.reason == "recovered"),
        "heal transition recorded",
    );

    println!("== SLO burn: two spiked generations degrade, then heal ==");
    let mut config = drill_config(&state_dir, 1);
    config.faults = Arc::new(
        FaultSpec::parse(&format!(
            "latency-spike:tenant={VICTIM},gen=1;latency-spike:tenant={VICTIM},gen=2"
        ))
        .expect("parse"),
    );
    let manifest = run(&config);
    let victim = tenant(&manifest, VICTIM);
    drill.check(
        victim.health == "healthy" && victim.converged,
        "sustained burn degrades without quarantining, and heals",
    );
    drill.check(
        victim
            .transitions
            .iter()
            .any(|t| t.to == "degraded" && t.reason == "slo-burn" && t.generation == 2),
        "degraded with reason slo-burn at the second spiked generation",
    );
    drill.check(
        victim.transitions.iter().any(|t| t.reason == "recovered"),
        "burn heal transition recorded",
    );
    drill.check(
        victim.slo_breaches >= 2,
        &format!("both spiked generations counted as breaches ({})", victim.slo_breaches),
    );
    let burn = victim
        .series
        .track_values("fleet.slo_burn_permille")
        .expect("burn track present in series");
    drill.check(
        burn.iter().filter(|&&b| b > 1000).count() >= 2,
        "series records over-budget burn for the spiked generations",
    );
    drill.check(
        !victim.series.windows.is_empty()
            && victim.series.windows.len() == victim.generations as usize,
        "series has one window per profiled generation",
    );
    for name in BYSTANDERS {
        let bystander = tenant(&manifest, name);
        drill.check(
            bystander.slo_breaches == 0 && bystander.health == "healthy",
            &format!("slo-burn: bystander {name} never breached"),
        );
    }
    let healed = run(&clean_config);
    drill.check(
        healed.to_json().expect("serialize") == reference_json,
        "slo-burn: clean re-run heals to a byte-identical manifest",
    );

    let _ = std::fs::remove_dir_all(&state_dir);
    if drill.failures == 0 {
        println!("fleet chaos drill: all checks passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("fleet chaos drill: {} check(s) failed", drill.failures);
        ExitCode::FAILURE
    }
}
