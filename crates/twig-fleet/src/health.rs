//! Per-tenant health state machine with typed transition reasons.
//!
//! A fleet tenant is `healthy` until something goes wrong with its
//! continuous-PGO loop. One faulted generation degrades it; a *second
//! consecutive* faulted generation quarantines it (terminal — the tenant
//! keeps serving its last-good layout and leaves the optimization loop);
//! two consecutive clean generations heal a degraded tenant back to
//! healthy. Every transition is recorded with the generation it happened
//! at and a typed reason, and the full history lands in the fleet
//! manifest, so a chaos drill can assert not just *that* a tenant was
//! quarantined but *why* and *how fast*.

/// A tenant's operational state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Health {
    /// Participating normally in the profile → deploy loop.
    Healthy,
    /// Recently faulted; still participating, one more consecutive
    /// faulted generation away from quarantine.
    Degraded,
    /// Removed from the loop (terminal). Serves its last-good layout.
    Quarantined,
}

impl Health {
    /// Stable lower-case name used in manifests.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Quarantined => "quarantined",
        }
    }
}

/// Why a generation was counted as faulted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultReason {
    /// The tenant's profile stream produced no samples this generation.
    StallStream,
    /// The profile arrived with a fingerprint mismatch and was discarded.
    CorruptProfile,
    /// The tenant binary restarted mid-generation and re-onboarded from
    /// its last-good record.
    TenantChurn,
    /// The tenant's last-good record could not be persisted (torn write
    /// detected by the post-store scrub).
    DiskFull,
    /// The tenant's p99 request latency burned through its SLO for
    /// enough consecutive generations to count as a sustained breach.
    SloBurn,
}

impl FaultReason {
    /// Stable kebab-case name, matching the fault-spec grammar where the
    /// reason corresponds to an injectable kind.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultReason::StallStream => "stall-stream",
            FaultReason::CorruptProfile => "corrupt-profile",
            FaultReason::TenantChurn => "tenant-churn",
            FaultReason::DiskFull => "disk-full",
            FaultReason::SloBurn => "slo-burn",
        }
    }
}

/// One recorded state change.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transition {
    /// Generation the transition happened at.
    pub generation: u64,
    /// State before.
    pub from: Health,
    /// State after.
    pub to: Health,
    /// Typed reason (a [`FaultReason`] name, or `recovered`).
    pub reason: String,
}

/// Tracks one tenant's health across generations.
#[derive(Debug)]
pub struct HealthTracker {
    state: Health,
    last_reason: Option<FaultReason>,
    consecutive_faulted: u32,
    consecutive_clean: u32,
    faults_seen: u64,
    transitions: Vec<Transition>,
}

impl HealthTracker {
    /// A fresh, healthy tenant.
    pub fn new() -> Self {
        HealthTracker {
            state: Health::Healthy,
            last_reason: None,
            consecutive_faulted: 0,
            consecutive_clean: 0,
            faults_seen: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> Health {
        self.state
    }

    /// True once quarantined (terminal).
    pub fn is_quarantined(&self) -> bool {
        self.state == Health::Quarantined
    }

    /// The most recent fault reason, as its stable name (`none` before
    /// the first fault).
    pub fn last_reason(&self) -> &'static str {
        self.last_reason.map_or("none", FaultReason::as_str)
    }

    /// Total faulted generations observed.
    pub fn faults_seen(&self) -> u64 {
        self.faults_seen
    }

    /// The recorded transition history.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    fn transition(&mut self, generation: u64, to: Health, reason: &str) {
        self.transitions.push(Transition {
            generation,
            from: self.state,
            to,
            reason: reason.to_string(),
        });
        self.state = to;
    }

    /// Records a faulted generation. Healthy tenants degrade; degraded
    /// tenants quarantine on the second *consecutive* faulted generation.
    pub fn on_fault(&mut self, generation: u64, reason: FaultReason) {
        if self.state == Health::Quarantined {
            return;
        }
        self.faults_seen += 1;
        self.consecutive_clean = 0;
        self.consecutive_faulted += 1;
        self.last_reason = Some(reason);
        match self.state {
            Health::Healthy => self.transition(generation, Health::Degraded, reason.as_str()),
            Health::Degraded if self.consecutive_faulted >= 2 => {
                self.transition(generation, Health::Quarantined, reason.as_str());
            }
            _ => {}
        }
    }

    /// Records a clean generation. Two consecutive clean generations heal
    /// a degraded tenant.
    pub fn on_clean(&mut self, generation: u64) {
        if self.state == Health::Quarantined {
            return;
        }
        self.consecutive_faulted = 0;
        self.consecutive_clean += 1;
        if self.state == Health::Degraded && self.consecutive_clean >= 2 {
            self.transition(generation, Health::Healthy, "recovered");
        }
    }
}

impl Default for HealthTracker {
    fn default() -> Self {
        HealthTracker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persistent_fault_quarantines_in_two_generations() {
        let mut h = HealthTracker::new();
        h.on_fault(3, FaultReason::StallStream);
        assert_eq!(h.state(), Health::Degraded);
        h.on_fault(4, FaultReason::StallStream);
        assert_eq!(h.state(), Health::Quarantined);
        assert_eq!(h.last_reason(), "stall-stream");
        // Terminal: later events change nothing.
        h.on_clean(5);
        h.on_fault(6, FaultReason::DiskFull);
        assert_eq!(h.state(), Health::Quarantined);
        assert_eq!(h.faults_seen(), 2);
        let kinds: Vec<&str> = h.transitions().iter().map(|t| t.reason.as_str()).collect();
        assert_eq!(kinds, ["stall-stream", "stall-stream"]);
    }

    #[test]
    fn interleaved_faults_do_not_quarantine() {
        let mut h = HealthTracker::new();
        h.on_fault(0, FaultReason::CorruptProfile);
        h.on_clean(1);
        h.on_fault(2, FaultReason::CorruptProfile);
        assert_eq!(
            h.state(),
            Health::Degraded,
            "non-consecutive faults must not quarantine"
        );
    }

    #[test]
    fn two_clean_generations_heal() {
        let mut h = HealthTracker::new();
        h.on_fault(1, FaultReason::TenantChurn);
        h.on_clean(2);
        assert_eq!(h.state(), Health::Degraded, "one clean generation is not enough");
        h.on_clean(3);
        assert_eq!(h.state(), Health::Healthy);
        let last = h.transitions().last().unwrap();
        assert_eq!((last.generation, last.reason.as_str()), (3, "recovered"));
        assert_eq!(h.last_reason(), "tenant-churn", "history keeps the typed cause");
    }
}
