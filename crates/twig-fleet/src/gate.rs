//! The A/B deploy gate: every candidate layout is judged against the
//! currently deployed one before it ships.
//!
//! The metric set and relative thresholds replicate the regression
//! sentinel in `twig-cli` (`twig metrics regress`) exactly — `twig-cli`
//! is a binary-only crate, so the table is restated here rather than
//! imported; the sentinel drill in CI keeps the two in agreement by
//! construction (both are pinned by tests against the same deltas). A
//! candidate that moves any metric past its threshold in the bad
//! direction is `Rollback`; one that improves IPC or cycles past the
//! threshold (with nothing regressing) is `Deploy`; everything inside
//! the noise band is `Hold`, and consecutive holds are what the
//! convergence watchdog counts.

use twig_sim::SimStats;

/// The headline figures the gate compares, derived from one run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct GateMetrics {
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// BTB misses per kilo-instruction.
    pub btb_mpki: f64,
    /// Fraction of BTB misses covered by prefetching (1.0 when missless).
    pub coverage: f64,
    /// Total simulated cycles.
    pub cycles: u64,
}

impl GateMetrics {
    /// Derives the gate metrics from simulator statistics.
    pub fn from_stats(stats: &SimStats) -> GateMetrics {
        let misses = stats.total_btb_misses();
        GateMetrics {
            ipc: stats.ipc(),
            btb_mpki: if stats.retired_instructions == 0 {
                0.0
            } else {
                misses as f64 * 1000.0 / stats.retired_instructions as f64
            },
            coverage: if misses == 0 {
                1.0
            } else {
                stats.total_covered_misses() as f64 / misses as f64
            },
            cycles: stats.cycles,
        }
    }
}

/// What the gate decided about one candidate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GateDecision {
    /// Candidate clearly better: ship it.
    Deploy,
    /// Within the noise band: keep the deployed layout, count a hold.
    Hold,
    /// Candidate clearly worse on some metric: keep the deployed layout
    /// and count a rollback (a faulted generation).
    Rollback,
}

struct MetricSpec {
    threshold: f64,
    higher_is_better: bool,
    read: fn(&GateMetrics) -> f64,
}

/// The sentinel's metric table (see module docs for why it is restated).
const METRICS: [MetricSpec; 4] = [
    MetricSpec { threshold: 0.005, higher_is_better: true, read: |m| m.ipc },
    MetricSpec { threshold: 0.005, higher_is_better: false, read: |m| m.cycles as f64 },
    MetricSpec { threshold: 0.02, higher_is_better: false, read: |m| m.btb_mpki },
    MetricSpec { threshold: 0.02, higher_is_better: true, read: |m| m.coverage },
];

fn relative_delta(base: f64, current: f64) -> f64 {
    if base == 0.0 {
        if current == 0.0 {
            0.0
        } else {
            f64::INFINITY * (current - base).signum()
        }
    } else {
        (current - base) / base
    }
}

/// Judges `candidate` against `deployed`.
pub fn judge_deploy(deployed: &GateMetrics, candidate: &GateMetrics) -> GateDecision {
    let mut improved = false;
    for (i, spec) in METRICS.iter().enumerate() {
        let delta = relative_delta((spec.read)(deployed), (spec.read)(candidate));
        if delta.abs() <= spec.threshold {
            continue;
        }
        if (delta > 0.0) == spec.higher_is_better {
            // Only the latency-shaped metrics (ipc, cycles) earn a deploy
            // on their own; coverage/MPKI wins that do not move cycles
            // are held, matching the sentinel's headline ordering.
            improved |= i < 2;
        } else {
            return GateDecision::Rollback;
        }
    }
    if improved {
        GateDecision::Deploy
    } else {
        GateDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(ipc: f64, mpki: f64, coverage: f64, cycles: u64) -> GateMetrics {
        GateMetrics { ipc, btb_mpki: mpki, coverage, cycles }
    }

    #[test]
    fn clear_ipc_win_deploys() {
        let deployed = metrics(1.0, 10.0, 0.2, 100_000);
        let candidate = metrics(1.10, 8.0, 0.5, 91_000);
        assert_eq!(judge_deploy(&deployed, &candidate), GateDecision::Deploy);
    }

    #[test]
    fn noise_band_holds() {
        let deployed = metrics(1.0, 10.0, 0.2, 100_000);
        let candidate = metrics(1.004, 10.1, 0.201, 99_700);
        assert_eq!(judge_deploy(&deployed, &candidate), GateDecision::Hold);
    }

    #[test]
    fn any_regression_rolls_back_even_with_an_ipc_win() {
        let deployed = metrics(1.0, 10.0, 0.5, 100_000);
        let candidate = metrics(1.10, 10.3, 0.5, 90_000); // MPKI +3% > 2%
        assert_eq!(judge_deploy(&deployed, &candidate), GateDecision::Rollback);
    }

    #[test]
    fn coverage_only_wins_hold_rather_than_churn_deploys() {
        let deployed = metrics(1.0, 10.0, 0.2, 100_000);
        let candidate = metrics(1.001, 9.9, 0.4, 99_900);
        assert_eq!(judge_deploy(&deployed, &candidate), GateDecision::Hold);
    }

    #[test]
    fn identical_runs_hold() {
        let m = metrics(1.2, 4.0, 0.8, 50_000);
        assert_eq!(judge_deploy(&m, &m), GateDecision::Hold);
    }
}
