//! The continuous-PGO fleet loop.
//!
//! N tenant binaries run under M rotating load phases. Each layout
//! generation, every active tenant streams a sampled LBR-style profile
//! of its *deployed* binary through a [`ServicePool`] (bounded queue,
//! explicit backpressure, supervised workers), the control loop merges
//! the fresh miss plans into the tenant's deployed plan set, rewrites a
//! candidate from the pristine binary, and A/B-judges candidate against
//! deployed with the regression sentinel's thresholds ([`crate::gate`]).
//! Deploys that pass ship and are checkpointed as the tenant's last-good
//! record; anything that regresses rolls back and counts as a faulted
//! generation. A convergence watchdog retires a tenant after
//! `converge_after` consecutive in-noise generations; the fleet stops
//! when every non-quarantined tenant has converged or the generation cap
//! fires.
//!
//! # Determinism
//!
//! The manifest must be byte-identical across `TWIG_FLEET_WORKERS`
//! settings, so: profile jobs are pure functions of their payload,
//! service faults match by pure predicate (no firing budgets), results
//! come back in submission order, all checkpoint writes happen on the
//! control thread in tenant order, and nothing wall-clock-shaped is
//! recorded (backpressure counters stay in [`ServiceStats`], which is
//! reported to operators but never serialized).

use std::path::PathBuf;
use std::sync::Arc;

use twig::{MissPlan, TwigConfig, TwigOptimizer};
use twig_bench::CheckpointStore;
use twig_obs::timeseries::{TimeSeriesRing, DEFAULT_TIMELINE_CAPACITY};
use twig_obs::{Hist64, TrackKind};
use twig_profile::Profile;
use twig_sched::fault::FaultSpec;
use twig_sched::{FaultKind, ServicePool, ServiceStats, TaskError, TaskPolicy, TaskReport};
use twig_serde::{Deserialize, Serialize};
use twig_sim::{PlainBtb, SimConfig, SimStats, Simulator};
use twig_workload::{
    BlockEvent, InputConfig, LayoutOptions, LoadPhase, MemSource, PhaseSchedule, Program,
    ProgramGenerator, Walker, WorkloadSpec,
};

use crate::gate::{judge_deploy, GateDecision, GateMetrics};
use crate::health::{FaultReason, HealthTracker};
use crate::manifest::{
    FleetManifest, LatencySummary, TenantRecord, TransitionRecord, FLEET_MANIFEST_VERSION,
};

/// One tenant of the fleet: a named binary with its own drift seed.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Unique tenant name (matched by `tenant=` fault selectors).
    pub name: String,
    /// Per-tenant seed: rotates the phase schedule and skews the walker
    /// inputs so tenants sharing a workload spec still profile
    /// differently.
    pub seed: u64,
    /// The tenant's workload.
    pub spec: WorkloadSpec,
}

impl TenantSpec {
    /// A small demonstration fleet (at most 6 tenants) over the tiny
    /// test workload — the fixture the drills and `twig fleet run` use.
    pub fn demo_fleet(count: usize) -> Vec<TenantSpec> {
        const NAMES: [&str; 6] =
            ["svc-alpha", "svc-bravo", "svc-charlie", "svc-delta", "svc-echo", "svc-foxtrot"];
        NAMES
            .iter()
            .take(count.clamp(1, NAMES.len()))
            .enumerate()
            .map(|(i, name)| TenantSpec {
                name: (*name).to_string(),
                seed: 0x5EED_0000 + i as u64 * 0x9E37_79B9,
                spec: WorkloadSpec::tiny_test(),
            })
            .collect()
    }
}

/// Knobs for one fleet run (see `TWIG_FLEET_*` in the README).
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Service worker threads (`TWIG_FLEET_WORKERS`).
    pub workers: usize,
    /// Bounded profile-queue capacity (`TWIG_FLEET_QUEUE_DEPTH`).
    pub queue_depth: usize,
    /// Layout-generation cap (`TWIG_FLEET_MAX_GENERATIONS`).
    pub max_generations: u64,
    /// Full-phase profiling budget per generation, instructions.
    pub instructions: u64,
    /// Consecutive in-noise generations before a tenant converges.
    pub converge_after: u32,
    /// Synthetic requests per tenant-generation for the latency digest.
    pub requests_per_generation: u32,
    /// BTB capacity for the simulated frontends (small = pressured).
    pub btb_entries: usize,
    /// p99 request-latency SLO, cycles: the burn-rate gauge divides each
    /// generation's p99 by this target.
    pub slo_p99_cycles: u64,
    /// Consecutive over-SLO generations before the sustained burn counts
    /// as a faulted generation (degrading the tenant).
    pub slo_burn_generations: u32,
    /// Last-good record directory (`None` disables checkpointing; churn
    /// then re-onboards from scratch).
    pub state_dir: Option<PathBuf>,
    /// Injected faults (parsed `TWIG_FAULT_SPEC`).
    pub faults: Arc<FaultSpec>,
}

impl FleetConfig {
    /// Defaults sized for the demo fleet: single worker, pressured
    /// 64-entry BTB, 8-generation cap.
    pub fn demo() -> FleetConfig {
        FleetConfig {
            workers: 1,
            queue_depth: 2,
            max_generations: 8,
            instructions: 60_000,
            converge_after: 2,
            requests_per_generation: 256,
            btb_entries: 64,
            slo_p99_cycles: 4_000,
            slo_burn_generations: 2,
            state_dir: None,
            faults: Arc::new(FaultSpec::none()),
        }
    }

    /// Wires the typed harness configuration (`TWIG_FLEET_*`) and the
    /// process-wide fault spec into the demo defaults.
    pub fn from_harness(harness: &twig_types::HarnessConfig) -> FleetConfig {
        let faults = match &harness.fault_spec.value {
            Some(raw) => FaultSpec::parse(raw)
                .unwrap_or_else(|e| panic!("malformed TWIG_FAULT_SPEC: {e}")),
            None => FaultSpec::none(),
        };
        FleetConfig {
            workers: harness.fleet_workers.value,
            queue_depth: harness.fleet_queue_depth.value,
            max_generations: harness.fleet_max_generations.value,
            faults: Arc::new(faults),
            ..FleetConfig::demo()
        }
    }
}

/// What [`run_fleet`] returns: the deterministic manifest plus the
/// (timing-dependent) service counters for operator reporting.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The versioned, worker-count-invariant run record.
    pub manifest: FleetManifest,
    /// Pool counters (submitted/completed/failed/backpressure waits).
    pub service: ServiceStats,
}

/// One profile job streamed to the service pool.
struct ProfileJob {
    tenant: String,
    generation: u64,
    deployed: Arc<Program>,
    events: Arc<[BlockEvent]>,
    instructions: u64,
    sim: SimConfig,
}

/// A profile chunk coming back from a worker.
struct ProfileChunk {
    profile: Profile,
    stats: SimStats,
    fingerprint: u64,
    events: Arc<[BlockEvent]>,
    instructions: u64,
}

/// The checkpointed last-good record a churned tenant re-onboards from.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
struct LastGood {
    generation: u64,
    plans: Vec<MissPlan>,
}

/// Tracks of the per-tenant generation series (the window axis is the
/// layout generation; window period 1). Gauges carry the generation's
/// raw reading; `fleet.deploys` is cumulative, so its per-window deltas
/// telescope to the tenant's total deploys.
const SERIES_TRACKS: [(&str, TrackKind); 4] = [
    ("fleet.ipc_micros", TrackKind::Gauge),
    ("fleet.latency_p99", TrackKind::Gauge),
    ("fleet.slo_burn_permille", TrackKind::Gauge),
    ("fleet.deploys", TrackKind::Counter),
];

fn new_series() -> TimeSeriesRing {
    let mut ring = TimeSeriesRing::new(DEFAULT_TIMELINE_CAPACITY);
    for (name, kind) in SERIES_TRACKS {
        ring.track(name, kind);
    }
    ring
}

struct TenantState {
    name: String,
    seed: u64,
    sim: SimConfig,
    layout: LayoutOptions,
    schedule: PhaseSchedule,
    pristine: Arc<Program>,
    deployed: Arc<Program>,
    plans: Vec<MissPlan>,
    /// Miss branches whose candidate layouts the gate rolled back; never
    /// re-tried, which is what bounds the generation loop (every branch
    /// ends up deployed or rejected, then only holds remain).
    rejected: std::collections::HashSet<u32>,
    events: Vec<(LoadPhase, Arc<[BlockEvent]>)>,
    health: HealthTracker,
    holds: u32,
    converged: bool,
    generations: u64,
    deployed_generation: u64,
    deploys: u64,
    rollbacks: u64,
    ipc_micros: u64,
    latency: Hist64,
    /// Per-generation series: one window per profiled generation.
    series: TimeSeriesRing,
    /// Consecutive generations whose p99 burned past the SLO.
    slo_burn_streak: u32,
    /// Total generations whose p99 exceeded the SLO.
    slo_breaches: u64,
    /// Most recent generation's burn rate (p99 × 1000 / SLO).
    slo_burn_permille: u64,
}

impl TenantState {
    fn active(&self) -> bool {
        !self.health.is_quarantined() && !self.converged
    }
}

/// Content fingerprint of a profile — recomputed by the control loop to
/// detect bit-rot between collection and aggregation (`corrupt-profile`
/// faults flip the carried copy, not the profile, so the mismatch is
/// what the loop must catch).
fn profile_fingerprint(profile: &Profile) -> u64 {
    use std::hash::Hasher;
    let mut hasher = twig_types::fxhash::FxHasher::default();
    hasher.write_u64(profile.instructions);
    hasher.write_u32(profile.sample_period);
    for (block, count) in profile.miss_histogram() {
        hasher.write_u32(block.raw());
        hasher.write_u64(count);
    }
    hasher.finish()
}

/// Fingerprint of a deployed plan set: the byte-identity witness the
/// chaos drill compares across clean runs.
fn plans_fingerprint(plans: &[MissPlan]) -> u64 {
    use std::hash::Hasher;
    let json = twig_serde_json::to_string(&plans.to_vec()).unwrap_or_default();
    let mut hasher = twig_types::fxhash::FxHasher::default();
    hasher.write(json.as_bytes());
    hasher.finish()
}

fn simulate(program: &Program, sim: SimConfig, events: &[BlockEvent], instructions: u64) -> SimStats {
    let mut simulator = Simulator::new(program, sim, PlainBtb::new(&sim));
    simulator.run(events.iter().copied(), instructions)
}

/// Merges fresh miss plans into the deployed set, keeping existing
/// entries (deployed prefetch sites are never silently dropped),
/// appending plans for newly observed miss branches, and skipping
/// branches the gate has already rejected. Monotone and bounded by the
/// program's branch count, which is what guarantees the generation loop
/// converges.
fn merge_plans(
    deployed: &[MissPlan],
    fresh: &[MissPlan],
    rejected: &std::collections::HashSet<u32>,
) -> Vec<MissPlan> {
    let mut merged = deployed.to_vec();
    for plan in fresh {
        if rejected.contains(&plan.branch_block.raw()) {
            continue;
        }
        if !merged.iter().any(|p| p.branch_block == plan.branch_block) {
            merged.push(plan.clone());
        }
    }
    merged
}

fn events_for(
    state: &mut TenantState,
    phase: LoadPhase,
    full_budget: u64,
) -> (Arc<[BlockEvent]>, u64) {
    let instructions = phase.scaled_budget(full_budget);
    if let Some((_, events)) = state.events.iter().find(|(p, _)| *p == phase) {
        return (Arc::clone(events), instructions);
    }
    // Tenant seed folded into the phase input: tenants sharing a spec
    // still see different request mixes.
    let base = phase.input();
    let input = InputConfig { seed: base.seed ^ state.seed, ..base };
    let events: Arc<[BlockEvent]> =
        Walker::new(state.pristine.as_ref(), input).run_instructions(instructions).into();
    state.events.push((phase, Arc::clone(&events)));
    (events, instructions)
}

/// A fired `latency-spike` clause multiplies every request latency of
/// the matching generation by this factor — far enough past any demo
/// SLO that the burn gauge must read the breach.
const LATENCY_SPIKE_FACTOR: u64 = 64;

/// Synthetic request latencies for one clean generation: path length is
/// a pure hash of `(tenant, generation, request)`, scaled by the
/// deployed binary's measured CPI, so the digest improves exactly when
/// deploys improve IPC and never depends on wall-clock. Returns the
/// generation's own p99 (the SLO burn gauge's input); an injected
/// `latency-spike` inflates every request of the generation.
fn record_latency(
    state: &mut TenantState,
    generation: u64,
    stats: &SimStats,
    requests: u32,
    spike: bool,
) -> u64 {
    use std::hash::Hasher;
    if stats.retired_instructions == 0 {
        return 0;
    }
    let cpi_milli = stats.cycles.saturating_mul(1000) / stats.retired_instructions;
    let factor = if spike { LATENCY_SPIKE_FACTOR } else { 1 };
    let mut window = Hist64::new();
    for request in 0..requests {
        let mut hasher = twig_types::fxhash::FxHasher::default();
        hasher.write(state.name.as_bytes());
        hasher.write_u64(generation);
        hasher.write_u32(request);
        let path_blocks = 64 + (hasher.finish() % 192);
        let latency = (path_blocks * cpi_milli / 1000).max(1).saturating_mul(factor);
        state.latency.record(latency);
        window.record(latency);
    }
    window.percentile(99, 100)
}

fn last_good_key(name: &str) -> String {
    format!("fleet-{name}")
}

/// Persists the tenant's last-good record and scrubs it back. A torn
/// write (injected `disk-full`, or any real corruption) fails the scrub
/// — the CRC layer evicts the record — and the generation is counted as
/// faulted, so persistence failures are detected the generation they
/// happen, never discovered at churn time.
fn persist_last_good(state: &TenantState, store: &CheckpointStore, faults: &FaultSpec) -> bool {
    if !store.is_enabled() {
        return true;
    }
    let record = LastGood {
        generation: state.deployed_generation,
        plans: state.plans.clone(),
    };
    let Ok(payload) = twig_serde_json::to_string(&record) else {
        return false;
    };
    let key = last_good_key(&state.name);
    // The LastGood commit is the fleet's durability boundary: a kill on
    // either side must leave a record the next run re-derives (pre: the
    // previous generation's record still stands; post: the store's
    // atomic rename already landed this one).
    twig_sched::durable::hit("fleet-lastgood-pre");
    store.store_with_faults(&key, payload.as_bytes(), faults);
    twig_sched::durable::hit("fleet-lastgood-post");
    store.load(&key).is_some()
}

/// A churned tenant lost its in-memory generation state and re-onboards
/// from its last-good record (or from the pristine binary when no valid
/// record exists).
fn churn_reonboard(state: &mut TenantState, optimizer: &TwigOptimizer, store: &CheckpointStore) {
    let restored = store
        .load(&last_good_key(&state.name))
        .and_then(|bytes| String::from_utf8(bytes).ok())
        .and_then(|text| twig_serde_json::from_str::<LastGood>(&text).ok());
    match restored {
        Some(record) => {
            let rebuilt = optimizer.rewrite_of(&state.pristine, &state.layout, &record.plans);
            state.deployed = Arc::new(rebuilt.program);
            state.plans = record.plans;
            state.deployed_generation = record.generation;
        }
        None => {
            state.deployed = Arc::clone(&state.pristine);
            state.plans.clear();
            state.deployed_generation = 0;
        }
    }
}

/// Runs the continuous-PGO loop over `tenants` and returns the
/// deterministic manifest.
///
/// # Errors
///
/// Returns a message for duplicate tenant names or an invalid workload
/// spec.
pub fn run_fleet(tenants: &[TenantSpec], config: &FleetConfig) -> Result<FleetOutcome, String> {
    if tenants.is_empty() {
        return Err("fleet needs at least one tenant".to_string());
    }
    for (i, a) in tenants.iter().enumerate() {
        for b in &tenants[i + 1..] {
            if a.name == b.name {
                return Err(format!("duplicate tenant name {:?}", a.name));
            }
        }
    }

    let optimizer = TwigOptimizer::new(TwigConfig::default());
    let store = match &config.state_dir {
        // Cold open: last-good records are per-run state (churn within a
        // run re-onboards from them; a fresh run must not see a prior
        // run's records or clean reruns would not be byte-identical).
        Some(dir) => CheckpointStore::open(dir, false),
        None => CheckpointStore::disabled(),
    };

    let mut states: Vec<TenantState> = tenants
        .iter()
        .map(|tenant| {
            tenant.spec.validate().map_err(|e| format!("tenant {}: {e}", tenant.name))?;
            let generator = ProgramGenerator::new(tenant.spec.clone());
            let pristine = Arc::new(generator.generate());
            Ok(TenantState {
                name: tenant.name.clone(),
                seed: tenant.seed,
                sim: SimConfig::paper_baseline(tenant.spec.backend_extra_cpki)
                    .with_btb_entries(config.btb_entries),
                layout: generator.layout_options(),
                schedule: PhaseSchedule::diurnal(tenant.seed),
                deployed: Arc::clone(&pristine),
                pristine,
                plans: Vec::new(),
                rejected: std::collections::HashSet::new(),
                events: Vec::new(),
                health: HealthTracker::new(),
                holds: 0,
                converged: false,
                generations: 0,
                deployed_generation: 0,
                deploys: 0,
                rollbacks: 0,
                ipc_micros: 0,
                latency: Hist64::new(),
                series: new_series(),
                slo_burn_streak: 0,
                slo_breaches: 0,
                slo_burn_permille: 0,
            })
        })
        .collect::<Result<_, String>>()?;

    let policy = TaskPolicy { attempts: 2, backoff_ms: 1, timeout_ms: None };
    let worker_faults = Arc::clone(&config.faults);
    let worker_optimizer = optimizer.clone();
    let mut pool: ServicePool<ProfileJob, ProfileChunk> = ServicePool::new(
        config.workers,
        config.queue_depth,
        policy,
        move |job: &ProfileJob, _token| {
            if worker_faults.fires_service(FaultKind::StallStream, &job.tenant, job.generation) {
                return Err(TaskError::Domain {
                    kind: "stall-stream".to_string(),
                    detail: format!(
                        "profile stream for {} produced no samples at generation {}",
                        job.tenant, job.generation
                    ),
                });
            }
            // The sampled stream arrives as a shared slice; feeding it
            // through a `MemSource` keeps the worker on the same
            // source-based path the out-of-core readers use.
            let (profile, stats) = worker_optimizer.collect_profile_and_stats_from_source(
                &job.deployed,
                job.sim,
                &mut MemSource::new(Arc::clone(&job.events)),
                job.instructions,
            );
            let mut fingerprint = profile_fingerprint(&profile);
            if worker_faults.fires_service(FaultKind::CorruptProfile, &job.tenant, job.generation)
            {
                fingerprint ^= 0xBAD5_EED5_BAD5_EED5;
            }
            Ok(ProfileChunk {
                profile,
                stats,
                fingerprint,
                events: Arc::clone(&job.events),
                instructions: job.instructions,
            })
        },
    );

    let mut generations_run = 0u64;
    for generation in 0..config.max_generations {
        if !states.iter().any(TenantState::active) {
            break;
        }
        generations_run += 1;

        let mut submitted: Vec<usize> = Vec::new();
        for (i, state) in states.iter_mut().enumerate() {
            if !state.active() {
                continue;
            }
            state.generations += 1;
            if config.faults.fires_service(FaultKind::TenantChurn, &state.name, generation) {
                churn_reonboard(state, &optimizer, &store);
                state.holds = 0;
                state.health.on_fault(generation, FaultReason::TenantChurn);
                continue;
            }
            let phase = state.schedule.phase_at(generation);
            let (events, instructions) = events_for(state, phase, config.instructions);
            pool.submit(
                format!("fleet:{}@g{}:{}", state.name, generation, phase.name()),
                ProfileJob {
                    tenant: state.name.clone(),
                    generation,
                    deployed: Arc::clone(&state.deployed),
                    events,
                    instructions,
                    sim: state.sim,
                },
            );
            submitted.push(i);
        }

        for (i, report) in submitted.iter().zip(pool.drain()) {
            process_report(&mut states[*i], report, generation, config, &optimizer, &store);
        }
    }

    let service = pool.stats();
    pool.shutdown();

    states.sort_by(|a, b| a.name.cmp(&b.name));
    let active_exists = states.iter().any(|s| !s.health.is_quarantined());
    let converged = active_exists
        && states.iter().all(|s| s.health.is_quarantined() || s.converged);
    let tenants = states
        .iter()
        .map(|state| TenantRecord {
            name: state.name.clone(),
            health: state.health.state().as_str().to_string(),
            reason: state.health.last_reason().to_string(),
            converged: state.converged,
            generations: state.generations,
            deployed_generation: state.deployed_generation,
            deploys: state.deploys,
            rollbacks: state.rollbacks,
            faults_seen: state.health.faults_seen(),
            ipc_micros: state.ipc_micros,
            layout_fingerprint: plans_fingerprint(&state.plans),
            latency: LatencySummary {
                p50: state.latency.percentile(50, 100),
                p99: state.latency.percentile(99, 100),
                p999: state.latency.percentile(999, 1000),
            },
            slo_breaches: state.slo_breaches,
            slo_burn_permille: state.slo_burn_permille,
            series: state.series.snapshot(1),
            transitions: state
                .health
                .transitions()
                .iter()
                .map(|t| TransitionRecord {
                    generation: t.generation,
                    from: t.from.as_str().to_string(),
                    to: t.to.as_str().to_string(),
                    reason: t.reason.clone(),
                })
                .collect(),
        })
        .collect();

    Ok(FleetOutcome {
        manifest: FleetManifest {
            version: FLEET_MANIFEST_VERSION,
            generations_run,
            converged,
            tenants,
        },
        service,
    })
}

fn process_report(
    state: &mut TenantState,
    report: TaskReport<ProfileChunk>,
    generation: u64,
    config: &FleetConfig,
    optimizer: &TwigOptimizer,
    store: &CheckpointStore,
) {
    let mut fault: Option<FaultReason> = None;
    match report.result {
        Err(_) => {
            // Stalled, panicked, or timed out: either way no usable
            // profile arrived this generation.
            fault = Some(FaultReason::StallStream);
        }
        Ok(chunk) => {
            if profile_fingerprint(&chunk.profile) != chunk.fingerprint {
                fault = Some(FaultReason::CorruptProfile);
            } else {
                let spike = config.faults.fires_service(
                    FaultKind::LatencySpike,
                    &state.name,
                    generation,
                );
                let gen_p99 = record_latency(
                    state,
                    generation,
                    &chunk.stats,
                    config.requests_per_generation,
                    spike,
                );
                state.ipc_micros = (chunk.stats.ipc() * 1e6).round() as u64;
                state.slo_burn_permille =
                    gen_p99.saturating_mul(1000) / config.slo_p99_cycles.max(1);
                if state.slo_burn_permille > 1000 {
                    state.slo_breaches += 1;
                    state.slo_burn_streak += 1;
                } else {
                    state.slo_burn_streak = 0;
                }
                let fresh = optimizer.analyze_for(&chunk.profile, &state.pristine);
                let merged = merge_plans(&state.plans, &fresh, &state.rejected);
                if merged.len() > state.plans.len() {
                    let candidate = optimizer.rewrite_of(&state.pristine, &state.layout, &merged);
                    let candidate_stats = simulate(
                        &candidate.program,
                        state.sim,
                        &chunk.events,
                        chunk.instructions,
                    );
                    match judge_deploy(
                        &GateMetrics::from_stats(&chunk.stats),
                        &GateMetrics::from_stats(&candidate_stats),
                    ) {
                        GateDecision::Deploy => {
                            state.deployed = Arc::new(candidate.program);
                            state.plans = merged;
                            state.deployed_generation = generation;
                            state.deploys += 1;
                            state.holds = 0;
                        }
                        GateDecision::Hold => state.holds += 1,
                        GateDecision::Rollback => {
                            // The gate doing its job is not a fault: the
                            // deployed layout was revalidated as better,
                            // which counts as an in-noise generation. The
                            // novel branches are blacklisted so the same
                            // losing candidate is never rebuilt.
                            for plan in &merged[state.plans.len()..] {
                                state.rejected.insert(plan.branch_block.raw());
                            }
                            state.rollbacks += 1;
                            state.holds += 1;
                        }
                    }
                } else {
                    state.holds += 1;
                }
                if fault.is_none() && !persist_last_good(state, store, &config.faults) {
                    fault = Some(FaultReason::DiskFull);
                }
                // One window per profiled generation (the series' window
                // axis is the generation number), pushed after the gate
                // so `fleet.deploys` reflects this generation's outcome.
                state.series.push_window(
                    generation,
                    generation,
                    &[
                        state.ipc_micros,
                        gen_p99,
                        state.slo_burn_permille,
                        state.deploys,
                    ],
                );
                // A sustained burn is an SLO fault for this generation
                // (unless something harder already claimed it).
                if fault.is_none() && state.slo_burn_streak >= config.slo_burn_generations {
                    fault = Some(FaultReason::SloBurn);
                }
            }
        }
    }
    match fault {
        Some(reason) => {
            state.holds = 0;
            state.health.on_fault(generation, reason);
        }
        None => {
            state.health.on_clean(generation);
            if state.holds >= config.converge_after {
                state.converged = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_monotone_and_keeps_deployed_sites() {
        let plan = |raw: u32| MissPlan {
            branch_block: twig_types::BlockId::new(raw),
            total_samples: u64::from(raw),
            sites: Vec::new(),
        };
        let deployed = vec![plan(1), plan(2)];
        let rejected: std::collections::HashSet<u32> = [4].into_iter().collect();
        let merged = merge_plans(&deployed, &[plan(2), plan(3), plan(4)], &rejected);
        let blocks: Vec<u32> = merged.iter().map(|p| p.branch_block.raw()).collect();
        assert_eq!(blocks, [1, 2, 3], "rejected branch 4 must never come back");
        let again = merge_plans(&merged, &[plan(3), plan(1)], &rejected);
        assert_eq!(again.len(), 3, "remerge must be a no-op");
    }

    #[test]
    fn fingerprints_are_content_sensitive() {
        let mut a = Profile::new(8, 1);
        a.instructions = 1000;
        let mut b = Profile::new(8, 1);
        b.instructions = 1001;
        assert_ne!(profile_fingerprint(&a), profile_fingerprint(&b));
        assert_eq!(profile_fingerprint(&a), profile_fingerprint(&a));
    }

    #[test]
    fn duplicate_tenant_names_are_rejected() {
        let mut tenants = TenantSpec::demo_fleet(2);
        tenants[1].name = tenants[0].name.clone();
        let err = run_fleet(&tenants, &FleetConfig::demo()).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }
}
