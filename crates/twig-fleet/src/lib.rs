//! Fleet-scale continuous profile-guided optimization for the Twig
//! harness.
//!
//! The paper's pipeline is one-shot: profile once, inject BTB prefetches
//! once, evaluate once. A data-center deployment is a *loop* — tenant
//! binaries run for months, request mixes drift by the hour, and the
//! profile → inject → re-deploy cycle repeats continuously under a
//! supervisor that must survive stalled profile streams, bit-rotted
//! samples, tenant churn, and full disks without wedging the fleet.
//! This crate reproduces that operational shape on top of the existing
//! pipeline:
//!
//! * [`service::run_fleet`] — the supervised generation loop: N tenants
//!   × rotating load phases ([`twig_workload::PhaseSchedule`]), sampled
//!   profiles streamed through a bounded-queue worker pool with explicit
//!   backpressure ([`twig_sched::ServicePool`]), candidate layouts
//!   A/B-gated by the regression-sentinel thresholds ([`gate`]), and a
//!   convergence watchdog.
//! * [`health`] — the per-tenant `healthy → degraded → quarantined`
//!   state machine with typed transition reasons.
//! * [`manifest`] — the versioned, worker-count-invariant
//!   `fleet_manifest.json` record (schema
//!   `docs/schema/fleet-manifest-v2.json`).
//!
//! Chaos drills (`fleet_drill`, wired into CI) prove each injectable
//! service fault — `stall-stream`, `corrupt-profile`, `tenant-churn`,
//! `disk-full` — is detected within two generations, quarantines exactly
//! the injected tenant, and that a clean re-run converges to a
//! byte-identical manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod health;
pub mod manifest;
pub mod service;

pub use gate::{judge_deploy, GateDecision, GateMetrics};
pub use health::{FaultReason, Health, HealthTracker, Transition};
pub use manifest::{
    FleetManifest, LatencySummary, TenantRecord, TransitionRecord, FLEET_MANIFEST_VERSION,
};
pub use service::{run_fleet, FleetConfig, FleetOutcome, TenantSpec};
