//! The versioned fleet manifest: `results/fleet_manifest.json`.
//!
//! The manifest is the fleet run's deterministic artifact, shaped by the
//! same rules as the metrics exports: a leading schema version, tenants
//! sorted by name, integer-only figures (IPC is stored in micro-IPC so
//! no float formatting can differ across platforms), and **no
//! wall-clock or worker-count anywhere** — a run with 1 worker and a
//! run with 8 must produce byte-identical files (CI diffs them). Schema:
//! `docs/schema/fleet-manifest-v2.json`, validated in the chaos lane
//! via `twig metrics validate`.

use twig_obs::TimelineSnapshot;
use twig_serde::{Deserialize, Serialize};

/// Schema version of `fleet_manifest.json`.
///
/// v2 added the per-tenant generation `series` (a windowed
/// [`TimelineSnapshot`], one window per profiled generation) and the SLO
/// burn gauges (`slo_breaches`, `slo_burn_permille`).
pub const FLEET_MANIFEST_VERSION: u32 = 2;

/// Request-latency digest for one tenant (cycles, from the per-tenant
/// `Hist64` — p99.9 is the tail the fleet service is judged on).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median request latency, cycles.
    pub p50: u64,
    /// 99th-percentile request latency, cycles.
    pub p99: u64,
    /// 99.9th-percentile request latency, cycles.
    pub p999: u64,
}

/// One recorded health transition (see `health::Transition`).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TransitionRecord {
    /// Generation the transition happened at.
    pub generation: u64,
    /// State before (`healthy` / `degraded` / `quarantined`).
    pub from: String,
    /// State after.
    pub to: String,
    /// Typed reason: a fault kind name or `recovered`.
    pub reason: String,
}

/// One tenant's final record.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TenantRecord {
    /// Tenant name (unique within the fleet).
    pub name: String,
    /// Final health state.
    pub health: String,
    /// Most recent typed fault reason (`none` if never faulted).
    pub reason: String,
    /// Whether the convergence watchdog fired for this tenant.
    pub converged: bool,
    /// Generations this tenant participated in.
    pub generations: u64,
    /// Generation of the last successful deploy (0 if none ever shipped).
    pub deployed_generation: u64,
    /// Layout deploys that passed the A/B gate.
    pub deploys: u64,
    /// Candidates rejected by the gate.
    pub rollbacks: u64,
    /// Faulted generations observed.
    pub faults_seen: u64,
    /// Deployed-layout IPC in micro-IPC (IPC × 1 000 000, rounded).
    pub ipc_micros: u64,
    /// Fingerprint of the deployed plan set (byte-identity witness).
    pub layout_fingerprint: u64,
    /// Request-latency digest.
    pub latency: LatencySummary,
    /// Generations whose own p99 exceeded the SLO target.
    pub slo_breaches: u64,
    /// Last profiled generation's burn rate: p99 × 1000 / SLO target
    /// (values over 1000 mean the budget was burning).
    pub slo_burn_permille: u64,
    /// Per-generation series (window axis = generation, window period
    /// 1): IPC, p99, burn-rate gauges plus the cumulative-deploy counter.
    pub series: TimelineSnapshot,
    /// Full health history.
    pub transitions: Vec<TransitionRecord>,
}

/// The `fleet_manifest.json` document.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FleetManifest {
    /// Schema version ([`FLEET_MANIFEST_VERSION`]).
    pub version: u32,
    /// Generations the fleet loop actually ran.
    pub generations_run: u64,
    /// True when every non-quarantined tenant converged.
    pub converged: bool,
    /// Per-tenant records, sorted by name.
    pub tenants: Vec<TenantRecord>,
}

impl FleetManifest {
    /// Serializes to pretty JSON with a trailing newline (the on-disk
    /// format CI byte-compares).
    ///
    /// # Errors
    ///
    /// Returns the underlying serializer error message.
    pub fn to_json(&self) -> Result<String, String> {
        twig_serde_json::to_string_pretty(self)
            .map(|mut s| {
                s.push('\n');
                s
            })
            .map_err(|e| e.to_string())
    }

    /// Parses a manifest, rejecting unknown schema versions.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a version mismatch.
    pub fn from_json(text: &str) -> Result<FleetManifest, String> {
        let manifest: FleetManifest =
            twig_serde_json::from_str(text).map_err(|e| e.to_string())?;
        if manifest.version != FLEET_MANIFEST_VERSION {
            return Err(format!(
                "unsupported fleet manifest version {} (expected {})",
                manifest.version, FLEET_MANIFEST_VERSION
            ));
        }
        Ok(manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetManifest {
        FleetManifest {
            version: FLEET_MANIFEST_VERSION,
            generations_run: 5,
            converged: true,
            tenants: vec![TenantRecord {
                name: "svc-alpha".into(),
                health: "healthy".into(),
                reason: "none".into(),
                converged: true,
                generations: 5,
                deployed_generation: 1,
                deploys: 2,
                rollbacks: 0,
                faults_seen: 0,
                ipc_micros: 512_345,
                layout_fingerprint: 0xDEAD_BEEF,
                latency: LatencySummary { p50: 220, p99: 512, p999: 760 },
                slo_breaches: 0,
                slo_burn_permille: 128,
                series: TimelineSnapshot::empty(1),
                transitions: vec![TransitionRecord {
                    generation: 2,
                    from: "healthy".into(),
                    to: "degraded".into(),
                    reason: "stall-stream".into(),
                }],
            }],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let manifest = sample();
        let json = manifest.to_json().unwrap();
        assert!(json.ends_with('\n'));
        let back = FleetManifest::from_json(&json).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.to_json().unwrap(), json);
    }

    #[test]
    fn rejects_future_versions() {
        let mut manifest = sample();
        manifest.version = 99;
        let json = twig_serde_json::to_string_pretty(&manifest).unwrap();
        let err = FleetManifest::from_json(&json).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }
}
