//! A perceptron direction predictor (Jiménez & Lin, HPCA 2001).
//!
//! Completes the predictor suite alongside gshare and the TAGE-like
//! predictor: perceptrons learn *linearly separable* correlations over long
//! histories at low storage cost, a useful contrast point when studying how
//! direction-mispredict noise interacts with BTB-miss resteers (both flush
//! the FDIP runahead; see EXPERIMENTS.md D1).

use twig_types::Addr;

use crate::direction::DirectionPredictor;

/// History length (weights per perceptron, excluding bias).
const HISTORY_BITS: usize = 28;

/// Weight clamp (8-bit signed weights).
const WEIGHT_MAX: i16 = 127;
const WEIGHT_MIN: i16 = -128;

/// A table of perceptrons indexed by branch PC.
///
/// # Examples
///
/// ```
/// use twig_sim::{DirectionPredictor, Perceptron};
/// use twig_types::Addr;
///
/// let mut p = Perceptron::new(10);
/// let pc = Addr::new(0x40_2000);
/// for _ in 0..64 {
///     p.update(pc, true);
/// }
/// assert!(p.predict(pc));
/// ```
#[derive(Clone, Debug)]
pub struct Perceptron {
    /// Per-entry: bias weight followed by one weight per history bit.
    weights: Vec<[i16; HISTORY_BITS + 1]>,
    history: u64,
    mask: u64,
    /// Training threshold θ ≈ 1.93·h + 14 (the original paper's tuning).
    threshold: i32,
}

impl Perceptron {
    /// Creates a perceptron table with `2^table_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 24.
    pub fn new(table_bits: u32) -> Self {
        assert!((1..=24).contains(&table_bits));
        Perceptron {
            weights: vec![[0; HISTORY_BITS + 1]; 1 << table_bits],
            history: 0,
            mask: (1 << table_bits) - 1,
            threshold: (1.93 * HISTORY_BITS as f64 + 14.0) as i32,
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        (((pc.raw() >> 1) ^ (pc.raw() >> 13)) & self.mask) as usize
    }

    /// The perceptron output y = bias + Σ wᵢ·xᵢ with xᵢ ∈ {−1, +1}.
    fn output(&self, pc: Addr) -> i32 {
        let w = &self.weights[self.index(pc)];
        let mut y = i32::from(w[0]);
        for (i, &wi) in w[1..].iter().enumerate() {
            let taken = (self.history >> i) & 1 == 1;
            y += if taken { i32::from(wi) } else { -i32::from(wi) };
        }
        y
    }
}

impl DirectionPredictor for Perceptron {
    fn predict(&mut self, pc: Addr) -> bool {
        self.output(pc) >= 0
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let y = self.output(pc);
        let predicted = y >= 0;
        // Train on mispredict or weak output (|y| <= θ).
        if predicted != taken || y.abs() <= self.threshold {
            let idx = self.index(pc);
            let t: i16 = if taken { 1 } else { -1 };
            let w = &mut self.weights[idx];
            w[0] = (w[0] + t).clamp(WEIGHT_MIN, WEIGHT_MAX);
            for (i, wi) in w[1..].iter_mut().enumerate() {
                let x: i16 = if (self.history >> i) & 1 == 1 { 1 } else { -1 };
                *wi = (*wi + t * x).clamp(WEIGHT_MIN, WEIGHT_MAX);
            }
        }
        self.history = (self.history << 1) | u64::from(taken);
    }

    fn name(&self) -> &'static str {
        "perceptron"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    fn accuracy(p: &mut dyn DirectionPredictor, stream: &[(u64, bool)]) -> f64 {
        let mut correct = 0usize;
        for &(pc, taken) in stream {
            if p.predict(a(pc)) == taken {
                correct += 1;
            }
            p.update(a(pc), taken);
        }
        correct as f64 / stream.len() as f64
    }

    #[test]
    fn learns_biased_branches() {
        let stream: Vec<(u64, bool)> = (0..20_000)
            .map(|i| {
                let b = (i % 16) as u64;
                (0x1000 + b * 6, !b.is_multiple_of(3))
            })
            .collect();
        let mut p = Perceptron::new(12);
        let acc = accuracy(&mut p, &stream);
        assert!(acc > 0.97, "perceptron biased accuracy {acc}");
    }

    #[test]
    fn learns_history_correlated_pattern() {
        // Branch B's outcome equals branch A's previous outcome: a linearly
        // separable correlation perceptrons excel at.
        let mut stream = Vec::new();
        let mut a_out = false;
        for i in 0..30_000 {
            a_out = i % 3 == 0;
            stream.push((0x2000u64, a_out)); // A
            stream.push((0x3000u64, a_out)); // B copies A
        }
        let _ = a_out;
        let mut p = Perceptron::new(12);
        // Only count B's accuracy in the tail.
        let warm = 2_000;
        let mut correct = 0;
        let mut total = 0;
        for (i, &(pc, taken)) in stream.iter().enumerate() {
            let predicted = p.predict(a(pc));
            if pc == 0x3000 && i >= warm {
                total += 1;
                correct += usize::from(predicted == taken);
            }
            p.update(a(pc), taken);
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.98, "correlated-branch accuracy {acc}");
    }

    #[test]
    fn weights_stay_clamped() {
        let mut p = Perceptron::new(8);
        for _ in 0..100_000 {
            p.update(a(0x42), true);
        }
        for &w in &p.weights[p.index(a(0x42))] {
            assert!((WEIGHT_MIN..=WEIGHT_MAX).contains(&w));
        }
        assert!(p.predict(a(0x42)));
    }

    #[test]
    fn cold_prediction_is_defined() {
        let mut p = Perceptron::new(8);
        let _ = p.predict(a(0xdead));
        assert_eq!(p.name(), "perceptron");
    }
}
