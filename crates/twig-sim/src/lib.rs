//! A cycle-driven decoupled-frontend (FDIP) CPU simulator for the Twig
//! reproduction.
//!
//! This crate is the stand-in for the paper's Scarab-based infrastructure
//! (§4.1): a frontend-focused timing model with a branch prediction unit
//! (set-associative [`Btb`] + IBTB, [`Ras`], TAGE-like direction
//! prediction), a fetch target queue with fetch-directed instruction
//! prefetching, a three-level instruction-side [`MemoryHierarchy`], a BTB
//! [`PrefetchBuffer`], and Top-Down slot accounting.
//!
//! BTB organizations and prefetch policies plug in through the
//! [`BtbSystem`] trait; the baseline [`PlainBtb`] doubles as the FDIP
//! baseline (no injected ops) and the Twig configuration (program rewritten
//! with `brprefetch`/`brcoalesce`).
//!
//! # Example
//!
//! ```
//! use twig_sim::{PlainBtb, SimConfig, Simulator};
//! use twig_workload::{InputConfig, ProgramGenerator, Walker, WorkloadSpec};
//!
//! let program = ProgramGenerator::new(WorkloadSpec::tiny_test()).generate();
//! let config = SimConfig::default(); // the paper's Table 1
//! let mut sim = Simulator::new(&program, config, PlainBtb::new(&config));
//! let stats = sim.run(Walker::new(&program, InputConfig::numbered(0)), 50_000);
//! println!("IPC {:.2}, BTB MPKI {:.1}", stats.ipc(), stats.btb_mpki());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod btb;
pub mod config;
pub mod core;
pub mod direction;
mod frontend_state;
pub mod icache;
pub mod integrity;
pub mod obs;
pub mod perceptron;
pub mod prefetch_buffer;
pub mod ras;
pub mod stats;
pub mod system;

pub use btb::{Btb, BtbEntry};
pub use config::{
    BtbGeometry, CacheGeometry, DirectionPredictorKind, SimConfig, SimConfigBuilder,
    SimConfigError,
};
pub use obs::{ObsState, TimelineState};
pub use twig_obs::{
    AttrConfig, AttributionSnapshot, ExportError, MetricsRegistry, MetricsSnapshot, MissKind,
    ObsConfig, ObsLevel, TimelineSnapshot,
};
pub use core::{HistoryEntry, MissObserver, Simulator, LBR_DEPTH};
pub use integrity::{
    Fault, IntegrityConfig, IntegrityLevel, IntegrityViolation, MutationKind, MutationSpec,
    Validator, ViolationKind,
};
pub use direction::{build_predictor, DirectionPredictor, Gshare, TageLite};
pub use perceptron::Perceptron;
pub use icache::{AccessResult, FillSource, MemoryHierarchy, MemoryStats};
pub use prefetch_buffer::{BufferedEntry, PrefetchBuffer, PrefetchBufferStats};
pub use ras::Ras;
pub use stats::{speedup_percent, SimStats, TopDownSlots};
pub use system::{BtbSystem, FrontendCtx, LookupOutcome, PlainBtb, SoftwarePrefetcher};
