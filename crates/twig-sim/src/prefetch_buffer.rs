//! The BTB prefetch buffer.
//!
//! Prefetched BTB entries — whether from Twig's software prefetch
//! instructions or from hardware prefetchers — land here rather than
//! directly in the BTB, so that speculative prefetches cannot evict
//! demand-installed entries. On a BTB miss the buffer is checked; a hit
//! counts as a *covered* miss, promotes the entry into the BTB, and avoids
//! the resteer. Fig. 25 sweeps the buffer size from 8 to 256 entries.

use twig_types::{Addr, BranchKind, FxHashMap};

use crate::integrity::{Fault, Validator, ViolationKind};

/// One buffered prefetched BTB entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BufferedEntry {
    /// Predicted taken target.
    pub target: Addr,
    /// Branch classification.
    pub kind: BranchKind,
    /// Cycle at which the prefetch completes and the entry becomes usable.
    pub ready_at: u64,
}

/// Lifetime counters for prefetch coverage/accuracy accounting (Figs. 17, 19).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PrefetchBufferStats {
    /// Entries inserted (deduplicated re-prefetches of a resident entry do
    /// not count again).
    pub inserted: u64,
    /// Entries consumed by a demand lookup before eviction (useful).
    pub used: u64,
    /// Entries evicted unused.
    pub evicted_unused: u64,
    /// Lookups that found an entry not yet ready (late prefetch).
    pub late: u64,
}

/// FIFO-replacement, fully-associative prefetch buffer.
///
/// # Examples
///
/// ```
/// use twig_sim::PrefetchBuffer;
/// use twig_types::{Addr, BranchKind, FxHashMap};
///
/// let mut buf = PrefetchBuffer::new(8);
/// buf.insert(Addr::new(0x100), Addr::new(0x900), BranchKind::DirectCall, 10);
/// assert!(buf.take(Addr::new(0x100), 5).is_none());  // not ready yet
/// assert!(buf.take(Addr::new(0x100), 12).is_some()); // ready, consumed
/// assert!(buf.take(Addr::new(0x100), 13).is_none()); // gone
/// ```
#[derive(Clone, Debug)]
pub struct PrefetchBuffer {
    entries: FxHashMap<Addr, BufferedEntry>,
    order: std::collections::VecDeque<Addr>,
    capacity: usize,
    stats: PrefetchBufferStats,
}

impl PrefetchBuffer {
    /// Creates an empty buffer holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer capacity must be positive");
        PrefetchBuffer {
            entries: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            order: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            stats: PrefetchBufferStats::default(),
        }
    }

    /// Inserts a prefetched entry that becomes usable at `ready_at`.
    ///
    /// Re-prefetching a resident branch refreshes its payload but is not
    /// double-counted. When full, the oldest entry is evicted (FIFO). An
    /// entry's FIFO age is its earliest un-evicted enqueue: consuming an
    /// entry leaves its key in the order queue, so a branch prefetched
    /// again after a demand hit inherits its original age (pinned by the
    /// reference-model property tests in `tests/properties.rs`).
    pub fn insert(&mut self, pc: Addr, target: Addr, kind: BranchKind, ready_at: u64) {
        if let Some(existing) = self.entries.get_mut(&pc) {
            existing.target = target;
            existing.kind = kind;
            existing.ready_at = existing.ready_at.min(ready_at);
            return;
        }
        if self.entries.len() == self.capacity {
            // FIFO victim.
            while let Some(victim) = self.order.pop_front() {
                if self.entries.remove(&victim).is_some() {
                    self.stats.evicted_unused += 1;
                    break;
                }
            }
        }
        self.entries.insert(
            pc,
            BufferedEntry {
                target,
                kind,
                ready_at,
            },
        );
        self.order.push_back(pc);
        self.stats.inserted += 1;
    }

    /// Demand lookup at `cycle`: removes and returns the entry if present
    /// and ready. A present-but-late entry is counted and left in place.
    pub fn take(&mut self, pc: Addr, cycle: u64) -> Option<BufferedEntry> {
        match self.entries.get(&pc) {
            Some(e) if e.ready_at <= cycle => {
                let e = *e;
                self.entries.remove(&pc);
                self.stats.used += 1;
                Some(e)
            }
            Some(_) => {
                self.stats.late += 1;
                None
            }
            None => None,
        }
    }

    /// Whether an entry for `pc` is resident (ready or not).
    pub fn contains(&self, pc: Addr) -> bool {
        self.entries.contains_key(&pc)
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Coverage/accuracy counters.
    pub fn stats(&self) -> PrefetchBufferStats {
        self.stats
    }
}

impl Validator for PrefetchBuffer {
    fn component(&self) -> &'static str {
        "prefetch-buffer"
    }

    fn check(&self, deep: bool) -> Result<(), Fault> {
        if self.entries.len() > self.capacity {
            return Err(Fault::new(
                ViolationKind::PrefetchBuffer,
                format!(
                    "{} resident entries exceed capacity {}",
                    self.entries.len(),
                    self.capacity
                ),
            ));
        }
        // Conservation: every insertion is still resident, was consumed,
        // or was evicted unused. (The map is keyed by PC, so no-duplicate
        // holds by construction; the FIFO list may keep stale keys of
        // already-consumed entries, which eviction skips.)
        let accounted = self.stats.used + self.stats.evicted_unused + self.entries.len() as u64;
        if self.stats.inserted != accounted {
            return Err(Fault::new(
                ViolationKind::PrefetchBuffer,
                format!(
                    "conservation broken: inserted {} != used {} + evicted {} + resident {}",
                    self.stats.inserted,
                    self.stats.used,
                    self.stats.evicted_unused,
                    self.entries.len()
                ),
            ));
        }
        if deep {
            let order: std::collections::HashSet<&Addr> = self.order.iter().collect();
            for pc in self.entries.keys() {
                if !order.contains(pc) {
                    return Err(Fault::new(
                        ViolationKind::PrefetchBuffer,
                        format!("resident entry {pc:?} missing from the FIFO order list"),
                    ));
                }
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> String {
        format!(
            "prefetch-buffer {}/{} resident, stats {:?}, {} order keys",
            self.entries.len(),
            self.capacity,
            self.stats,
            self.order.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    fn insert_n(buf: &mut PrefetchBuffer, n: u64) {
        for i in 0..n {
            buf.insert(a(0x1000 + i * 8), a(0x9000 + i), BranchKind::Conditional, 0);
        }
    }

    #[test]
    fn fifo_eviction() {
        let mut buf = PrefetchBuffer::new(4);
        insert_n(&mut buf, 5);
        assert_eq!(buf.len(), 4);
        assert!(!buf.contains(a(0x1000)), "oldest entry should be evicted");
        assert!(buf.contains(a(0x1020)));
        assert_eq!(buf.stats().evicted_unused, 1);
    }

    #[test]
    fn take_consumes_and_counts_used() {
        let mut buf = PrefetchBuffer::new(4);
        insert_n(&mut buf, 2);
        assert!(buf.take(a(0x1000), 10).is_some());
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.stats().used, 1);
    }

    #[test]
    fn late_prefetch_is_counted_not_consumed() {
        let mut buf = PrefetchBuffer::new(4);
        buf.insert(a(0x50), a(0x60), BranchKind::DirectJump, 100);
        assert!(buf.take(a(0x50), 99).is_none());
        assert_eq!(buf.stats().late, 1);
        assert!(buf.take(a(0x50), 100).is_some());
    }

    #[test]
    fn reinsert_does_not_double_count() {
        let mut buf = PrefetchBuffer::new(4);
        buf.insert(a(0x50), a(0x60), BranchKind::DirectJump, 5);
        buf.insert(a(0x50), a(0x70), BranchKind::DirectJump, 9);
        assert_eq!(buf.stats().inserted, 1);
        // Payload refreshed, earliest readiness kept.
        let e = buf.take(a(0x50), 6).unwrap();
        assert_eq!(e.target, a(0x70));
    }

    #[test]
    fn capacity_is_respected_under_churn() {
        let mut buf = PrefetchBuffer::new(16);
        for i in 0..1000u64 {
            buf.insert(a(i * 4), a(i), BranchKind::Conditional, 0);
            assert!(buf.len() <= 16);
        }
        let s = buf.stats();
        assert_eq!(s.inserted, 1000);
        assert_eq!(s.evicted_unused, 1000 - 16);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = PrefetchBuffer::new(0);
    }
}
