//! Conditional-branch direction predictors.
//!
//! The paper's baseline uses a 64 KB TAGE-SC-L (Table 1). We provide a
//! TAGE-like predictor ([`TageLite`]: bimodal base plus four tagged tables
//! with geometric history lengths) that reaches high accuracy on the
//! synthetic workloads, a classic [`Gshare`] for comparison/ablation, and an
//! oracle for limit studies.

use twig_types::Addr;

use crate::config::DirectionPredictorKind;

/// A conditional-branch direction predictor.
///
/// This trait is sealed in spirit: the simulator constructs predictors via
/// [`build_predictor`] from a [`DirectionPredictorKind`]; external
/// implementations are possible but not required by any Twig experiment.
pub trait DirectionPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: Addr) -> bool;
    /// Trains the predictor with the resolved direction.
    fn update(&mut self, pc: Addr, taken: bool);
    /// Short display name.
    fn name(&self) -> &'static str;
}

/// Builds the predictor selected by `kind`.
///
/// # Examples
///
/// ```
/// use twig_sim::{build_predictor, DirectionPredictorKind};
///
/// let mut p = build_predictor(DirectionPredictorKind::TageLite);
/// let pc = twig_types::Addr::new(0x400100);
/// for _ in 0..16 { p.update(pc, true); }
/// assert!(p.predict(pc));
/// ```
pub fn build_predictor(kind: DirectionPredictorKind) -> Box<dyn DirectionPredictor> {
    match kind {
        DirectionPredictorKind::Gshare { table_bits } => Box::new(Gshare::new(table_bits)),
        DirectionPredictorKind::TageLite => Box::new(TageLite::new()),
        DirectionPredictorKind::Perceptron { table_bits } => {
            Box::new(crate::perceptron::Perceptron::new(table_bits))
        }
        DirectionPredictorKind::Oracle => Box::new(Oracle),
    }
}

/// Saturating 2-bit counter helpers.
#[inline]
fn bump(counter: &mut u8, taken: bool) {
    if taken {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

/// Classic gshare: global history XOR PC indexing a 2-bit counter table.
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u64,
    mask: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare with `2^table_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `table_bits` is 0 or greater than 28.
    pub fn new(table_bits: u32) -> Self {
        assert!((1..=28).contains(&table_bits));
        Gshare {
            table: vec![2; 1 << table_bits],
            history: 0,
            mask: (1 << table_bits) - 1,
            history_bits: table_bits.min(16),
        }
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        (((pc.raw() >> 1) ^ self.history) & self.mask) as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: Addr) -> bool {
        self.table[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        bump(&mut self.table[idx], taken);
        self.history = ((self.history << 1) | u64::from(taken))
            & ((1u64 << self.history_bits) - 1);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// A tagged geometric-history predictor in the TAGE family.
///
/// Four tagged tables with history lengths 8/16/32/64 over a bimodal base.
/// Entries carry a 10-bit tag, a 3-bit signed counter, and a useful bit;
/// allocation on mispredict follows the standard TAGE policy (allocate in a
/// longer-history table whose victim is not useful).
#[derive(Clone, Debug)]
pub struct TageLite {
    base: Vec<u8>,
    tables: Vec<TageTable>,
    history: u128,
    /// Memo of the last provider search: `(pc, history generation,
    /// result)`. The frontend resolves a conditional by calling `predict`
    /// and then `update` with the same PC and unchanged history, so the
    /// second (identical) search is served from here.
    provider_memo: Option<ProviderMemo>,
    /// Bumped whenever `history` changes, invalidating the memo.
    history_gen: u64,
}

/// `(pc, history generation, provider table/index if any)` — the cached
/// result of one provider search.
type ProviderMemo = (u64, u64, Option<(usize, usize)>);

#[derive(Clone, Debug)]
struct TageTable {
    entries: Vec<TageEntry>,
    history_len: u32,
    mask: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    /// Counter in `0..=7`; taken when >= 4.
    ctr: u8,
    useful: bool,
    valid: bool,
}

// Sized to the paper's 64 KB TAGE-SC-L class: a 64K-entry bimodal base
// (16 KB at 2 bits) plus 4 x 8K-entry tagged tables (~56 KB at 14 bits).
const TAGE_TABLE_BITS: u32 = 13;
const TAGE_BASE_BITS: u32 = 16;
const TAGE_HISTORIES: [u32; 4] = [8, 16, 32, 64];

impl TageLite {
    /// Creates the predictor with default geometry (~64 KB-class budget).
    pub fn new() -> Self {
        TageLite {
            base: vec![2; 1 << TAGE_BASE_BITS],
            tables: TAGE_HISTORIES
                .iter()
                .map(|&h| TageTable {
                    entries: vec![TageEntry::default(); 1 << TAGE_TABLE_BITS],
                    history_len: h,
                    mask: (1 << TAGE_TABLE_BITS) - 1,
                })
                .collect(),
            history: 0,
            provider_memo: None,
            history_gen: 0,
        }
    }

    #[inline]
    fn folded_history(&self, bits: u32, out_bits: u32) -> u64 {
        // Every history window fits in 64 bits (`TAGE_HISTORIES` tops out
        // at 64), so the fold runs in native words rather than u128.
        debug_assert!(bits <= 64);
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let mut h = (self.history as u64) & mask;
        let out_mask = (1u64 << out_bits) - 1;
        let mut folded = 0u64;
        while h != 0 {
            folded ^= h & out_mask;
            h >>= out_bits;
        }
        folded
    }

    #[inline]
    fn table_index(&self, t: usize, pc: Addr) -> usize {
        let tab = &self.tables[t];
        let fh = self.folded_history(tab.history_len, TAGE_TABLE_BITS);
        (((pc.raw() >> 1) ^ fh ^ (pc.raw() >> (TAGE_TABLE_BITS as u64 + 1))) & tab.mask) as usize
    }

    #[inline]
    fn table_tag(&self, t: usize, pc: Addr) -> u16 {
        let tab = &self.tables[t];
        let fh = self.folded_history(tab.history_len, 10);
        ((((pc.raw() >> 1) ^ (fh << 1) ^ (pc.raw() >> 11)) & 0x3ff) as u16) | 0x400
    }

    /// Longest-matching tagged component, if any (memoized per
    /// `(pc, history)` so the predict → update pair searches once).
    fn provider(&mut self, pc: Addr) -> Option<(usize, usize)> {
        if let Some((memo_pc, gen, result)) = self.provider_memo {
            if memo_pc == pc.raw() && gen == self.history_gen {
                return result;
            }
        }
        let mut result = None;
        for t in (0..self.tables.len()).rev() {
            let idx = self.table_index(t, pc);
            let tag = self.table_tag(t, pc);
            let e = &self.tables[t].entries[idx];
            if e.valid && e.tag == tag {
                result = Some((t, idx));
                break;
            }
        }
        self.provider_memo = Some((pc.raw(), self.history_gen, result));
        result
    }

    #[inline]
    fn base_index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 1) & ((1 << TAGE_BASE_BITS) - 1)) as usize
    }
}

impl Default for TageLite {
    fn default() -> Self {
        TageLite::new()
    }
}

impl DirectionPredictor for TageLite {
    fn predict(&mut self, pc: Addr) -> bool {
        match self.provider(pc) {
            Some((t, idx)) => self.tables[t].entries[idx].ctr >= 4,
            None => self.base[self.base_index(pc)] >= 2,
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let provider = self.provider(pc);
        let predicted = match provider {
            Some((t, idx)) => self.tables[t].entries[idx].ctr >= 4,
            None => self.base[self.base_index(pc)] >= 2,
        };

        match provider {
            Some((t, idx)) => {
                let e = &mut self.tables[t].entries[idx];
                if taken {
                    e.ctr = (e.ctr + 1).min(7);
                } else {
                    e.ctr = e.ctr.saturating_sub(1);
                }
                if predicted == taken {
                    e.useful = true;
                }
            }
            None => {
                let idx = self.base_index(pc);
                bump(&mut self.base[idx], taken);
            }
        }

        // Allocate a longer-history entry on mispredict.
        if predicted != taken {
            let start = provider.map_or(0, |(t, _)| t + 1);
            for t in start..self.tables.len() {
                let idx = self.table_index(t, pc);
                let tag = self.table_tag(t, pc);
                let e = &mut self.tables[t].entries[idx];
                if !e.valid || !e.useful {
                    *e = TageEntry {
                        tag,
                        ctr: if taken { 4 } else { 3 },
                        useful: false,
                        valid: true,
                    };
                    break;
                }
                // Aging: failed allocation clears the useful bit.
                e.useful = false;
            }
        }

        self.history = (self.history << 1) | u128::from(taken);
        self.history_gen += 1;
    }

    fn name(&self) -> &'static str {
        "tage-lite"
    }
}

/// Perfect direction prediction (limit studies).
///
/// In the trace-driven simulator the "prediction" is compared against the
/// trace outcome, so a predictor that echoes the last trained outcome per PC
/// would still mispredict; the oracle is wired specially in the frontend,
/// and this type exists so `build_predictor` is total.
#[derive(Clone, Copy, Debug, Default)]
pub struct Oracle;

impl DirectionPredictor for Oracle {
    fn predict(&mut self, _pc: Addr) -> bool {
        true
    }

    fn update(&mut self, _pc: Addr, _taken: bool) {}

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    fn accuracy(p: &mut dyn DirectionPredictor, stream: &[(u64, bool)]) -> f64 {
        let mut correct = 0usize;
        for &(pc, taken) in stream {
            if p.predict(a(pc)) == taken {
                correct += 1;
            }
            p.update(a(pc), taken);
        }
        correct as f64 / stream.len() as f64
    }

    fn biased_stream(n: usize) -> Vec<(u64, bool)> {
        // 16 branches, each strongly biased; deterministic pattern.
        (0..n)
            .map(|i| {
                let b = (i % 16) as u64;
                let taken = !b.is_multiple_of(3) ^ (i % 97 == 0); // rare flips
                (0x1000 + b * 6, taken)
            })
            .collect()
    }

    fn loop_stream(n: usize) -> Vec<(u64, bool)> {
        // One branch: taken 7 times, then not taken (8-iteration loop).
        (0..n).map(|i| (0x2000, i % 8 != 7)).collect()
    }

    #[test]
    fn gshare_learns_biased_branches() {
        let mut p = Gshare::new(14);
        let acc = accuracy(&mut p, &biased_stream(20_000));
        assert!(acc > 0.95, "gshare accuracy {acc}");
    }

    #[test]
    fn tage_learns_biased_branches() {
        let mut p = TageLite::new();
        let acc = accuracy(&mut p, &biased_stream(20_000));
        assert!(acc > 0.95, "tage accuracy {acc}");
    }

    #[test]
    fn tage_learns_loop_exit_pattern() {
        // The 8-iteration loop exit is history-predictable: TAGE should get
        // well above the 7/8 = 87.5% ceiling of a bimodal predictor.
        let mut p = TageLite::new();
        let acc = accuracy(&mut p, &loop_stream(40_000));
        assert!(acc > 0.95, "tage loop accuracy {acc}");
    }

    #[test]
    fn gshare_cannot_beat_ceiling_without_enough_history_value() {
        // Sanity: gshare also learns this loop (history-based), so check it
        // at least beats bimodal's ceiling.
        let mut p = Gshare::new(14);
        let acc = accuracy(&mut p, &loop_stream(40_000));
        assert!(acc > 0.875, "gshare loop accuracy {acc}");
    }

    #[test]
    fn build_predictor_dispatches() {
        assert_eq!(
            build_predictor(DirectionPredictorKind::Gshare { table_bits: 12 }).name(),
            "gshare"
        );
        assert_eq!(build_predictor(DirectionPredictorKind::TageLite).name(), "tage-lite");
        assert_eq!(
            build_predictor(DirectionPredictorKind::Perceptron { table_bits: 12 }).name(),
            "perceptron"
        );
        assert_eq!(build_predictor(DirectionPredictorKind::Oracle).name(), "oracle");
    }

    #[test]
    fn cold_predictions_are_weakly_not_taken_biased_but_defined() {
        let mut p = TageLite::new();
        // Must not panic and must return a boolean for unseen PCs.
        let _ = p.predict(a(0xdead_beef));
        let mut g = Gshare::new(10);
        let _ = g.predict(a(0xdead_beef));
    }
}
