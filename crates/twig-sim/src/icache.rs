//! The instruction-side memory hierarchy: L1i → L2 → L3 → memory.
//!
//! Caches are set-associative tag arrays over 64-byte lines with true LRU.
//! In-flight fills are tracked in an MSHR-like map so demand accesses that
//! hit an outstanding prefetch wait only for the remaining latency — the
//! mechanism by which FDIP hides I-cache misses.


use twig_types::{CacheLineAddr, FxHashMap};

use crate::config::{CacheGeometry, SimConfig};
use crate::integrity::{Fault, Validator, ViolationKind};

/// Where a request was satisfied (for statistics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FillSource {
    /// Hit in L1i.
    L1i,
    /// Joined an outstanding fill (issued earlier, possibly by FDIP).
    InFlight,
    /// Filled from L2.
    L2,
    /// Filled from L3.
    L3,
    /// Filled from DRAM.
    Memory,
}

/// Result of a cache access or prefetch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Cycle at which the line's bytes are usable by fetch.
    pub ready_at: u64,
    /// Where the line came from.
    pub source: FillSource,
    /// Whether a new fill into L1i was initiated (triggers predecode hooks
    /// for Confluence-style prefetchers).
    pub filled_l1i: bool,
}

/// One set-associative tag array (MRU-first true LRU).
///
/// Tags live in a single flat `sets × ways` slab rather than one `Vec` per
/// set: a lookup touches exactly one contiguous stripe (one or two cache
/// lines of host memory) instead of chasing a per-set heap pointer, and LRU
/// promotion is an in-place prefix rotation instead of a `remove` +
/// `insert(0)` pair shifting through a separate allocation. Only the first
/// `lens[set]` slots of each stripe are meaningful.
#[derive(Clone, Debug)]
struct TagArray {
    /// `sets × ways` tag slots; each set's occupied prefix is MRU-first.
    tags: Box<[u64]>,
    /// Occupied slot count per set.
    lens: Box<[u32]>,
    ways: usize,
    mask: u64,
}

impl TagArray {
    fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        TagArray {
            tags: vec![0; sets * geometry.ways].into_boxed_slice(),
            lens: vec![0; sets].into_boxed_slice(),
            ways: geometry.ways,
            mask: sets as u64 - 1,
        }
    }

    #[inline]
    fn set_and_tag(&self, line: CacheLineAddr) -> (usize, u64) {
        let n = line.line_number();
        ((n & self.mask) as usize, n >> self.mask.count_ones())
    }

    /// Hit check with LRU promotion.
    fn access(&mut self, line: CacheLineAddr) -> bool {
        let (set, tag) = self.set_and_tag(line);
        let len = self.lens[set] as usize;
        let ways = &mut self.tags[set * self.ways..][..len];
        match ways.iter().position(|&t| t == tag) {
            Some(pos) => {
                ways[..=pos].rotate_right(1);
                true
            }
            None => false,
        }
    }

    /// Inserts a line, returning the evicted line if any.
    fn fill(&mut self, line: CacheLineAddr) -> Option<CacheLineAddr> {
        let (set, tag) = self.set_and_tag(line);
        let set_bits = self.mask.count_ones();
        let len = self.lens[set] as usize;
        let ways = &mut self.tags[set * self.ways..][..self.ways];
        if let Some(pos) = ways[..len].iter().position(|&t| t == tag) {
            ways[..=pos].rotate_right(1);
            return None;
        }
        if len < self.ways {
            ways[..=len].rotate_right(1);
            ways[0] = tag;
            self.lens[set] = (len + 1) as u32;
            None
        } else {
            let victim = ways[len - 1];
            ways[..len].rotate_right(1);
            ways[0] = tag;
            let n = (victim << set_bits) | set as u64;
            Some(CacheLineAddr::from_line_number(n))
        }
    }

    fn contains(&self, line: CacheLineAddr) -> bool {
        let (set, tag) = self.set_and_tag(line);
        let len = self.lens[set] as usize;
        self.tags[set * self.ways..][..len].contains(&tag)
    }

    /// Structural scan: per-set occupancy within associativity and no
    /// duplicate tags.
    fn check(&self, name: &str) -> Result<(), Fault> {
        self.check_window(name, 0, self.lens.len())
    }

    /// Structural scan of `count` sets starting at `start` (wrapping).
    ///
    /// Large tag arrays (L2/L3) are validated in rotating windows so a
    /// deep scan's cost is bounded regardless of cache size; the caller
    /// advances its cursor between scans for full coverage.
    fn check_window(&self, name: &str, start: usize, count: usize) -> Result<(), Fault> {
        let n = self.lens.len();
        for off in 0..count.min(n) {
            let set = (start + off) % n;
            let len = self.lens[set] as usize;
            if len > self.ways {
                return Err(Fault::new(
                    ViolationKind::IcacheAccounting,
                    format!("{name} set {set}: {len} tags exceed {} ways", self.ways),
                ));
            }
            let ways = &self.tags[set * self.ways..][..len.min(self.ways)];
            for (i, tag) in ways.iter().enumerate() {
                if ways[..i].contains(tag) {
                    return Err(Fault::new(
                        ViolationKind::IcacheAccounting,
                        format!("{name} set {set}: duplicate tag {tag:#x}"),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Counters for the instruction-side hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemoryStats {
    /// Demand accesses (fetch).
    pub demand_accesses: u64,
    /// Demand accesses that missed L1i (including joins of in-flight fills).
    pub demand_misses: u64,
    /// Demand accesses that found an outstanding fill (FDIP success).
    pub demand_joined_inflight: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Prefetch requests that were already resident or in flight.
    pub redundant_prefetches: u64,
    /// Fills from each level.
    pub fills_l2: u64,
    /// Fills from L3.
    pub fills_l3: u64,
    /// Fills from memory.
    pub fills_memory: u64,
}

/// The L1i/L2/L3/memory hierarchy with in-flight fill tracking.
///
/// # Examples
///
/// ```
/// use twig_sim::{MemoryHierarchy, SimConfig};
/// use twig_types::{Addr, CacheLineAddr};
///
/// let mut mem = MemoryHierarchy::new(&SimConfig::default());
/// let line = CacheLineAddr::containing(Addr::new(0x40_0000));
/// let cold = mem.demand(line, 0);
/// assert!(cold.ready_at >= 200); // memory latency
/// let warm = mem.demand(line, cold.ready_at);
/// assert_eq!(warm.ready_at, cold.ready_at + 1); // L1i hit latency
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1i: TagArray,
    l2: TagArray,
    l3: TagArray,
    inflight: FxHashMap<CacheLineAddr, u64>,
    stats: MemoryStats,
    l1i_latency: u64,
    l2_latency: u64,
    l3_latency: u64,
    mem_latency: u64,
    ideal: bool,
    /// Whether fill/eviction events are recorded at all. Only systems
    /// that consume [`BtbSystem::observes_line_events`] callbacks need
    /// them; for everything else the queues would be drained unread, so
    /// the simulator turns recording off.
    ///
    /// [`BtbSystem::observes_line_events`]: crate::BtbSystem::observes_line_events
    track_line_events: bool,
    /// Lines evicted from L1i since the last drain (Confluence invalidates
    /// its line-synced BTB entries from these).
    evicted_l1i: Vec<CacheLineAddr>,
    /// Lines newly filled into L1i since the last drain, with the cycle at
    /// which their bytes arrive.
    filled_l1i: Vec<(CacheLineAddr, u64)>,
    /// Rotating start set for windowed L2/L3 deep scans. Interior
    /// mutability because [`Validator::check`] takes `&self`; the cursor
    /// never influences simulation state, only which window the next
    /// deep scan validates.
    scan_cursor: std::cell::Cell<usize>,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a simulator configuration.
    pub fn new(config: &SimConfig) -> Self {
        MemoryHierarchy {
            l1i: TagArray::new(config.l1i),
            l2: TagArray::new(config.l2),
            l3: TagArray::new(config.l3),
            inflight: FxHashMap::default(),
            stats: MemoryStats::default(),
            l1i_latency: config.l1i_latency,
            l2_latency: config.l2_latency,
            l3_latency: config.l3_latency,
            mem_latency: config.mem_latency,
            ideal: config.ideal_icache,
            track_line_events: true,
            evicted_l1i: Vec::new(),
            filled_l1i: Vec::new(),
            scan_cursor: std::cell::Cell::new(0),
        }
    }

    /// Demand access from the fetch unit.
    pub fn demand(&mut self, line: CacheLineAddr, cycle: u64) -> AccessResult {
        self.stats.demand_accesses += 1;
        if self.ideal {
            return AccessResult {
                ready_at: cycle + self.l1i_latency,
                source: FillSource::L1i,
                filled_l1i: false,
            };
        }
        let result = self.access_inner(line, cycle);
        if result.source != FillSource::L1i {
            self.stats.demand_misses += 1;
        }
        if result.source == FillSource::InFlight {
            self.stats.demand_joined_inflight += 1;
        }
        result
    }

    /// Prefetch request (FDIP or a hardware BTB prefetcher).
    pub fn prefetch(&mut self, line: CacheLineAddr, cycle: u64) -> AccessResult {
        self.stats.prefetches += 1;
        if self.ideal {
            return AccessResult {
                ready_at: cycle,
                source: FillSource::L1i,
                filled_l1i: false,
            };
        }
        // Residency (for the redundant-prefetch counter) falls out of the
        // lookups the access performs anyway; a separate contains() pass
        // would double the tag/MSHR probes on the hottest path in the
        // simulator (FDIP probes every line of every enqueued block).
        let (result, before_resident) = self.access_counted(line, cycle);
        if before_resident {
            self.stats.redundant_prefetches += 1;
        }
        result
    }

    fn access_inner(&mut self, line: CacheLineAddr, cycle: u64) -> AccessResult {
        self.access_counted(line, cycle).0
    }

    /// The shared demand/prefetch access path. The second return is
    /// whether the line was resident (L1i or in flight) before the access.
    fn access_counted(&mut self, line: CacheLineAddr, cycle: u64) -> (AccessResult, bool) {
        // Outstanding fill? A line can be in flight yet already evicted
        // from the L1i tags, so in-flight state alone establishes
        // residency for the caller's accounting.
        let mut resident = false;
        if let Some(&ready) = self.inflight.get(&line) {
            resident = true;
            if ready > cycle {
                return (
                    AccessResult {
                        ready_at: ready,
                        source: FillSource::InFlight,
                        filled_l1i: false,
                    },
                    resident,
                );
            }
            self.inflight.remove(&line);
        }
        if self.l1i.access(line) {
            return (
                AccessResult {
                    ready_at: cycle + self.l1i_latency,
                    source: FillSource::L1i,
                    filled_l1i: false,
                },
                true,
            );
        }
        // Miss: find the line downstream, fill upward.
        let (latency, source) = if self.l2.access(line) {
            self.stats.fills_l2 += 1;
            (self.l2_latency, FillSource::L2)
        } else if self.l3.access(line) {
            self.stats.fills_l3 += 1;
            if let Some(v) = self.l2.fill(line) {
                let _ = v; // L2 eviction is silent for the I-side model
            }
            (self.l3_latency, FillSource::L3)
        } else {
            self.stats.fills_memory += 1;
            self.l3.fill(line);
            self.l2.fill(line);
            (self.mem_latency, FillSource::Memory)
        };
        let victim = self.l1i.fill(line);
        let ready = cycle + latency;
        if self.track_line_events {
            if let Some(victim) = victim {
                self.evicted_l1i.push(victim);
            }
            self.filled_l1i.push((line, ready));
        }
        self.inflight.insert(line, ready);
        (
            AccessResult {
                ready_at: ready,
                source,
                filled_l1i: true,
            },
            resident,
        )
    }

    /// Whether `line` is resident in L1i (possibly still in flight).
    pub fn l1i_contains(&self, line: CacheLineAddr) -> bool {
        self.ideal || self.l1i.contains(line)
    }

    /// Enables or disables fill/eviction event recording (on by default).
    /// The simulator disables it when the attached system does not
    /// consume the callbacks.
    pub fn set_line_event_tracking(&mut self, on: bool) {
        self.track_line_events = on;
    }

    /// Drains the list of lines evicted from L1i since the last call.
    pub fn take_evicted_l1i(&mut self) -> Vec<CacheLineAddr> {
        std::mem::take(&mut self.evicted_l1i)
    }

    /// Drains the list of lines filled into L1i since the last call, each
    /// with the cycle its bytes arrive (predecode cannot start earlier).
    pub fn take_filled_l1i(&mut self) -> Vec<(CacheLineAddr, u64)> {
        std::mem::take(&mut self.filled_l1i)
    }

    /// Access statistics so far.
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Number of fills tracked in the MSHR-like in-flight map. Removal is
    /// lazy (a completed fill's entry is dropped on its next access), so
    /// this is an upper bound on truly outstanding fills.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Whether any fill is still genuinely outstanding at `cycle`
    /// (feeds the livelock watchdog: no retirement *and* no pending fill
    /// means the simulation can never make progress again).
    pub fn has_outstanding_fill(&self, cycle: u64) -> bool {
        self.inflight.values().any(|&ready| ready > cycle)
    }
}

impl Validator for MemoryHierarchy {
    fn component(&self) -> &'static str {
        "icache"
    }

    fn check(&self, deep: bool) -> Result<(), Fault> {
        // MSHR / statistics accounting: joins are a subset of misses, which
        // are a subset of accesses; redundant prefetches never exceed
        // prefetches; fills are bounded by the misses that caused them.
        let s = &self.stats;
        if s.demand_joined_inflight > s.demand_misses || s.demand_misses > s.demand_accesses {
            return Err(Fault::new(
                ViolationKind::IcacheAccounting,
                format!(
                    "demand counters inconsistent: joined {} / misses {} / accesses {}",
                    s.demand_joined_inflight, s.demand_misses, s.demand_accesses
                ),
            ));
        }
        if s.redundant_prefetches > s.prefetches {
            return Err(Fault::new(
                ViolationKind::IcacheAccounting,
                format!(
                    "redundant prefetches {} exceed prefetches {}",
                    s.redundant_prefetches, s.prefetches
                ),
            ));
        }
        let fills = s.fills_l2 + s.fills_l3 + s.fills_memory;
        if fills > s.demand_accesses + s.prefetches {
            return Err(Fault::new(
                ViolationKind::IcacheAccounting,
                format!(
                    "{} fills exceed {} total requests",
                    fills,
                    s.demand_accesses + s.prefetches
                ),
            ));
        }
        if deep {
            // L1i is small — scan it whole. L2/L3 tag stores are large
            // enough that a full walk would dominate the deep scan, so
            // they are validated in rotating windows: bounded cost per
            // scan, full coverage every few deep periods.
            const DEEP_SCAN_SETS: usize = 256;
            self.l1i.check("l1i")?;
            let cursor = self.scan_cursor.get();
            self.l2.check_window("l2", cursor, DEEP_SCAN_SETS)?;
            self.l3.check_window("l3", cursor, DEEP_SCAN_SETS)?;
            self.scan_cursor.set(cursor.wrapping_add(DEEP_SCAN_SETS));
        }
        Ok(())
    }

    fn snapshot(&self) -> String {
        format!(
            "icache stats {:?}, {} in-flight fills, {} pending fill events, \
             {} pending eviction events",
            self.stats,
            self.inflight.len(),
            self.filled_l1i.len(),
            self.evicted_l1i.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twig_types::Addr;

    fn line(v: u64) -> CacheLineAddr {
        CacheLineAddr::containing(Addr::new(v))
    }

    fn mem() -> MemoryHierarchy {
        MemoryHierarchy::new(&SimConfig::default())
    }

    #[test]
    fn cold_miss_pays_memory_latency() {
        let mut m = mem();
        let r = m.demand(line(0x40_0000), 100);
        assert_eq!(r.source, FillSource::Memory);
        assert_eq!(r.ready_at, 300);
        assert!(r.filled_l1i);
    }

    #[test]
    fn second_access_hits_l1i_after_fill() {
        let mut m = mem();
        let r = m.demand(line(0x1000), 0);
        let r2 = m.demand(line(0x1000), r.ready_at + 1);
        assert_eq!(r2.source, FillSource::L1i);
        assert_eq!(r2.ready_at, r.ready_at + 2);
    }

    #[test]
    fn early_second_access_joins_inflight() {
        let mut m = mem();
        let r = m.demand(line(0x1000), 0);
        let r2 = m.demand(line(0x1000), 10);
        assert_eq!(r2.source, FillSource::InFlight);
        assert_eq!(r2.ready_at, r.ready_at);
        assert_eq!(m.stats().demand_joined_inflight, 1);
    }

    #[test]
    fn prefetch_hides_latency_for_demand() {
        let mut m = mem();
        m.prefetch(line(0x2000), 0);
        // Demand arrives after the fill completed: full hit.
        let r = m.demand(line(0x2000), 500);
        assert_eq!(r.source, FillSource::L1i);
        assert_eq!(r.ready_at, 501);
    }

    #[test]
    fn l1i_eviction_falls_back_to_l2() {
        let mut m = mem();
        let config = SimConfig::default();
        let sets = config.l1i.sets() as u64;
        // Fill one L1i set beyond capacity: lines mapping to set 0.
        let ways = config.l1i.ways as u64;
        let mut t = 0u64;
        for i in 0..(ways + 2) {
            let r = m.demand(line(i * sets * 64), t);
            t = r.ready_at + 1;
        }
        // First line was evicted from L1i but lives in L2 now.
        let r = m.demand(line(0), t);
        assert_eq!(r.source, FillSource::L2);
        assert_eq!(r.ready_at, t + config.l2_latency);
        assert!(!m.take_evicted_l1i().is_empty());
    }

    #[test]
    fn ideal_icache_always_ready() {
        let config = SimConfig {
            ideal_icache: true,
            ..SimConfig::default()
        };
        let mut m = MemoryHierarchy::new(&config);
        let r = m.demand(line(0x0999_9000), 42);
        assert_eq!(r.ready_at, 43);
        assert_eq!(m.stats().demand_misses, 0);
    }

    #[test]
    fn redundant_prefetch_is_counted() {
        let mut m = mem();
        m.prefetch(line(0x3000), 0);
        m.prefetch(line(0x3000), 1);
        assert_eq!(m.stats().prefetches, 2);
        assert_eq!(m.stats().redundant_prefetches, 1);
    }

    #[test]
    fn filled_lines_are_reported() {
        let mut m = mem();
        m.demand(line(0x1000), 0);
        m.prefetch(line(0x2000), 0);
        let filled = m.take_filled_l1i();
        assert_eq!(filled.len(), 2);
        assert!(filled.iter().all(|&(_, ready)| ready > 0));
        assert!(m.take_filled_l1i().is_empty());
    }
}
