//! Struct-of-arrays storage for the hot-loop frontend queues.
//!
//! The per-cycle loop in [`crate::core`] used to carry its queues as
//! `VecDeque`s of per-entry structs; profiling the harness on itself
//! (`twig report` over an attribution run) showed the loop spending a
//! noticeable share of its time shuffling those entries and polling
//! structures that were empty for hundreds of consecutive cycles. This
//! module provides the replacement layout:
//!
//! * [`FtqRing`], [`DeliveryRing`], and [`RetireRing`] keep each field of
//!   their entries in its own array, addressed by ring indices — pushing
//!   or popping moves indices, never entry payloads, and the
//!   variable-length list of software-prefetch blocks per FTQ region lives
//!   in one shared pool instead of a heap `Vec` per entry.
//! * [`ActivityMask`] is a bitset summarizing which structures hold work.
//!   The run loop consults it (one AND) instead of polling every queue,
//!   and the integrity layer's deep sweep cross-checks every bit against
//!   the structure it summarizes.
//!
//! # Activity-mask invariants
//!
//! | bit | set when | cleared when |
//! |-----|----------|--------------|
//! | `STREAM` | construction (events may remain) | the block-event stream returns `None` |
//! | `FTQ` | a region is pushed into the FTQ | the last region is popped by fetch |
//! | `DELIVERIES` | fetch issues a region into the decode pipe | the last delivery drains to the retire queue |
//! | `RETIRE` | a delivery lands in the retire queue | the last queued instruction retires |
//!
//! The mask is a pure summary: every transition happens at the same
//! statement that changes the underlying structure, so
//! `mask.contains(bit) == !structure.is_empty()` holds at every cycle
//! boundary (checked by [`FtqRing`]'s users via the deep integrity sweep).

use twig_obs::MissKind;
use twig_types::{BlockId, BranchKind};

/// Where a pending resteer will be detected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ResteerKind {
    /// BTB miss on a taken direct branch or return: decode finds the branch
    /// and redirects.
    Decode,
    /// Direction or indirect-target mispredict: execution redirects.
    Execute,
}

/// A pending resteer plus the static branch that caused it — the
/// attribution profiler charges the stall cycles to `(pc, branch, miss)`
/// when the region issues.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ResteerCause {
    /// Where the redirect is detected (decode vs execute).
    pub kind: ResteerKind,
    /// Static PC of the causing branch.
    pub pc: u64,
    /// Branch kind at that PC.
    pub branch: BranchKind,
    /// Attribution taxonomy label.
    pub miss: MissKind,
}

/// One fetch region as built by the BPU, minus its software-prefetch
/// blocks (those are staged separately and copied into the FTQ pool).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Region {
    /// Original program instructions across the region's blocks.
    pub instrs: u32,
    /// Injected prefetch ops across the region's blocks.
    pub ops: u32,
    /// First I-cache line of the region (`u64::MAX` = consumed no block).
    pub first_line: u64,
    /// Last I-cache line of the region.
    pub last_line: u64,
    /// Pending resteer carried by the region's terminating branch.
    pub resteer: Option<ResteerCause>,
}

/// A region handed to fetch: the scalar fields plus the span of its
/// software-prefetch blocks in the FTQ's shared pool. The span stays
/// readable (via [`FtqRing::pool_block`]) until the next push.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IssuedRegion {
    /// Original program instructions.
    pub instrs: u32,
    /// Injected prefetch ops.
    pub ops: u32,
    /// Pending resteer, if any.
    pub resteer: Option<ResteerCause>,
    /// Start of the ops-block span in the shared pool.
    pub ops_start: u32,
    /// Number of ops blocks in the span.
    pub ops_len: u32,
}

/// Activity bits for [`ActivityMask`].
pub(crate) mod activity {
    /// Block events may remain in the trace.
    pub const STREAM: u8 = 1 << 0;
    /// The FTQ holds at least one region.
    pub const FTQ: u8 = 1 << 1;
    /// The decode pipe holds at least one delivery.
    pub const DELIVERIES: u8 = 1 << 2;
    /// The retire queue holds at least one instruction group.
    pub const RETIRE: u8 = 1 << 3;
}

/// Which hot-loop structures currently hold work (see the module docs for
/// the set/clear discipline of each bit).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ActivityMask(u8);

impl ActivityMask {
    /// A fresh mask: the stream is live, every queue is empty.
    pub fn new() -> Self {
        ActivityMask(activity::STREAM)
    }

    /// Sets `bit`.
    #[inline]
    pub fn set(&mut self, bit: u8) {
        self.0 |= bit;
    }

    /// Clears `bit`.
    #[inline]
    pub fn clear(&mut self, bit: u8) {
        self.0 &= !bit;
    }

    /// Whether `bit` is set.
    #[inline]
    pub fn contains(self, bit: u8) -> bool {
        self.0 & bit != 0
    }

    /// Whether every structure is drained and the stream is exhausted —
    /// the run-loop termination condition.
    #[inline]
    pub fn all_idle(self) -> bool {
        self.0 == 0
    }
}

/// The FTQ as a fixed-capacity SoA ring. Each region's scalar fields live
/// in per-field arrays; the variable-length ops-block lists live in one
/// shared pool addressed by `(start, len)` spans.
pub(crate) struct FtqRing {
    cap: usize,
    head: usize,
    len: usize,
    instrs: Box<[u32]>,
    ops: Box<[u32]>,
    first_line: Box<[u64]>,
    last_line: Box<[u64]>,
    resteer: Box<[Option<ResteerCause>]>,
    ops_span: Box<[(u32, u32)]>,
    ops_pool: Vec<BlockId>,
    /// Pool prefix already released by pops (reclaimed lazily).
    pool_head: usize,
}

/// Reclaim the released pool prefix once it exceeds this many entries even
/// if the FTQ never fully drains (long low-MPKI stretches).
const POOL_COMPACT_THRESHOLD: usize = 1024;

impl FtqRing {
    /// An empty FTQ holding up to `cap` regions.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "FTQ capacity must be positive");
        FtqRing {
            cap,
            head: 0,
            len: 0,
            instrs: vec![0; cap].into_boxed_slice(),
            ops: vec![0; cap].into_boxed_slice(),
            first_line: vec![0; cap].into_boxed_slice(),
            last_line: vec![0; cap].into_boxed_slice(),
            resteer: vec![None; cap].into_boxed_slice(),
            ops_span: vec![(0, 0); cap].into_boxed_slice(),
            ops_pool: Vec::new(),
            pool_head: 0,
        }
    }

    /// Occupied regions.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no region.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ring is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len >= self.cap
    }

    #[inline]
    fn slot(&self, index: usize) -> usize {
        let i = self.head + index;
        if i >= self.cap {
            i - self.cap
        } else {
            i
        }
    }

    /// Pushes a region, copying its ops blocks into the shared pool.
    ///
    /// # Panics
    ///
    /// Panics if the ring is full.
    pub fn push(&mut self, region: Region, ops_blocks: &[BlockId]) {
        assert!(!self.is_full(), "FTQ push beyond capacity");
        if self.len == 0 {
            // No live span can reference the pool: reclaim it wholesale.
            self.ops_pool.clear();
            self.pool_head = 0;
        } else if self.pool_head >= POOL_COMPACT_THRESHOLD {
            self.compact_pool();
        }
        let start = self.ops_pool.len() as u32;
        self.ops_pool.extend_from_slice(ops_blocks);
        let slot = self.slot(self.len);
        self.instrs[slot] = region.instrs;
        self.ops[slot] = region.ops;
        self.first_line[slot] = region.first_line;
        self.last_line[slot] = region.last_line;
        self.resteer[slot] = region.resteer;
        self.ops_span[slot] = (start, ops_blocks.len() as u32);
        self.len += 1;
    }

    /// Drops the consumed pool prefix and rebases the live spans.
    fn compact_pool(&mut self) {
        let shift = self.pool_head as u32;
        self.ops_pool.drain(..self.pool_head);
        self.pool_head = 0;
        for i in 0..self.len {
            let slot = self.slot(i);
            self.ops_span[slot].0 -= shift;
        }
    }

    /// The head region's `(first_line, last_line)` for the I-cache probe.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn head_lines(&self) -> (u64, u64) {
        assert!(self.len > 0, "head_lines on empty FTQ");
        (self.first_line[self.head], self.last_line[self.head])
    }

    /// Pops the head region. Its ops-block span remains readable through
    /// [`Self::pool_block`] until the next push.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn pop_front(&mut self) -> IssuedRegion {
        assert!(self.len > 0, "pop_front on empty FTQ");
        let slot = self.head;
        let (start, count) = self.ops_span[slot];
        let issued = IssuedRegion {
            instrs: self.instrs[slot],
            ops: self.ops[slot],
            resteer: self.resteer[slot],
            ops_start: start,
            ops_len: count,
        };
        self.head = self.slot(1);
        self.len -= 1;
        self.pool_head = (start + count) as usize;
        issued
    }

    /// Reads one block of a popped region's ops span.
    #[inline]
    pub fn pool_block(&self, start: u32, index: u32) -> BlockId {
        self.ops_pool[(start + index) as usize]
    }

    /// Iterates the live regions oldest-first (integrity sweeps, dumps).
    pub fn iter(&self) -> impl Iterator<Item = FtqView<'_>> + '_ {
        (0..self.len).map(move |i| {
            let slot = self.slot(i);
            let (start, count) = self.ops_span[slot];
            FtqView {
                instrs: self.instrs[slot],
                ops: self.ops[slot],
                first_line: self.first_line[slot],
                last_line: self.last_line[slot],
                resteer: self.resteer[slot],
                ops_blocks: &self.ops_pool[start as usize..(start + count) as usize],
            }
        })
    }
}

impl std::fmt::Debug for FtqRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// A borrowed view of one FTQ region (integrity sweeps and forensic dumps).
// Some fields are only ever read through the derived `Debug` impl (the
// forensic dump formatter), which dead-code analysis ignores.
#[allow(dead_code)]
#[derive(Debug)]
pub(crate) struct FtqView<'a> {
    /// Original program instructions.
    pub instrs: u32,
    /// Injected prefetch ops.
    pub ops: u32,
    /// First I-cache line (`u64::MAX` = consumed no block).
    pub first_line: u64,
    /// Last I-cache line.
    pub last_line: u64,
    /// Pending resteer.
    pub resteer: Option<ResteerCause>,
    /// Blocks carrying software prefetch ops.
    pub ops_blocks: &'a [BlockId],
}

/// Grows a power-of-two ring capacity.
fn grown(cap: usize) -> usize {
    (cap * 2).max(64)
}

/// The decode pipe as a growable SoA ring: regions fetched but not yet
/// decoded, ordered by (monotone) decode-completion cycle.
pub(crate) struct DeliveryRing {
    ready_at: Vec<u64>,
    instrs: Vec<u32>,
    ops: Vec<u32>,
    head: usize,
    len: usize,
}

impl DeliveryRing {
    /// An empty ring.
    pub fn new() -> Self {
        DeliveryRing {
            ready_at: Vec::new(),
            instrs: Vec::new(),
            ops: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// In-flight deliveries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the decode pipe is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grow(&mut self) {
        let new_cap = grown(self.ready_at.len());
        let mut ready_at = Vec::with_capacity(new_cap);
        let mut instrs = Vec::with_capacity(new_cap);
        let mut ops = Vec::with_capacity(new_cap);
        for i in 0..self.len {
            let slot = (self.head + i) & (self.ready_at.len() - 1);
            ready_at.push(self.ready_at[slot]);
            instrs.push(self.instrs[slot]);
            ops.push(self.ops[slot]);
        }
        ready_at.resize(new_cap, 0);
        instrs.resize(new_cap, 0);
        ops.resize(new_cap, 0);
        self.ready_at = ready_at;
        self.instrs = instrs;
        self.ops = ops;
        self.head = 0;
    }

    /// Appends a delivery completing at `ready_at`.
    pub fn push_back(&mut self, ready_at: u64, instrs: u32, ops: u32) {
        if self.len == self.ready_at.len() {
            self.grow();
        }
        let slot = (self.head + self.len) & (self.ready_at.len() - 1);
        self.ready_at[slot] = ready_at;
        self.instrs[slot] = instrs;
        self.ops[slot] = ops;
        self.len += 1;
    }

    /// The head delivery's completion cycle, if any.
    #[inline]
    pub fn front_ready(&self) -> Option<u64> {
        if self.len == 0 {
            None
        } else {
            Some(self.ready_at[self.head])
        }
    }

    /// Pops the head delivery as `(instrs, ops)`.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn pop_front(&mut self) -> (u32, u32) {
        assert!(self.len > 0, "pop_front on empty delivery ring");
        let slot = self.head;
        self.head = (self.head + 1) & (self.ready_at.len() - 1);
        self.len -= 1;
        (self.instrs[slot], self.ops[slot])
    }

    /// Iterates `(ready_at, instrs, ops)` oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32, u32)> + '_ {
        (0..self.len).map(move |i| {
            let slot = (self.head + i) & (self.ready_at.len() - 1);
            (self.ready_at[slot], self.instrs[slot], self.ops[slot])
        })
    }
}

impl std::fmt::Debug for DeliveryRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.iter().map(|(ready_at, instrs, ops)| {
                format!("Delivery {{ ready_at: {ready_at}, instrs: {instrs}, ops: {ops} }}")
            }))
            .finish()
    }
}

/// The retire queue as a growable SoA ring: decoded `(original, ops)`
/// instruction groups waiting to drain at the retire width.
pub(crate) struct RetireRing {
    orig: Vec<u32>,
    ops: Vec<u32>,
    head: usize,
    len: usize,
}

impl RetireRing {
    /// An empty ring.
    pub fn new() -> Self {
        RetireRing {
            orig: Vec::new(),
            ops: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// Queued groups.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grow(&mut self) {
        let new_cap = grown(self.orig.len());
        let mut orig = Vec::with_capacity(new_cap);
        let mut ops = Vec::with_capacity(new_cap);
        for i in 0..self.len {
            let slot = (self.head + i) & (self.orig.len() - 1);
            orig.push(self.orig[slot]);
            ops.push(self.ops[slot]);
        }
        orig.resize(new_cap, 0);
        ops.resize(new_cap, 0);
        self.orig = orig;
        self.ops = ops;
        self.head = 0;
    }

    /// Appends a decoded group.
    pub fn push_back(&mut self, orig: u32, ops: u32) {
        if self.len == self.orig.len() {
            self.grow();
        }
        let slot = (self.head + self.len) & (self.orig.len() - 1);
        self.orig[slot] = orig;
        self.ops[slot] = ops;
        self.len += 1;
    }

    /// Mutable access to the head group as `(&mut orig, &mut ops)`.
    #[inline]
    pub fn front_mut(&mut self) -> Option<(&mut u32, &mut u32)> {
        if self.len == 0 {
            None
        } else {
            let slot = self.head;
            Some((&mut self.orig[slot], &mut self.ops[slot]))
        }
    }

    /// Drops the (exhausted) head group.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn pop_front(&mut self) {
        assert!(self.len > 0, "pop_front on empty retire ring");
        self.head = (self.head + 1) & (self.orig.len() - 1);
        self.len -= 1;
    }

    /// Iterates `(orig, ops)` oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.len).map(move |i| {
            let slot = (self.head + i) & (self.orig.len() - 1);
            (self.orig[slot], self.ops[slot])
        })
    }
}

impl std::fmt::Debug for RetireRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(instrs: u32) -> Region {
        Region {
            instrs,
            ops: 0,
            first_line: 1,
            last_line: 2,
            resteer: None,
        }
    }

    #[test]
    fn ftq_ring_wraps_and_tracks_spans() {
        let mut ftq = FtqRing::new(3);
        for round in 0..10u32 {
            let blocks = [BlockId::new(round), BlockId::new(round + 100)];
            ftq.push(region(round), &blocks);
            assert_eq!(ftq.len(), 1);
            let popped = ftq.pop_front();
            assert_eq!(popped.instrs, round);
            assert_eq!(popped.ops_len, 2);
            assert_eq!(ftq.pool_block(popped.ops_start, 0), BlockId::new(round));
            assert_eq!(
                ftq.pool_block(popped.ops_start, 1),
                BlockId::new(round + 100)
            );
        }
        assert!(ftq.is_empty());
    }

    #[test]
    fn ftq_pool_reclaims_when_drained() {
        let mut ftq = FtqRing::new(2);
        ftq.push(region(1), &[BlockId::new(7)]);
        let _ = ftq.pop_front();
        // Next push after a full drain resets the pool.
        ftq.push(region(2), &[BlockId::new(8)]);
        let popped = ftq.pop_front();
        assert_eq!(popped.ops_start, 0);
        assert_eq!(ftq.pool_block(popped.ops_start, 0), BlockId::new(8));
    }

    #[test]
    fn ftq_pool_compacts_without_draining() {
        let mut ftq = FtqRing::new(2);
        let blocks: Vec<BlockId> = (0..64).map(BlockId::new).collect();
        // Keep one region live at all times so the full-drain reset never
        // fires; the threshold compaction must kick in instead.
        ftq.push(region(0), &blocks);
        for i in 1..100u32 {
            ftq.push(region(i), &blocks);
            let popped = ftq.pop_front();
            assert_eq!(popped.instrs, i - 1);
            assert_eq!(popped.ops_len, 64);
            assert_eq!(ftq.pool_block(popped.ops_start, 63), BlockId::new(63));
        }
        assert!(
            ftq.ops_pool.len() < 4 * POOL_COMPACT_THRESHOLD,
            "pool failed to compact: {} entries",
            ftq.ops_pool.len()
        );
    }

    #[test]
    fn ftq_iter_reports_live_entries_in_order() {
        let mut ftq = FtqRing::new(4);
        ftq.push(region(1), &[]);
        ftq.push(region(2), &[BlockId::new(9)]);
        let views: Vec<u32> = ftq.iter().map(|v| v.instrs).collect();
        assert_eq!(views, vec![1, 2]);
        assert_eq!(ftq.iter().nth(1).unwrap().ops_blocks, &[BlockId::new(9)]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn ftq_push_beyond_capacity_panics() {
        let mut ftq = FtqRing::new(1);
        ftq.push(region(1), &[]);
        ftq.push(region(2), &[]);
    }

    #[test]
    fn delivery_ring_grows_preserving_order() {
        let mut ring = DeliveryRing::new();
        for i in 0..200u64 {
            ring.push_back(i, i as u32, 0);
        }
        // Interleave pops to force a wrapped grow.
        for i in 0..100u64 {
            assert_eq!(ring.front_ready(), Some(i));
            assert_eq!(ring.pop_front(), (i as u32, 0));
        }
        for i in 200..400u64 {
            ring.push_back(i, i as u32, 0);
        }
        for i in 100..400u64 {
            assert_eq!(ring.pop_front(), (i as u32, 0));
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn retire_ring_front_mut_and_pop() {
        let mut ring = RetireRing::new();
        ring.push_back(5, 2);
        ring.push_back(7, 0);
        {
            let (orig, ops) = ring.front_mut().unwrap();
            *ops = 0;
            *orig = 0;
        }
        ring.pop_front();
        assert_eq!(ring.iter().collect::<Vec<_>>(), vec![(7, 0)]);
    }

    #[test]
    fn activity_mask_set_clear() {
        let mut mask = ActivityMask::new();
        assert!(mask.contains(activity::STREAM));
        assert!(!mask.all_idle());
        mask.set(activity::FTQ);
        mask.set(activity::RETIRE);
        mask.clear(activity::STREAM);
        assert!(mask.contains(activity::FTQ));
        assert!(!mask.all_idle());
        mask.clear(activity::FTQ);
        mask.clear(activity::RETIRE);
        assert!(mask.all_idle());
    }
}
