//! Bridge between the simulator core and the `twig-obs` observability
//! layer.
//!
//! [`ObsState`] is the per-simulation recording state: the metrics
//! registry with pre-registered hot-loop histogram handles, and (at the
//! `trace` tier) the sampled span ring. It lives behind an
//! `Option<Box<ObsState>>` on the simulator so the `off` tier costs one
//! never-taken branch per cycle and zero bytes of state — the same
//! zero-cost discipline as the integrity layer.
//!
//! The canonical run statistics remain the plain [`SimStats`] fields
//! (that *is* the allocation-free hot path, and the figure pipeline
//! reads it unchanged); [`ObsState::mirror_stats`] projects them into
//! the registry at end of run so the exported metrics snapshot is a
//! strict superset of the legacy stats. A unit test in the integration
//! suite pins that equivalence.

use twig_obs::{AttrTable, HistId, MetricsRegistry, MetricsSnapshot, ObsConfig, TraceRing};
use twig_types::BranchKind;

use crate::icache::MemoryStats;
use crate::stats::SimStats;

/// Live observability state of one simulation (absent at the `off` tier).
#[derive(Debug)]
pub struct ObsState {
    /// The registry all components record into.
    pub registry: MetricsRegistry,
    /// The sampled span ring (`trace` tier only).
    pub ring: Option<TraceRing>,
    /// The per-branch cycle attribution table (`TWIG_OBS_ATTR` only).
    pub attr: Option<AttrTable>,
    /// Per-cycle FTQ occupancy histogram.
    pub ftq_occupancy: HistId,
    /// Per-cycle ROB occupancy histogram.
    pub rob_occupancy: HistId,
    /// Instructions (original + injected ops) per issued fetch region.
    pub fetch_region_instrs: HistId,
    /// BPU stall cycles charged per resteer.
    pub resteer_penalty: HistId,
}

impl ObsState {
    /// Builds the recording state for `config`, or `None` when nothing
    /// records (neither the counters tier nor attribution is enabled).
    pub fn from_config(config: &ObsConfig) -> Option<Box<ObsState>> {
        if !config.recording() {
            return None;
        }
        let mut registry = MetricsRegistry::new();
        let ftq_occupancy = registry.histogram("frontend.ftq_occupancy");
        let rob_occupancy = registry.histogram("frontend.rob_occupancy");
        let fetch_region_instrs = registry.histogram("frontend.fetch_region_instrs");
        let resteer_penalty = registry.histogram("frontend.resteer_penalty");
        let ring = config
            .level
            .trace_sample()
            .map(|sample| TraceRing::new(config.trace_capacity, sample));
        let attr = config.attr.enabled.then(|| AttrTable::new(&config.attr));
        Some(Box::new(ObsState {
            registry,
            ring,
            attr,
            ftq_occupancy,
            rob_occupancy,
            fetch_region_instrs,
            resteer_penalty,
        }))
    }

    /// Mirrors the observability layer's own bookkeeping into the
    /// registry at end of run: trace-ring truncation
    /// (`obs.trace.dropped_spans`) and attribution totals
    /// (`obs.attr.*`), so the snapshot reports them alongside the
    /// simulation counters.
    pub fn mirror_internal(&mut self) {
        if let Some(dropped) = self.ring.as_ref().map(TraceRing::dropped_spans) {
            self.registry.set_by_name("obs.trace.dropped_spans", dropped);
        }
        if let Some((events, cycles, keys)) = self
            .attr
            .as_ref()
            .map(|t| (t.total_events(), t.total_cycles(), t.len() as u64))
        {
            self.registry.set_by_name("obs.attr.total_events", events);
            self.registry.set_by_name("obs.attr.total_cycles", cycles);
            self.registry.set_by_name("obs.attr.tracked_keys", keys);
        }
    }

    /// Projects the canonical run statistics into the registry (the
    /// compatibility view: every legacy stat appears as a counter).
    pub fn mirror_stats(&mut self, stats: &SimStats, mem: &MemoryStats) {
        let reg = &mut self.registry;
        reg.set_by_name("sim.cycles", stats.cycles);
        reg.set_by_name("sim.retired_instructions", stats.retired_instructions);
        reg.set_by_name("sim.retired_prefetch_ops", stats.retired_prefetch_ops);
        for kind in BranchKind::ALL {
            let i = kind.index();
            let m = kind.mnemonic();
            reg.set_by_name(&format!("btb.accesses.{m}"), stats.btb_accesses[i]);
            reg.set_by_name(&format!("btb.misses.{m}"), stats.btb_misses[i]);
            reg.set_by_name(&format!("btb.covered.{m}"), stats.covered_misses[i]);
        }
        reg.set_by_name("btb.accesses.total", stats.total_btb_accesses());
        reg.set_by_name("btb.misses.total", stats.total_btb_misses());
        reg.set_by_name("btb.covered.total", stats.total_covered_misses());
        reg.set_by_name("frontend.decode_resteers", stats.decode_resteers);
        reg.set_by_name("frontend.exec_resteers", stats.exec_resteers);
        reg.set_by_name("bpu.conditional_executed", stats.conditional_executed);
        reg.set_by_name("bpu.direction_mispredicts", stats.direction_mispredicts);
        reg.set_by_name("bpu.indirect_mispredicts", stats.indirect_mispredicts);
        reg.set_by_name("bpu.return_mispredicts", stats.return_mispredicts);
        reg.set_by_name("topdown.retiring", stats.topdown.retiring);
        reg.set_by_name("topdown.frontend_bound", stats.topdown.frontend_bound);
        reg.set_by_name("topdown.bad_speculation", stats.topdown.bad_speculation);
        reg.set_by_name("topdown.backend_bound", stats.topdown.backend_bound);
        reg.set_by_name("prefetch_buffer.inserted", stats.prefetch_buffer.inserted);
        reg.set_by_name("prefetch_buffer.used", stats.prefetch_buffer.used);
        reg.set_by_name(
            "prefetch_buffer.evicted_unused",
            stats.prefetch_buffer.evicted_unused,
        );
        reg.set_by_name("prefetch_buffer.late", stats.prefetch_buffer.late);
        reg.set_by_name("icache.demand_accesses", mem.demand_accesses);
        reg.set_by_name("icache.demand_misses", mem.demand_misses);
        reg.set_by_name("icache.demand_joined_inflight", mem.demand_joined_inflight);
        reg.set_by_name("icache.prefetches", mem.prefetches);
        reg.set_by_name("icache.redundant_prefetches", mem.redundant_prefetches);
        reg.set_by_name("mem.fills_l2", mem.fills_l2);
        reg.set_by_name("mem.fills_l3", mem.fills_l3);
        reg.set_by_name("mem.fills_memory", mem.fills_memory);
    }

    /// Freezes the registry into its deterministic serialized form.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tier_allocates_nothing() {
        assert!(ObsState::from_config(&ObsConfig::off()).is_none());
    }

    #[test]
    fn counters_tier_has_no_ring() {
        let state = ObsState::from_config(&ObsConfig::counters()).unwrap();
        assert!(state.ring.is_none());
    }

    #[test]
    fn trace_tier_has_a_ring() {
        let state = ObsState::from_config(&ObsConfig::trace(8)).unwrap();
        assert!(state.ring.is_some());
        assert!(state.attr.is_none());
    }

    #[test]
    fn attr_alone_creates_recording_state() {
        let config = ObsConfig::off().with_attr(twig_obs::AttrConfig::on());
        let state = ObsState::from_config(&config).unwrap();
        assert!(state.ring.is_none());
        assert!(state.attr.is_some());
    }

    #[test]
    fn internal_mirror_reports_attr_totals_and_dropped_spans() {
        let config = ObsConfig::trace(1).with_attr(twig_obs::AttrConfig::on());
        let mut state = ObsState::from_config(&config).unwrap();
        state.attr.as_mut().unwrap().record(
            0x40,
            BranchKind::Conditional,
            twig_obs::MissKind::Direction,
            12,
        );
        state.mirror_internal();
        let snap = state.snapshot();
        assert_eq!(snap.counter("obs.attr.total_events"), Some(1));
        assert_eq!(snap.counter("obs.attr.total_cycles"), Some(12));
        assert_eq!(snap.counter("obs.attr.tracked_keys"), Some(1));
        assert_eq!(snap.counter("obs.trace.dropped_spans"), Some(0));
    }

    #[test]
    fn mirror_covers_every_stat_field() {
        let mut state = ObsState::from_config(&ObsConfig::counters()).unwrap();
        let mut stats = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        stats.btb_misses[BranchKind::Return.index()] = 3;
        stats.topdown.retiring = 7;
        let mem = MemoryStats {
            demand_accesses: 5,
            ..MemoryStats::default()
        };
        state.mirror_stats(&stats, &mem);
        let snap = state.snapshot();
        assert_eq!(snap.counter("sim.cycles"), Some(10));
        assert_eq!(snap.counter("btb.misses.ret"), Some(3));
        assert_eq!(snap.counter("btb.misses.total"), Some(3));
        assert_eq!(snap.counter("topdown.retiring"), Some(7));
        assert_eq!(snap.counter("icache.demand_accesses"), Some(5));
    }
}
