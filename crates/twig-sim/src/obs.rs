//! Bridge between the simulator core and the `twig-obs` observability
//! layer.
//!
//! [`ObsState`] is the per-simulation recording state: the metrics
//! registry with pre-registered hot-loop histogram handles, and (at the
//! `trace` tier) the sampled span ring. It lives behind an
//! `Option<Box<ObsState>>` on the simulator so the `off` tier costs one
//! never-taken branch per cycle and zero bytes of state — the same
//! zero-cost discipline as the integrity layer.
//!
//! The canonical run statistics remain the plain [`SimStats`] fields
//! (that *is* the allocation-free hot path, and the figure pipeline
//! reads it unchanged); [`ObsState::mirror_stats`] projects them into
//! the registry at end of run so the exported metrics snapshot is a
//! strict superset of the legacy stats. A unit test in the integration
//! suite pins that equivalence.

use twig_obs::timeseries::{track_names, TimeSeriesRing, TimelineSnapshot, TrackKind};
use twig_obs::{
    AttrTable, HistId, MetricsRegistry, MetricsSnapshot, ObsConfig, TraceRing,
    DEFAULT_TIMELINE_CAPACITY,
};
use twig_types::BranchKind;

use crate::icache::MemoryStats;
use crate::stats::SimStats;

/// Live observability state of one simulation (absent at the `off` tier).
#[derive(Debug)]
pub struct ObsState {
    /// The registry all components record into.
    pub registry: MetricsRegistry,
    /// The sampled span ring (`trace` tier only).
    pub ring: Option<TraceRing>,
    /// The per-branch cycle attribution table (`TWIG_OBS_ATTR` only).
    pub attr: Option<AttrTable>,
    /// Per-cycle FTQ occupancy histogram.
    pub ftq_occupancy: HistId,
    /// Per-cycle ROB occupancy histogram.
    pub rob_occupancy: HistId,
    /// Instructions (original + injected ops) per issued fetch region.
    pub fetch_region_instrs: HistId,
    /// BPU stall cycles charged per resteer.
    pub resteer_penalty: HistId,
}

impl ObsState {
    /// Builds the recording state for `config`, or `None` when nothing
    /// records (neither the counters tier nor attribution is enabled).
    pub fn from_config(config: &ObsConfig) -> Option<Box<ObsState>> {
        if !config.recording() {
            return None;
        }
        let mut registry = MetricsRegistry::new();
        let ftq_occupancy = registry.histogram("frontend.ftq_occupancy");
        let rob_occupancy = registry.histogram("frontend.rob_occupancy");
        let fetch_region_instrs = registry.histogram("frontend.fetch_region_instrs");
        let resteer_penalty = registry.histogram("frontend.resteer_penalty");
        let ring = config
            .level
            .trace_sample()
            .map(|sample| TraceRing::new(config.trace_capacity, sample));
        let attr = config.attr.enabled.then(|| AttrTable::new(&config.attr));
        Some(Box::new(ObsState {
            registry,
            ring,
            attr,
            ftq_occupancy,
            rob_occupancy,
            fetch_region_instrs,
            resteer_penalty,
        }))
    }

    /// Mirrors the observability layer's own bookkeeping into the
    /// registry at end of run: trace-ring truncation
    /// (`obs.trace.dropped_spans`) and attribution totals
    /// (`obs.attr.*`), so the snapshot reports them alongside the
    /// simulation counters.
    pub fn mirror_internal(&mut self) {
        if let Some(dropped) = self.ring.as_ref().map(TraceRing::dropped_spans) {
            self.registry.set_by_name("obs.trace.dropped_spans", dropped);
        }
        if let Some((events, cycles, keys)) = self
            .attr
            .as_ref()
            .map(|t| (t.total_events(), t.total_cycles(), t.len() as u64))
        {
            self.registry.set_by_name("obs.attr.total_events", events);
            self.registry.set_by_name("obs.attr.total_cycles", cycles);
            self.registry.set_by_name("obs.attr.tracked_keys", keys);
        }
    }

    /// Projects the canonical run statistics into the registry (the
    /// compatibility view: every legacy stat appears as a counter).
    pub fn mirror_stats(&mut self, stats: &SimStats, mem: &MemoryStats) {
        let reg = &mut self.registry;
        reg.set_by_name("sim.cycles", stats.cycles);
        reg.set_by_name("sim.retired_instructions", stats.retired_instructions);
        reg.set_by_name("sim.retired_prefetch_ops", stats.retired_prefetch_ops);
        for kind in BranchKind::ALL {
            let i = kind.index();
            let m = kind.mnemonic();
            reg.set_by_name(&format!("btb.accesses.{m}"), stats.btb_accesses[i]);
            reg.set_by_name(&format!("btb.misses.{m}"), stats.btb_misses[i]);
            reg.set_by_name(&format!("btb.covered.{m}"), stats.covered_misses[i]);
        }
        reg.set_by_name("btb.accesses.total", stats.total_btb_accesses());
        reg.set_by_name("btb.misses.total", stats.total_btb_misses());
        reg.set_by_name("btb.covered.total", stats.total_covered_misses());
        reg.set_by_name("frontend.decode_resteers", stats.decode_resteers);
        reg.set_by_name("frontend.exec_resteers", stats.exec_resteers);
        reg.set_by_name("bpu.conditional_executed", stats.conditional_executed);
        reg.set_by_name("bpu.direction_mispredicts", stats.direction_mispredicts);
        reg.set_by_name("bpu.indirect_mispredicts", stats.indirect_mispredicts);
        reg.set_by_name("bpu.return_mispredicts", stats.return_mispredicts);
        reg.set_by_name("topdown.retiring", stats.topdown.retiring);
        reg.set_by_name("topdown.frontend_bound", stats.topdown.frontend_bound);
        reg.set_by_name("topdown.bad_speculation", stats.topdown.bad_speculation);
        reg.set_by_name("topdown.backend_bound", stats.topdown.backend_bound);
        reg.set_by_name("prefetch_buffer.inserted", stats.prefetch_buffer.inserted);
        reg.set_by_name("prefetch_buffer.used", stats.prefetch_buffer.used);
        reg.set_by_name(
            "prefetch_buffer.evicted_unused",
            stats.prefetch_buffer.evicted_unused,
        );
        reg.set_by_name("prefetch_buffer.late", stats.prefetch_buffer.late);
        reg.set_by_name("icache.demand_accesses", mem.demand_accesses);
        reg.set_by_name("icache.demand_misses", mem.demand_misses);
        reg.set_by_name("icache.demand_joined_inflight", mem.demand_joined_inflight);
        reg.set_by_name("icache.prefetches", mem.prefetches);
        reg.set_by_name("icache.redundant_prefetches", mem.redundant_prefetches);
        reg.set_by_name("mem.fills_l2", mem.fills_l2);
        reg.set_by_name("mem.fills_l3", mem.fills_l3);
        reg.set_by_name("mem.fills_memory", mem.fills_memory);
    }

    /// Freezes the registry into its deterministic serialized form.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// The fixed track set the simulator's timeline samples, in
/// registration order ([`TimelineState::sample`] must match). All
/// monotone cumulative counters, so every window delta-encodes cleanly
/// and the conservation check is exact.
const TIMELINE_TRACKS: [(&str, TrackKind); 10] = [
    (track_names::CYCLES, TrackKind::Counter),
    (track_names::INSTRUCTIONS, TrackKind::Counter),
    ("sim.retired_prefetch_ops", TrackKind::Counter),
    ("btb.accesses.total", TrackKind::Counter),
    (track_names::BTB_MISSES, TrackKind::Counter),
    (track_names::BTB_COVERED, TrackKind::Counter),
    (track_names::DECODE_RESTEERS, TrackKind::Counter),
    (track_names::EXEC_RESTEERS, TrackKind::Counter),
    ("topdown.frontend_bound", TrackKind::Counter),
    ("topdown.bad_speculation", TrackKind::Counter),
];

/// Windowed time-series recording state (`TWIG_OBS_WINDOW`), *separate*
/// from [`ObsState`] on purpose: windowing only reads the live
/// [`SimStats`], never mutates simulation state, so `window=N` alone
/// keeps batched idle-cycle stepping enabled and the simulation results
/// bit-identical — unlike the counters/trace tiers, whose per-cycle
/// recording disables batching.
///
/// Window boundaries are closed-form: a window closes at the retire
/// event that carries the cumulative retired-instruction count across
/// the next `k · window` boundary. Batched stepping only leaps cycles
/// in which nothing retires, so leapt spans always fall strictly inside
/// the currently open window and boundary attribution is exact; a
/// retire burst that crosses several boundaries closes them all at the
/// same cycle (the later ones with zero deltas). The end-of-run flush
/// cross-validates the whole construction (see [`TimelineState::flush`]).
#[derive(Debug)]
pub struct TimelineState {
    window: u64,
    next_boundary: u64,
    ring: TimeSeriesRing,
}

impl TimelineState {
    /// Builds the windowing state for `config`, or `None` when
    /// `TWIG_OBS_WINDOW` is off.
    pub fn from_config(config: &ObsConfig) -> Option<Box<TimelineState>> {
        let window = config.window?.max(1);
        let mut ring = TimeSeriesRing::new(DEFAULT_TIMELINE_CAPACITY);
        for (name, kind) in TIMELINE_TRACKS {
            ring.track(name, kind);
        }
        Some(Box::new(TimelineState {
            window,
            next_boundary: window,
            ring,
        }))
    }

    /// Current cumulative value of every track, in [`TIMELINE_TRACKS`]
    /// order. `cycles` is passed separately because `stats.cycles` is
    /// only assigned at end of run.
    fn sample(stats: &SimStats, cycles: u64) -> [u64; TIMELINE_TRACKS.len()] {
        [
            cycles,
            stats.retired_instructions,
            stats.retired_prefetch_ops,
            stats.total_btb_accesses(),
            stats.total_btb_misses(),
            stats.total_covered_misses(),
            stats.decode_resteers,
            stats.exec_resteers,
            stats.topdown.frontend_bound,
            stats.topdown.bad_speculation,
        ]
    }

    /// Drives the closed-form boundary walk from the retire path: called
    /// once per cycle that retires instructions, after the stats have
    /// been bumped. Allocation-free; when no boundary is crossed this is
    /// one compare.
    #[inline]
    pub fn on_retire(&mut self, cycle: u64, stats: &SimStats) {
        if stats.retired_instructions < self.next_boundary {
            return;
        }
        let sample = Self::sample(stats, cycle);
        while stats.retired_instructions >= self.next_boundary {
            let boundary = self.next_boundary;
            self.next_boundary += self.window;
            self.ring.push_window(boundary, cycle, &sample);
        }
    }

    /// Closes the final (possibly partial) window at end of run and
    /// cross-validates the boundary walk: window ends must be strictly
    /// increasing with every non-final end on an exact `window` multiple,
    /// and per-window counter deltas must sum exactly to the end-of-run
    /// totals (the conservation invariant).
    ///
    /// # Panics
    ///
    /// Panics when the timeline disagrees with the run totals — that is
    /// a harness bug (mis-attributed leapt windows), never a workload
    /// property.
    pub fn flush(&mut self, stats: &SimStats) {
        let sample = Self::sample(stats, stats.cycles);
        self.ring
            .push_window(stats.retired_instructions, stats.cycles, &sample);
        if let Err(e) = self.ring.check_conservation(&sample) {
            panic!("timeline conservation violated: {e}");
        }
        let snapshot = self.ring.snapshot(self.window);
        if snapshot.dropped_windows == 0 {
            let mut prev_end = None;
            for (i, w) in snapshot.windows.iter().enumerate() {
                if i + 1 < snapshot.windows.len() {
                    assert!(
                        w.end_instr % self.window == 0,
                        "timeline window {i} ends off-boundary at {} (window={})",
                        w.end_instr,
                        self.window
                    );
                }
                if let Some(prev) = prev_end {
                    assert!(
                        w.end_instr >= prev,
                        "timeline window {i} ends before its predecessor"
                    );
                }
                prev_end = Some(w.end_instr);
            }
        }
    }

    /// Freezes the timeline into its deterministic serialized form.
    pub fn snapshot(&self) -> TimelineSnapshot {
        self.ring.snapshot(self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tier_allocates_nothing() {
        assert!(ObsState::from_config(&ObsConfig::off()).is_none());
    }

    #[test]
    fn counters_tier_has_no_ring() {
        let state = ObsState::from_config(&ObsConfig::counters()).unwrap();
        assert!(state.ring.is_none());
    }

    #[test]
    fn trace_tier_has_a_ring() {
        let state = ObsState::from_config(&ObsConfig::trace(8)).unwrap();
        assert!(state.ring.is_some());
        assert!(state.attr.is_none());
    }

    #[test]
    fn attr_alone_creates_recording_state() {
        let config = ObsConfig::off().with_attr(twig_obs::AttrConfig::on());
        let state = ObsState::from_config(&config).unwrap();
        assert!(state.ring.is_none());
        assert!(state.attr.is_some());
    }

    #[test]
    fn internal_mirror_reports_attr_totals_and_dropped_spans() {
        let config = ObsConfig::trace(1).with_attr(twig_obs::AttrConfig::on());
        let mut state = ObsState::from_config(&config).unwrap();
        state.attr.as_mut().unwrap().record(
            0x40,
            BranchKind::Conditional,
            twig_obs::MissKind::Direction,
            12,
        );
        state.mirror_internal();
        let snap = state.snapshot();
        assert_eq!(snap.counter("obs.attr.total_events"), Some(1));
        assert_eq!(snap.counter("obs.attr.total_cycles"), Some(12));
        assert_eq!(snap.counter("obs.attr.tracked_keys"), Some(1));
        assert_eq!(snap.counter("obs.trace.dropped_spans"), Some(0));
    }

    #[test]
    fn timeline_state_gated_on_window_knob() {
        assert!(TimelineState::from_config(&ObsConfig::off()).is_none());
        assert!(TimelineState::from_config(&ObsConfig::counters()).is_none());
        let state = TimelineState::from_config(&ObsConfig::windowed(100)).unwrap();
        assert_eq!(state.window, 100);
        assert_eq!(state.ring.track_count(), TIMELINE_TRACKS.len());
    }

    #[test]
    fn retire_bursts_close_windows_in_closed_form() {
        let mut state = TimelineState::from_config(&ObsConfig::windowed(100)).unwrap();
        let mut stats = SimStats::default();
        // One burst carries the count from 90 to 310: three boundaries
        // (100, 200, 300) close at the same cycle.
        stats.retired_instructions = 90;
        state.on_retire(40, &stats);
        assert!(state.ring.is_empty());
        stats.retired_instructions = 310;
        stats.decode_resteers = 4;
        state.on_retire(120, &stats);
        assert_eq!(state.ring.len(), 3);
        stats.retired_instructions = 350;
        stats.cycles = 200;
        state.flush(&stats);
        let snap = state.snapshot();
        let ends: Vec<u64> = snap.windows.iter().map(|w| w.end_instr).collect();
        assert_eq!(ends, vec![100, 200, 300, 350]);
        let cycles: Vec<u64> = snap.windows.iter().map(|w| w.end_cycle).collect();
        assert_eq!(cycles, vec![120, 120, 120, 200]);
        // Conservation: per-window instruction deltas sum to the total.
        let instrs = snap.track_values(track_names::INSTRUCTIONS).unwrap();
        assert_eq!(instrs, vec![310, 0, 0, 40]);
        assert_eq!(instrs.iter().sum::<u64>(), 350);
        let resteers = snap.track_values(track_names::DECODE_RESTEERS).unwrap();
        assert_eq!(resteers.iter().sum::<u64>(), 4);
    }

    #[test]
    fn exact_boundary_runs_flush_cleanly() {
        let mut state = TimelineState::from_config(&ObsConfig::windowed(50)).unwrap();
        let mut stats = SimStats::default();
        stats.retired_instructions = 50;
        state.on_retire(75, &stats);
        stats.retired_instructions = 100;
        state.on_retire(160, &stats);
        stats.cycles = 170;
        state.flush(&stats);
        let snap = state.snapshot();
        assert_eq!(snap.windows.len(), 3);
        let cycles = snap.track_values(track_names::CYCLES).unwrap();
        assert_eq!(cycles.iter().sum::<u64>(), 170);
        // The trailing flush window carries only the pipeline drain.
        let instrs = snap.track_values(track_names::INSTRUCTIONS).unwrap();
        assert_eq!(instrs, vec![50, 50, 0]);
    }

    #[test]
    fn mirror_covers_every_stat_field() {
        let mut state = ObsState::from_config(&ObsConfig::counters()).unwrap();
        let mut stats = SimStats {
            cycles: 10,
            ..SimStats::default()
        };
        stats.btb_misses[BranchKind::Return.index()] = 3;
        stats.topdown.retiring = 7;
        let mem = MemoryStats {
            demand_accesses: 5,
            ..MemoryStats::default()
        };
        state.mirror_stats(&stats, &mem);
        let snap = state.snapshot();
        assert_eq!(snap.counter("sim.cycles"), Some(10));
        assert_eq!(snap.counter("btb.misses.ret"), Some(3));
        assert_eq!(snap.counter("btb.misses.total"), Some(3));
        assert_eq!(snap.counter("topdown.retiring"), Some(7));
        assert_eq!(snap.counter("icache.demand_accesses"), Some(5));
    }
}
