//! Forensic state dumps: cycle-stamped snapshots written on violation.
//!
//! A dump is one self-contained JSON file under the dump directory
//! (`TWIG_INTEGRITY_DUMP_DIR`, default `results/.integrity/`) holding
//! everything needed to reproduce the failure deterministically: the full
//! [`SimConfig`] (including the integrity tier and any armed mutation),
//! the instruction budget, the trace cursor, the last-M retired branch
//! blocks (the LBR-style history), and a textual snapshot of the
//! offending structure. `integrity_drill replay <dump.json>` re-runs the
//! workload named by the label under the dumped config and asserts the
//! same violation fires at the same cycle.

use std::path::{Path, PathBuf};

use twig_serde::{Deserialize, Serialize};

use crate::config::SimConfig;

/// Dump format version; bump when the schema changes.
pub const DUMP_VERSION: u32 = 1;

/// Environment variable overriding the dump directory.
pub const DUMP_DIR_ENV: &str = "TWIG_INTEGRITY_DUMP_DIR";

/// Default dump directory, relative to the working directory.
pub const DEFAULT_DUMP_DIR: &str = "results/.integrity";

/// One entry of the dumped branch-block history.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DumpBranch {
    /// Basic-block id (index into the program).
    pub block: u32,
    /// BPU cycle at which the block was processed.
    pub cycle: u64,
}

/// A cycle-stamped forensic snapshot of a violated simulation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct StateDump {
    /// Schema version ([`DUMP_VERSION`]).
    pub version: u32,
    /// The run's integrity label (e.g. `sim:kafka/baseline`).
    pub label: String,
    /// Violation kind (kebab-case, [`ViolationKind::as_str`](super::ViolationKind::as_str)).
    pub kind: String,
    /// Component that failed.
    pub component: String,
    /// Simulation cycle at which the check fired.
    pub cycle: u64,
    /// Human-readable specifics.
    pub detail: String,
    /// The full simulation configuration, integrity tier included.
    pub config: SimConfig,
    /// The run's instruction budget.
    pub instruction_budget: u64,
    /// Original instructions retired when the violation fired.
    pub retired_instructions: u64,
    /// Block events consumed from the trace (the trace cursor).
    pub events_consumed: u64,
    /// Last-M executed basic blocks, oldest first (LBR model).
    pub history: Vec<DumpBranch>,
    /// Textual snapshot of the offending structure's state.
    pub structure: String,
}

/// Process-wide explicit override, set once by the harness (an explicit
/// `--results-dir` outranks the environment, per the precedence rule).
static DUMP_DIR_OVERRIDE: std::sync::OnceLock<PathBuf> = std::sync::OnceLock::new();

/// Overrides the dump directory for the rest of the process (explicit-arg
/// tier of the precedence chain). First caller wins; later calls are
/// ignored so library users cannot redirect an operator's choice.
pub fn set_dump_dir(dir: impl Into<PathBuf>) {
    let _ = DUMP_DIR_OVERRIDE.set(dir.into());
}

/// The dump directory: explicit [`set_dump_dir`] override if any, else
/// `TWIG_INTEGRITY_DUMP_DIR` (via the unified harness configuration),
/// else `results/.integrity`.
pub fn dump_dir() -> PathBuf {
    if let Some(dir) = DUMP_DIR_OVERRIDE.get() {
        return dir.clone();
    }
    match &twig_types::HarnessConfig::global().integrity_dump_dir.value {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from(DEFAULT_DUMP_DIR),
    }
}

fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
            c
        } else {
            '_'
        })
        .collect()
}

impl StateDump {
    /// Deterministic dump filename: label, kind, and cycle stamp.
    pub fn file_name(&self) -> String {
        format!("{}-{}-c{}.json", sanitize(&self.label), self.kind, self.cycle)
    }

    /// Serializes the dump into `dir` (created if missing), returning the
    /// written path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let json = twig_serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        twig_sched::publish_atomic(&path, json.as_bytes(), None, None)?;
        Ok(path)
    }

    /// Serializes the dump into [`dump_dir`].
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(&dump_dir())
    }

    /// Loads and validates a dump written by [`StateDump::write`].
    pub fn load(path: &Path) -> Result<StateDump, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let dump: StateDump = twig_serde_json::from_str(&text)
            .map_err(|e| format!("parse {}: {e}", path.display()))?;
        if dump.version != DUMP_VERSION {
            return Err(format!(
                "dump version {} unsupported (expected {DUMP_VERSION})",
                dump.version
            ));
        }
        Ok(dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateDump {
        StateDump {
            version: DUMP_VERSION,
            label: "sim:kafka/baseline".into(),
            kind: "btb-occupancy".into(),
            component: "btb".into(),
            cycle: 4096,
            detail: "set 3: len 4 but 3 live entries".into(),
            config: SimConfig::default(),
            instruction_budget: 100_000,
            retired_instructions: 41_213,
            events_consumed: 9_801,
            history: vec![DumpBranch { block: 7, cycle: 4090 }, DumpBranch { block: 9, cycle: 4094 }],
            structure: "btb 8192x4 occupancy 1312".into(),
        }
    }

    #[test]
    fn dump_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("twig-integrity-dump-test");
        let dump = sample();
        let path = dump.write_to(&dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "sim_kafka_baseline-btb-occupancy-c4096.json"
        );
        let back = StateDump::load(&path).unwrap();
        assert_eq!(dump, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join("twig-integrity-dump-ver-test");
        let mut dump = sample();
        dump.version = 99;
        let path = dump.write_to(&dir).unwrap();
        assert!(StateDump::load(&path).unwrap_err().contains("version 99"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
