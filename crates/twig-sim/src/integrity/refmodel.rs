//! Deliberately naive, obviously-correct reference models for the
//! differential tier.
//!
//! [`RefBtb`] is the pre-PR-1 BTB layout: one heap-allocated `Vec` per
//! set, linear probe, MRU maintained with `remove` + `insert(0)`. It is
//! slow and simple on purpose — the optimized flat
//! [`Btb`](crate::Btb) is cross-checked against it lockstep under
//! `paranoid`, so hot-loop rewrites can never silently diverge again.
//! [`RefRas`] is likewise a plain bounded deque stack shadowing the
//! circular [`Ras`](crate::Ras).

use std::collections::VecDeque;

use twig_types::{Addr, BranchKind};

use crate::config::BtbGeometry;

/// One reference-BTB entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RefEntry {
    /// Tag (PC bits above the set index).
    pub tag: u64,
    /// Predicted taken target.
    pub target: Addr,
    /// Stored branch classification.
    pub kind: BranchKind,
}

/// The naive nested-`Vec` set-associative BTB (pre-PR-1 layout).
///
/// Index math is identical to the flat [`Btb`](crate::Btb) — same
/// `set_shift`, same tag split, same evicted-PC reconstruction — only the
/// storage strategy differs, which is exactly the part PR 1 rewrote.
#[derive(Clone, Debug)]
pub struct RefBtb {
    sets: Vec<Vec<RefEntry>>,
    ways: usize,
    set_shift: u32,
    set_bits: u32,
    set_mask: u64,
}

impl RefBtb {
    /// Creates an empty reference BTB with the given geometry.
    pub fn new(geometry: BtbGeometry) -> Self {
        let sets = geometry.sets();
        let set_mask = sets as u64 - 1;
        RefBtb {
            sets: vec![Vec::new(); sets],
            ways: geometry.ways,
            set_shift: 1,
            set_bits: set_mask.count_ones(),
            set_mask,
        }
    }

    fn set_and_tag(&self, pc: Addr) -> (usize, u64) {
        let key = pc.raw() >> self.set_shift;
        ((key & self.set_mask) as usize, key >> self.set_bits)
    }

    /// Looks up `pc`, promoting the entry to MRU on hit.
    pub fn lookup(&mut self, pc: Addr) -> Option<RefEntry> {
        let (set, tag) = self.set_and_tag(pc);
        let ways = &mut self.sets[set];
        let pos = ways.iter().position(|e| e.tag == tag)?;
        let entry = ways.remove(pos);
        ways.insert(0, entry);
        Some(entry)
    }

    /// Inserts or updates at MRU, returning the evicted entry's
    /// reconstructed PC if the set overflowed.
    pub fn insert(&mut self, pc: Addr, target: Addr, kind: BranchKind) -> Option<Addr> {
        let (set, tag) = self.set_and_tag(pc);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|e| e.tag == tag) {
            ways.remove(pos);
            ways.insert(0, RefEntry { tag, target, kind });
            return None;
        }
        ways.insert(0, RefEntry { tag, target, kind });
        if ways.len() > self.ways {
            let victim = ways.pop().expect("overfull set has a tail");
            let key = (victim.tag << self.set_bits) | set as u64;
            return Some(Addr::new(key << self.set_shift));
        }
        None
    }

    /// Removes the entry for `pc` if present.
    pub fn invalidate(&mut self, pc: Addr) -> bool {
        let (set, tag) = self.set_and_tag(pc);
        let ways = &mut self.sets[set];
        match ways.iter().position(|e| e.tag == tag) {
            Some(pos) => {
                ways.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The MRU-first live entries of `set`.
    pub fn set_entries(&self, set: usize) -> &[RefEntry] {
        &self.sets[set]
    }
}

/// The naive bounded-deque return address stack shadowing
/// [`Ras`](crate::Ras).
///
/// Oldest entry at the front; a push past capacity drops the oldest (the
/// circular RAS's overwrite-oldest overflow, an O(1) `pop_front` here), a
/// pop from empty returns `None` (the underflow semantics pinned in
/// `ras.rs`).
#[derive(Clone, Debug)]
pub struct RefRas {
    stack: VecDeque<Addr>,
    capacity: usize,
}

impl RefRas {
    /// Creates an empty reference RAS.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        RefRas {
            stack: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes, dropping the oldest entry on overflow.
    pub fn push(&mut self, addr: Addr) {
        if self.stack.len() == self.capacity {
            self.stack.pop_front();
        }
        self.stack.push_back(addr);
    }

    /// Pops the youngest entry, or `None` if empty.
    pub fn pop(&mut self) -> Option<Addr> {
        self.stack.pop_back()
    }

    /// The youngest entry without popping.
    pub fn peek(&self) -> Option<Addr> {
        self.stack.back().copied()
    }

    /// Live entries.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Live entries, oldest first.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = Addr> + '_ {
        self.stack.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u64) -> Addr {
        Addr::new(v)
    }

    #[test]
    fn ref_btb_matches_flat_btb_on_a_mixed_op_stream() {
        use crate::btb::Btb;
        let geometry = BtbGeometry::new(64, 4);
        let mut flat = Btb::new(geometry);
        let mut naive = RefBtb::new(geometry);
        // A deterministic multiplicative-congruential stream of mixed ops.
        let mut x: u64 = 0x9e37_79b9;
        for i in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = a(0x1000 + (x >> 33) % 512 * 2);
            match i % 7 {
                0..=2 => {
                    let evicted = flat.insert(pc, a(i), BranchKind::DirectJump);
                    let ref_evicted = naive.insert(pc, a(i), BranchKind::DirectJump);
                    assert_eq!(evicted, ref_evicted, "eviction diverged at op {i}");
                }
                3 | 4 => {
                    let hit = flat.lookup(pc).map(|e| (e.target, e.kind));
                    let ref_hit = naive.lookup(pc).map(|e| (e.target, e.kind));
                    assert_eq!(hit, ref_hit, "lookup diverged at op {i}");
                }
                5 => {
                    assert_eq!(flat.invalidate(pc), naive.invalidate(pc));
                }
                _ => {
                    let p = flat.probe(pc).map(|e| (e.target, e.kind));
                    let rp = naive
                        .set_entries(naive.set_and_tag(pc).0)
                        .iter()
                        .find(|e| e.tag == naive.set_and_tag(pc).1)
                        .map(|e| (e.target, e.kind));
                    assert_eq!(p, rp, "probe diverged at op {i}");
                }
            }
        }
        assert_eq!(flat.occupancy(), naive.occupancy());
    }

    #[test]
    fn ref_ras_matches_circular_ras() {
        use crate::ras::Ras;
        let mut real = Ras::new(4);
        let mut naive = RefRas::new(4);
        let ops = [1, 2, 3, 4, 5, 6, 0, 0, 7, 0, 0, 0, 0, 0, 8];
        for &op in &ops {
            if op == 0 {
                assert_eq!(real.pop(), naive.pop());
            } else {
                real.push(a(op));
                naive.push(a(op));
            }
            assert_eq!(real.peek(), naive.peek());
            assert_eq!(real.depth(), naive.depth());
        }
    }

    #[test]
    fn ref_btb_eviction_reconstruction() {
        let mut naive = RefBtb::new(BtbGeometry::new(8, 1));
        let first = a(0x1000);
        let second = a(0x1000 + (8 << 1) * 64);
        naive.insert(first, a(1), BranchKind::DirectJump);
        assert_eq!(naive.insert(second, a(2), BranchKind::DirectJump), Some(first));
    }
}
