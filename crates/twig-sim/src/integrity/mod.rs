//! The simulation integrity layer: cycle-granularity invariant checking,
//! differential reference models, watchdogs, and forensic state dumps.
//!
//! PR 1 rewrote the BTB into a flat single-`Vec` layout and monomorphized
//! the hot loop; this module is the correctness backstop that travels with
//! every future hot-loop optimization. It runs in three tiers selected via
//! [`SimConfig::integrity`](crate::SimConfig) or the `TWIG_INTEGRITY`
//! environment variable:
//!
//! * `off` — the default; no checks, zero work in the hot loop.
//! * `sampled[=N]` — cheap O(1) invariants every `N` cycles (default
//!   {`DEFAULT_SAMPLE_PERIOD`}), full structural scans every
//!   [`IntegrityConfig::deep_period`] cycles.
//! * `paranoid` — cheap invariants every cycle, plus lockstep differential
//!   checking of the optimized [`Btb`](crate::Btb)/[`Ras`](crate::Ras)
//!   against deliberately naive reference models
//!   ([`refmodel::RefBtb`]/[`refmodel::RefRas`]).
//!
//! A failed check surfaces as a typed [`IntegrityViolation`] (not an
//! abort): the simulator serializes a cycle-stamped [`dump::StateDump`]
//! to `results/.integrity/` and returns the violation, which the
//! experiment harness degrades to a `FAILED(integrity: …)` cell.

pub mod dump;
pub mod refmodel;
pub mod watchdog;

use std::path::PathBuf;

use twig_serde::{Deserialize, Serialize};

/// Default cycle period between cheap checks for the `sampled` tier.
pub const DEFAULT_SAMPLE_PERIOD: u64 = 64;

/// Default cycle period between full structural scans (`sampled` and
/// `paranoid` tiers). This bounds corruption-detection latency: a seeded
/// BTB-occupancy corruption is caught within one deep period.
pub const DEFAULT_DEEP_PERIOD: u64 = 4096;

/// Default livelock window: cycles with zero retired instructions and no
/// outstanding cache fill before the no-progress watchdog fires.
pub const DEFAULT_LIVELOCK_WINDOW: u64 = 100_000;

/// How often invariant checks run inside the simulation loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum IntegrityLevel {
    /// No checking: the hot loop pays only one branch per cycle.
    #[default]
    Off,
    /// Cheap invariants once every `period` cycles.
    Sampled {
        /// Cycle period between cheap invariant sweeps (min 1).
        period: u64,
    },
    /// Cheap invariants every cycle plus differential reference models.
    Paranoid,
}

impl IntegrityLevel {
    /// Cycle period between cheap checks; `None` when checking is off.
    pub fn check_period(&self) -> Option<u64> {
        match *self {
            IntegrityLevel::Off => None,
            IntegrityLevel::Sampled { period } => Some(period.max(1)),
            IntegrityLevel::Paranoid => Some(1),
        }
    }

    /// Whether differential reference models shadow the real structures.
    pub fn differential(&self) -> bool {
        matches!(self, IntegrityLevel::Paranoid)
    }

    /// Parses `off` | `sampled` | `sampled=N` | `paranoid`.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim() {
            "off" | "" => Ok(IntegrityLevel::Off),
            "paranoid" => Ok(IntegrityLevel::Paranoid),
            "sampled" => Ok(IntegrityLevel::Sampled {
                period: DEFAULT_SAMPLE_PERIOD,
            }),
            other => {
                if let Some(n) = other.strip_prefix("sampled=") {
                    let period: u64 = n
                        .parse()
                        .map_err(|_| format!("bad sample period {n:?} in {other:?}"))?;
                    if period == 0 {
                        return Err("sample period must be >= 1".into());
                    }
                    Ok(IntegrityLevel::Sampled { period })
                } else {
                    Err(format!(
                        "unknown integrity level {other:?} \
                         (expected off | sampled[=N] | paranoid)"
                    ))
                }
            }
        }
    }
}


/// Which structure a seeded mutation corrupts (the CI mutation drill).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MutationKind {
    /// Bump a flat-BTB per-set occupancy counter past its live entries.
    BtbOccupancy,
    /// Push the RAS depth counter past its capacity.
    RasDepth,
}

impl MutationKind {
    /// Stable kebab-case name (the `TWIG_INTEGRITY_MUTATE` grammar).
    pub fn as_str(&self) -> &'static str {
        match self {
            MutationKind::BtbOccupancy => "btb-occupancy",
            MutationKind::RasDepth => "ras-depth",
        }
    }
}

/// A seeded corruption: at `at_cycle`, `kind` is injected into the live
/// structures so the detection path can be drilled end to end.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MutationSpec {
    /// Simulation cycle at which the corruption is applied.
    pub at_cycle: u64,
    /// What to corrupt.
    pub kind: MutationKind,
}

impl MutationSpec {
    /// Parses `btb-occupancy@CYCLE` | `ras-depth@CYCLE`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (kind, cycle) = text
            .split_once('@')
            .ok_or_else(|| format!("expected <kind>@<cycle>, got {text:?}"))?;
        let kind = match kind.trim() {
            "btb-occupancy" => MutationKind::BtbOccupancy,
            "ras-depth" => MutationKind::RasDepth,
            other => return Err(format!("unknown mutation kind {other:?}")),
        };
        let at_cycle: u64 = cycle
            .trim()
            .parse()
            .map_err(|_| format!("bad mutation cycle {cycle:?}"))?;
        Ok(MutationSpec { at_cycle, kind })
    }
}

/// Integrity-layer knobs, carried inside [`SimConfig`](crate::SimConfig).
///
/// `Copy` on purpose: `SimConfig` is `Copy`, so this struct holds no
/// heap state. Paths (the dump directory) resolve through the
/// `TWIG_INTEGRITY_DUMP_DIR` environment variable instead.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct IntegrityConfig {
    /// Checking tier.
    pub level: IntegrityLevel,
    /// Cycle period between full structural scans (BTB occupancy vs. live
    /// entries, reference-model equality, cache tag arrays).
    pub deep_period: u64,
    /// No-progress window: cycles with zero retirement and zero
    /// outstanding fills before a `livelock` violation fires.
    pub livelock_window: u64,
    /// Cycle budget as a multiple of the instruction budget. Replaces the
    /// silent safety-valve break with a typed `cycle-budget` violation
    /// when checking is enabled.
    pub cycle_budget_factor: u64,
    /// Max total queued elements (FTQ + deliveries + retire queue + MSHR
    /// map) before a `heap-budget` violation fires.
    pub heap_budget: usize,
    /// Write a forensic state dump when a violation is raised.
    pub dump: bool,
    /// Optional seeded corruption (the CI mutation drill).
    pub mutate: Option<MutationSpec>,
}

impl IntegrityConfig {
    /// Checking disabled; all watchdog defaults in place (unused).
    pub fn off() -> Self {
        IntegrityConfig {
            level: IntegrityLevel::Off,
            deep_period: DEFAULT_DEEP_PERIOD,
            livelock_window: DEFAULT_LIVELOCK_WINDOW,
            cycle_budget_factor: 200,
            heap_budget: 1 << 22,
            dump: true,
            mutate: None,
        }
    }

    /// Cheap checks every `period` cycles.
    pub fn sampled(period: u64) -> Self {
        IntegrityConfig {
            level: IntegrityLevel::Sampled { period },
            ..IntegrityConfig::off()
        }
    }

    /// Every-cycle checks plus differential reference models.
    pub fn paranoid() -> Self {
        IntegrityConfig {
            level: IntegrityLevel::Paranoid,
            ..IntegrityConfig::off()
        }
    }

    /// Builds from the environment via the unified harness configuration:
    /// `TWIG_INTEGRITY` selects the tier and
    /// `TWIG_INTEGRITY_MUTATE=<kind>@<cycle>` arms the mutation drill.
    pub fn from_env() -> Result<Self, String> {
        Self::from_harness(twig_types::HarnessConfig::global())
    }

    /// Builds from an already-parsed harness configuration (the grammar of
    /// the tier and mutation strings is owned here, not in `twig-types`).
    pub fn from_harness(harness: &twig_types::HarnessConfig) -> Result<Self, String> {
        let mut cfg = IntegrityConfig::off();
        cfg.level = IntegrityLevel::parse(&harness.integrity.value)
            .map_err(|e| format!("TWIG_INTEGRITY: {e}"))?;
        if let Some(spec) = &harness.integrity_mutate.value {
            cfg.mutate =
                Some(MutationSpec::parse(spec).map_err(|e| format!("TWIG_INTEGRITY_MUTATE: {e}"))?);
        }
        Ok(cfg)
    }

    /// Validates watchdog knobs (called from `SimConfig::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if let IntegrityLevel::Sampled { period } = self.level {
            if period == 0 {
                return Err("integrity sample period must be >= 1".into());
            }
        }
        if self.deep_period == 0 {
            return Err("integrity deep_period must be >= 1".into());
        }
        if self.livelock_window == 0 {
            return Err("integrity livelock_window must be >= 1".into());
        }
        if self.cycle_budget_factor == 0 {
            return Err("integrity cycle_budget_factor must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for IntegrityConfig {
    /// The environment-selected configuration.
    ///
    /// # Panics
    ///
    /// Panics if `TWIG_INTEGRITY`/`TWIG_INTEGRITY_MUTATE` are malformed —
    /// a misconfigured run must not silently fall back to `off`.
    fn default() -> Self {
        IntegrityConfig::from_env().expect("invalid integrity environment")
    }
}

/// What class of invariant a violation breached.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A BTB per-set occupancy counter disagrees with its live entries.
    BtbOccupancy,
    /// Two live entries in one BTB set share a tag.
    BtbDuplicate,
    /// The optimized BTB diverged from the naive reference model.
    BtbDivergence,
    /// RAS depth/top outside the structure's bounds.
    RasBounds,
    /// The circular RAS diverged from the naive reference stack.
    RasDivergence,
    /// FTQ entry with inconsistent line ordering or an empty region.
    FtqOrder,
    /// FTQ occupancy above the configured capacity.
    FtqOccupancy,
    /// ROB occupancy disagrees with in-flight deliveries + retire queue.
    RobAccounting,
    /// Prefetch-buffer capacity/order/accounting invariant broken.
    PrefetchBuffer,
    /// I-cache tag array or MSHR statistics accounting broken.
    IcacheAccounting,
    /// K cycles with zero retirement and zero outstanding misses.
    Livelock,
    /// The configured cycle budget was exhausted.
    CycleBudget,
    /// Queued simulation state exceeded the heap budget.
    HeapBudget,
    /// The hot-loop activity mask disagrees with the structure it
    /// summarizes (a bit set for an empty queue or vice versa).
    ActivityMask,
}

impl ViolationKind {
    /// Stable kebab-case name, used in dump filenames and cell reasons.
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationKind::BtbOccupancy => "btb-occupancy",
            ViolationKind::BtbDuplicate => "btb-duplicate",
            ViolationKind::BtbDivergence => "btb-divergence",
            ViolationKind::RasBounds => "ras-bounds",
            ViolationKind::RasDivergence => "ras-divergence",
            ViolationKind::FtqOrder => "ftq-order",
            ViolationKind::FtqOccupancy => "ftq-occupancy",
            ViolationKind::RobAccounting => "rob-accounting",
            ViolationKind::PrefetchBuffer => "prefetch-buffer",
            ViolationKind::IcacheAccounting => "icache-accounting",
            ViolationKind::Livelock => "livelock",
            ViolationKind::CycleBudget => "cycle-budget",
            ViolationKind::HeapBudget => "heap-budget",
            ViolationKind::ActivityMask => "activity-mask",
        }
    }
}

/// A single failed invariant, as reported by a [`Validator`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Invariant class.
    pub kind: ViolationKind,
    /// Human-readable specifics (set index, counters, expected vs. got).
    pub detail: String,
}

impl Fault {
    /// Convenience constructor.
    pub fn new(kind: ViolationKind, detail: impl Into<String>) -> Self {
        Fault {
            kind,
            detail: detail.into(),
        }
    }
}

/// A self-checking simulated structure.
///
/// `check(false)` must be cheap (amortized O(1)) — it runs every cycle
/// under `paranoid`. `check(true)` may walk the whole structure; it runs
/// once per [`IntegrityConfig::deep_period`] and once at end of run.
pub trait Validator {
    /// Stable component name (`btb`, `ras`, `prefetch-buffer`, …).
    fn component(&self) -> &'static str;
    /// Verifies the structure's invariants.
    fn check(&self, deep: bool) -> Result<(), Fault>;
    /// Forensic snapshot of the structure for the state dump.
    fn snapshot(&self) -> String {
        String::new()
    }
}

/// A typed integrity violation: which invariant broke, where, and when.
///
/// Returned (boxed — it is cold and fat) by
/// [`Simulator::try_run`](crate::Simulator::try_run) instead of aborting
/// the process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntegrityViolation {
    /// Invariant class.
    pub kind: ViolationKind,
    /// Component that failed (`btb`, `ras`, `sim-loop`, …).
    pub component: String,
    /// Simulation cycle at which the check fired.
    pub cycle: u64,
    /// Human-readable specifics.
    pub detail: String,
    /// Where the forensic dump was written, if dumping succeeded.
    pub dump_path: Option<PathBuf>,
}

impl std::fmt::Display for IntegrityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "integrity violation [{}] in {} at cycle {}: {}",
            self.kind.as_str(),
            self.component,
            self.cycle,
            self.detail
        )?;
        if let Some(path) = &self.dump_path {
            write!(f, " (dump: {})", path.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for IntegrityViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_roundtrips() {
        assert_eq!(IntegrityLevel::parse("off").unwrap(), IntegrityLevel::Off);
        assert_eq!(
            IntegrityLevel::parse("paranoid").unwrap(),
            IntegrityLevel::Paranoid
        );
        assert_eq!(
            IntegrityLevel::parse("sampled").unwrap(),
            IntegrityLevel::Sampled {
                period: DEFAULT_SAMPLE_PERIOD
            }
        );
        assert_eq!(
            IntegrityLevel::parse("sampled=128").unwrap(),
            IntegrityLevel::Sampled { period: 128 }
        );
        assert!(IntegrityLevel::parse("sampled=0").is_err());
        assert!(IntegrityLevel::parse("fast").is_err());
    }

    #[test]
    fn mutation_spec_parses() {
        let m = MutationSpec::parse("btb-occupancy@5000").unwrap();
        assert_eq!(m.kind, MutationKind::BtbOccupancy);
        assert_eq!(m.at_cycle, 5000);
        assert_eq!(
            MutationSpec::parse("ras-depth@1").unwrap().kind,
            MutationKind::RasDepth
        );
        assert!(MutationSpec::parse("btb-occupancy").is_err());
        assert!(MutationSpec::parse("cache@10").is_err());
    }

    #[test]
    fn check_periods_match_tiers() {
        assert_eq!(IntegrityLevel::Off.check_period(), None);
        assert_eq!(
            IntegrityLevel::Sampled { period: 32 }.check_period(),
            Some(32)
        );
        assert_eq!(IntegrityLevel::Paranoid.check_period(), Some(1));
        assert!(IntegrityLevel::Paranoid.differential());
        assert!(!IntegrityLevel::Sampled { period: 1 }.differential());
    }

    #[test]
    fn violation_displays_with_dump_path() {
        let v = IntegrityViolation {
            kind: ViolationKind::BtbOccupancy,
            component: "btb".into(),
            cycle: 42,
            detail: "set 3: len 4 but 3 live entries".into(),
            dump_path: Some(PathBuf::from("/tmp/x.json")),
        };
        let text = v.to_string();
        assert!(text.contains("[btb-occupancy]"));
        assert!(text.contains("cycle 42"));
        assert!(text.contains("/tmp/x.json"));
    }

    #[test]
    fn config_serde_roundtrips() {
        let cfg = IntegrityConfig {
            level: IntegrityLevel::Sampled { period: 7 },
            mutate: Some(MutationSpec {
                at_cycle: 99,
                kind: MutationKind::RasDepth,
            }),
            ..IntegrityConfig::off()
        };
        let json = twig_serde_json::to_string(&cfg).unwrap();
        let back: IntegrityConfig = twig_serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
