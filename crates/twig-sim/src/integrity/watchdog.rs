//! No-progress and resource watchdogs for the simulation loop.

use super::{Fault, IntegrityConfig, ViolationKind};

/// Tracks retirement progress and resource budgets across cycles.
///
/// The simulator feeds it once per check period; it reports a typed
/// [`Fault`] when the run has livelocked, blown its cycle budget, or
/// grown its queued state past the heap budget.
#[derive(Clone, Debug)]
pub struct Watchdogs {
    livelock_window: u64,
    max_cycles: u64,
    heap_budget: usize,
    last_progress_cycle: u64,
    last_retired: u64,
}

impl Watchdogs {
    /// Creates watchdogs for a run retiring up to `instruction_budget`
    /// instructions.
    pub fn new(config: &IntegrityConfig, instruction_budget: u64) -> Self {
        Watchdogs {
            livelock_window: config.livelock_window,
            max_cycles: instruction_budget
                .saturating_mul(config.cycle_budget_factor)
                .max(1 << 22),
            heap_budget: config.heap_budget,
            last_progress_cycle: 0,
            last_retired: 0,
        }
    }

    /// The enforced cycle ceiling.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Checks all watchdogs at `cycle`.
    ///
    /// `retired` is cumulative retired instructions (original + injected
    /// ops); `outstanding_fill` reports whether any cache fill is still in
    /// flight (a livelock requires *nothing* to be pending) — it is a
    /// closure so the MSHR scan only happens when retirement has stalled;
    /// `queued` is the total queued simulation state (FTQ + deliveries +
    /// retire queue + MSHR map).
    pub fn check(
        &mut self,
        cycle: u64,
        retired: u64,
        outstanding_fill: impl FnOnce() -> bool,
        queued: usize,
    ) -> Result<(), Fault> {
        if retired > self.last_retired || outstanding_fill() {
            self.last_retired = retired;
            self.last_progress_cycle = cycle;
        } else if cycle.saturating_sub(self.last_progress_cycle) >= self.livelock_window {
            return Err(Fault::new(
                ViolationKind::Livelock,
                format!(
                    "no instruction retired and no fill outstanding for {} cycles \
                     (since cycle {})",
                    cycle - self.last_progress_cycle,
                    self.last_progress_cycle
                ),
            ));
        }
        if cycle >= self.max_cycles {
            return Err(Fault::new(
                ViolationKind::CycleBudget,
                format!(
                    "cycle budget exhausted: {} cycles for {} retired instructions \
                     (limit {})",
                    cycle, retired, self.max_cycles
                ),
            ));
        }
        if queued > self.heap_budget {
            return Err(Fault::new(
                ViolationKind::HeapBudget,
                format!(
                    "queued simulation state {} exceeds heap budget {}",
                    queued, self.heap_budget
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity::IntegrityLevel;

    fn cfg(window: u64, heap: usize) -> IntegrityConfig {
        IntegrityConfig {
            level: IntegrityLevel::Paranoid,
            livelock_window: window,
            heap_budget: heap,
            ..IntegrityConfig::off()
        }
    }

    #[test]
    fn livelock_fires_only_without_progress_or_fills() {
        let mut w = Watchdogs::new(&cfg(100, usize::MAX), u64::MAX);
        // Progress keeps it quiet.
        for c in 0..500 {
            assert!(w.check(c, c, || false, 0).is_ok());
        }
        // Outstanding fills keep it quiet even with zero retirement.
        for c in 500..1000 {
            assert!(w.check(c, 500, || true, 0).is_ok());
        }
        // Stalled with nothing pending: fires after the window.
        for c in 1000..1099 {
            assert!(w.check(c, 500, || false, 0).is_ok());
        }
        let fault = w.check(1099, 500, || false, 0).unwrap_err();
        assert_eq!(fault.kind, ViolationKind::Livelock);
    }

    #[test]
    fn cycle_budget_enforced() {
        let mut w = Watchdogs::new(&cfg(u64::MAX, usize::MAX), u64::MAX);
        assert!(w.check(w.max_cycles() - 1, 1, || false, 0).is_ok());
        let fault = w.check(w.max_cycles(), 2, || false, 0).unwrap_err();
        assert_eq!(fault.kind, ViolationKind::CycleBudget);
    }

    #[test]
    fn heap_budget_enforced() {
        let mut w = Watchdogs::new(&cfg(u64::MAX, 10), u64::MAX);
        assert!(w.check(0, 1, || false, 10).is_ok());
        let fault = w.check(1, 2, || false, 11).unwrap_err();
        assert_eq!(fault.kind, ViolationKind::HeapBudget);
    }
}
