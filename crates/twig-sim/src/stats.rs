//! Simulation statistics: IPC, BTB MPKI, resteers, Top-Down slots.

use twig_serde::{Deserialize, Serialize};
use twig_types::BranchKind;

use crate::prefetch_buffer::PrefetchBufferStats;

/// Top-Down pipeline-slot attribution (Yasin, ISPASS'14), the methodology
/// behind Fig. 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct TopDownSlots {
    /// Slots that retired an instruction.
    pub retiring: u64,
    /// Slots lost because the frontend supplied nothing (I-cache waits,
    /// BTB-miss resteers, FTQ-empty bubbles).
    pub frontend_bound: u64,
    /// Slots lost to wrong-path recovery (direction/indirect mispredicts).
    pub bad_speculation: u64,
    /// Slots lost to backend stalls.
    pub backend_bound: u64,
}

impl TopDownSlots {
    /// Total attributed slots.
    pub fn total(&self) -> u64 {
        self.retiring + self.frontend_bound + self.bad_speculation + self.backend_bound
    }

    /// Fraction of slots that are frontend-bound (Fig. 1's y-axis).
    pub fn frontend_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.frontend_bound as f64 / self.total() as f64
    }
}

/// Full statistics of one simulation run.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired original program instructions.
    pub retired_instructions: u64,
    /// Retired injected prefetch operations (Twig's dynamic overhead).
    pub retired_prefetch_ops: u64,
    /// BTB accesses per branch kind.
    pub btb_accesses: [u64; 6],
    /// Real BTB misses per branch kind (taken branches absent from BTB and
    /// prefetch buffer).
    pub btb_misses: [u64; 6],
    /// Would-be misses covered by the prefetch buffer, per branch kind.
    pub covered_misses: [u64; 6],
    /// Decode-time resteers (BTB misses on taken direct branches/returns).
    pub decode_resteers: u64,
    /// Execute-time resteers (direction or indirect-target mispredicts).
    pub exec_resteers: u64,
    /// Conditional branches executed.
    pub conditional_executed: u64,
    /// Conditional direction mispredicts.
    pub direction_mispredicts: u64,
    /// Indirect branches whose predicted target was wrong (or unknown).
    pub indirect_mispredicts: u64,
    /// Return-address mispredicts (RAS underflow/corruption).
    pub return_mispredicts: u64,
    /// Top-Down slot attribution.
    pub topdown: TopDownSlots,
    /// Prefetch-buffer counters (coverage numerator, accuracy).
    pub prefetch_buffer: PrefetchBufferStatsSer,
    /// Demand I-cache accesses.
    pub icache_demand_accesses: u64,
    /// Demand I-cache misses (L1i).
    pub icache_demand_misses: u64,
    /// FDIP + hardware prefetches issued to the I-cache.
    pub icache_prefetches: u64,
}

/// Serializable mirror of [`PrefetchBufferStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct PrefetchBufferStatsSer {
    /// Entries inserted.
    pub inserted: u64,
    /// Entries consumed by demand lookups.
    pub used: u64,
    /// Entries evicted unused.
    pub evicted_unused: u64,
    /// Lookups that found a not-yet-ready entry.
    pub late: u64,
}

impl From<PrefetchBufferStats> for PrefetchBufferStatsSer {
    fn from(s: PrefetchBufferStats) -> Self {
        PrefetchBufferStatsSer {
            inserted: s.inserted,
            used: s.used,
            evicted_unused: s.evicted_unused,
            late: s.late,
        }
    }
}

impl SimStats {
    /// Instructions per cycle, counting only original program instructions
    /// (injected prefetch ops are overhead, not work).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.retired_instructions as f64 / self.cycles as f64
    }

    /// Real BTB misses from *direct* branches only, matching the paper's
    /// MPKI definition (Fig. 3).
    pub fn direct_btb_misses(&self) -> u64 {
        BranchKind::ALL
            .iter()
            .filter(|k| k.is_direct())
            .map(|k| self.btb_misses[k.index()])
            .sum()
    }

    /// BTB misses per kilo-instruction over direct branches (Fig. 3).
    pub fn btb_mpki(&self) -> f64 {
        if self.retired_instructions == 0 {
            return 0.0;
        }
        self.direct_btb_misses() as f64 * 1000.0 / self.retired_instructions as f64
    }

    /// Total BTB accesses.
    pub fn total_btb_accesses(&self) -> u64 {
        self.btb_accesses.iter().sum()
    }

    /// Total real BTB misses (all kinds).
    pub fn total_btb_misses(&self) -> u64 {
        self.btb_misses.iter().sum()
    }

    /// Total would-be misses covered by prefetching.
    pub fn total_covered_misses(&self) -> u64 {
        self.covered_misses.iter().sum()
    }

    /// Fraction of would-be BTB misses covered by prefetching (Fig. 17).
    pub fn miss_coverage(&self) -> f64 {
        let covered = self.total_covered_misses();
        let total = covered + self.total_btb_misses();
        if total == 0 {
            return 0.0;
        }
        covered as f64 / total as f64
    }

    /// Fraction of prefetched entries that were used before eviction
    /// (Fig. 19's prefetch accuracy).
    pub fn prefetch_accuracy(&self) -> f64 {
        let resolved = self.prefetch_buffer.used + self.prefetch_buffer.evicted_unused;
        if resolved == 0 {
            return 0.0;
        }
        self.prefetch_buffer.used as f64 / resolved as f64
    }

    /// Conditional direction-prediction accuracy.
    pub fn direction_accuracy(&self) -> f64 {
        if self.conditional_executed == 0 {
            return 1.0;
        }
        1.0 - self.direction_mispredicts as f64 / self.conditional_executed as f64
    }

    /// Dynamic instruction overhead of injected ops (Fig. 22).
    pub fn dynamic_overhead(&self) -> f64 {
        if self.retired_instructions == 0 {
            return 0.0;
        }
        self.retired_prefetch_ops as f64 / self.retired_instructions as f64
    }

    /// L1i demand miss rate.
    pub fn icache_miss_rate(&self) -> f64 {
        if self.icache_demand_accesses == 0 {
            return 0.0;
        }
        self.icache_demand_misses as f64 / self.icache_demand_accesses as f64
    }
}

/// Speedup of `new` over `old` as a percentage (`(IPC_new/IPC_old - 1)·100`).
pub fn speedup_percent(old: &SimStats, new: &SimStats) -> f64 {
    if old.ipc() == 0.0 {
        return 0.0;
    }
    (new.ipc() / old.ipc() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(cycles: u64, instrs: u64) -> SimStats {
        SimStats {
            cycles,
            retired_instructions: instrs,
            ..SimStats::default()
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = stats_with(1000, 2000);
        let faster = stats_with(800, 2000);
        assert!((base.ipc() - 2.0).abs() < 1e-12);
        assert!((speedup_percent(&base, &faster) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn mpki_counts_only_direct_kinds() {
        let mut s = stats_with(1, 1_000_000);
        s.btb_misses[BranchKind::Conditional.index()] = 10_000;
        s.btb_misses[BranchKind::DirectCall.index()] = 5_000;
        s.btb_misses[BranchKind::IndirectJump.index()] = 99_999; // excluded
        s.btb_misses[BranchKind::Return.index()] = 99_999; // excluded
        assert!((s.btb_mpki() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_is_covered_over_would_be_total() {
        let mut s = SimStats::default();
        s.covered_misses[0] = 60;
        s.btb_misses[0] = 40;
        assert!((s.miss_coverage() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn accuracy_ignores_still_resident_entries() {
        let mut s = SimStats::default();
        s.prefetch_buffer.inserted = 100;
        s.prefetch_buffer.used = 30;
        s.prefetch_buffer.evicted_unused = 70;
        assert!((s.prefetch_accuracy() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn topdown_fraction() {
        let td = TopDownSlots {
            retiring: 25,
            frontend_bound: 50,
            bad_speculation: 5,
            backend_bound: 20,
        };
        assert_eq!(td.total(), 100);
        assert!((td.frontend_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.btb_mpki(), 0.0);
        assert_eq!(s.miss_coverage(), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
        assert_eq!(s.direction_accuracy(), 1.0);
        assert_eq!(s.dynamic_overhead(), 0.0);
        assert_eq!(s.icache_miss_rate(), 0.0);
        assert_eq!(TopDownSlots::default().frontend_fraction(), 0.0);
    }
}
